"""The :class:`Graph` container used throughout the library.

A :class:`Graph` wraps an undirected adjacency matrix stored in CSR format
together with optional node features and labels.  It exposes the quantities
the SIGMA paper relies on — degrees, neighbour lists, average degree ``d``,
and cheap conversions to the propagation operators used by the models.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from repro.errors import GraphError


def _as_csr(adjacency: sp.spmatrix | np.ndarray) -> sp.csr_matrix:
    matrix = sp.csr_matrix(adjacency, dtype=np.float64)
    matrix.eliminate_zeros()
    matrix.sort_indices()
    return matrix


@dataclass
class Graph:
    """An undirected attributed graph.

    Parameters
    ----------
    adjacency:
        ``(n, n)`` sparse adjacency matrix.  It is symmetrised on
        construction unless ``assume_symmetric`` is given to
        :meth:`from_edges`.
    features:
        Optional ``(n, f)`` dense node-feature matrix.
    labels:
        Optional ``(n,)`` integer label vector.
    name:
        Human readable dataset name, used in experiment reports.
    """

    adjacency: sp.csr_matrix
    features: Optional[np.ndarray] = None
    labels: Optional[np.ndarray] = None
    name: str = "graph"
    _degrees: np.ndarray = field(init=False, repr=False, default=None)

    def __post_init__(self) -> None:
        self.adjacency = _as_csr(self.adjacency)
        rows, cols = self.adjacency.shape
        if rows != cols:
            raise GraphError(
                f"adjacency must be square, got shape {self.adjacency.shape}"
            )
        if (self.adjacency != self.adjacency.T).nnz != 0:
            raise GraphError("adjacency must be symmetric (undirected graph)")
        if (self.adjacency.data < 0).any():
            raise GraphError("adjacency must not contain negative weights")
        if self.features is not None:
            self.features = np.asarray(self.features, dtype=np.float64)
            if self.features.ndim != 2 or self.features.shape[0] != rows:
                raise GraphError(
                    "features must be a (num_nodes, dim) matrix, got shape "
                    f"{self.features.shape} for {rows} nodes"
                )
        if self.labels is not None:
            self.labels = np.asarray(self.labels, dtype=np.int64).ravel()
            if self.labels.shape[0] != rows:
                raise GraphError(
                    f"labels must have one entry per node, got {self.labels.shape[0]} "
                    f"for {rows} nodes"
                )
        self._degrees = np.asarray(self.adjacency.sum(axis=1)).ravel()

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_edges(
        cls,
        num_nodes: int,
        edges: Iterable[Tuple[int, int]] | np.ndarray,
        *,
        features: Optional[np.ndarray] = None,
        labels: Optional[np.ndarray] = None,
        name: str = "graph",
    ) -> "Graph":
        """Build an undirected, unweighted graph from an edge list.

        Duplicate edges and self-loops are removed; each undirected edge is
        stored in both directions.
        """
        edge_array = np.asarray(list(edges) if not isinstance(edges, np.ndarray) else edges,
                                dtype=np.int64)
        if edge_array.size == 0:
            adjacency = sp.csr_matrix((num_nodes, num_nodes), dtype=np.float64)
            return cls(adjacency, features=features, labels=labels, name=name)
        if edge_array.ndim != 2 or edge_array.shape[1] != 2:
            raise GraphError(f"edges must be (m, 2) pairs, got shape {edge_array.shape}")
        src, dst = edge_array[:, 0], edge_array[:, 1]
        if (src < 0).any() or (dst < 0).any() or (src >= num_nodes).any() or (dst >= num_nodes).any():
            raise GraphError("edge endpoints must be in [0, num_nodes)")
        keep = src != dst
        src, dst = src[keep], dst[keep]
        all_src = np.concatenate([src, dst])
        all_dst = np.concatenate([dst, src])
        data = np.ones(all_src.shape[0], dtype=np.float64)
        adjacency = sp.coo_matrix((data, (all_src, all_dst)), shape=(num_nodes, num_nodes))
        adjacency = adjacency.tocsr()
        adjacency.data[:] = 1.0  # collapse duplicate edges to weight one
        return cls(adjacency, features=features, labels=labels, name=name)

    @classmethod
    def from_networkx(cls, nx_graph, *, features: Optional[np.ndarray] = None,
                      labels: Optional[np.ndarray] = None, name: str = "graph") -> "Graph":
        """Build a :class:`Graph` from an (undirected) networkx graph."""
        import networkx as nx

        nodes = sorted(nx_graph.nodes())
        index = {node: i for i, node in enumerate(nodes)}
        edges = [(index[u], index[v]) for u, v in nx_graph.edges()]
        return cls.from_edges(len(nodes), edges, features=features, labels=labels, name=name)

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def num_nodes(self) -> int:
        return self.adjacency.shape[0]

    @property
    def num_edges(self) -> int:
        """Number of undirected edges (each counted once)."""
        return int(self.adjacency.nnz // 2)

    @property
    def num_directed_edges(self) -> int:
        """Number of stored (directed) adjacency entries."""
        return int(self.adjacency.nnz)

    @property
    def degrees(self) -> np.ndarray:
        """Weighted node degrees (row sums of the adjacency matrix)."""
        return self._degrees

    @property
    def average_degree(self) -> float:
        """Average degree ``d = m / n`` used in the paper's complexity bounds."""
        if self.num_nodes == 0:
            return 0.0
        return float(self._degrees.mean())

    @property
    def num_classes(self) -> int:
        if self.labels is None:
            raise GraphError("graph has no labels")
        return int(self.labels.max()) + 1

    @property
    def num_features(self) -> int:
        if self.features is None:
            raise GraphError("graph has no features")
        return int(self.features.shape[1])

    def neighbors(self, node: int) -> np.ndarray:
        """Return the neighbour indices of ``node``."""
        if not 0 <= node < self.num_nodes:
            raise GraphError(f"node {node} out of range [0, {self.num_nodes})")
        start, end = self.adjacency.indptr[node], self.adjacency.indptr[node + 1]
        return self.adjacency.indices[start:end]

    def has_edge(self, u: int, v: int) -> bool:
        return v in self.neighbors(u)

    def edge_list(self) -> np.ndarray:
        """Return the ``(m, 2)`` array of undirected edges with ``u < v``."""
        coo = self.adjacency.tocoo()
        mask = coo.row < coo.col
        return np.stack([coo.row[mask], coo.col[mask]], axis=1)

    # ------------------------------------------------------------------ #
    # Derived views
    # ------------------------------------------------------------------ #
    def subgraph(self, nodes: Sequence[int], *, name: Optional[str] = None) -> "Graph":
        """Return the induced subgraph on ``nodes`` (relabelled to 0..k-1)."""
        nodes = np.asarray(nodes, dtype=np.int64)
        adjacency = self.adjacency[nodes][:, nodes]
        features = self.features[nodes] if self.features is not None else None
        labels = self.labels[nodes] if self.labels is not None else None
        return Graph(adjacency, features=features, labels=labels,
                     name=name or f"{self.name}-sub")

    def apply_delta(self, updates) -> "Graph":
        """Return a new :class:`Graph` with an update batch applied.

        ``updates`` is anything
        :meth:`repro.graphs.delta.UpdateBatch.coerce` accepts — a
        :class:`~repro.graphs.delta.GraphDelta`, an
        :class:`~repro.graphs.delta.UpdateBatch` or an iterable of
        deltas — applied left to right against this graph's edge set.
        The node set is fixed: every endpoint must be an existing node
        id.  Deltas are strict (insert requires the edge absent, delete
        and reweight require it present); a violation raises
        :class:`~repro.errors.GraphError` and nothing is applied.
        Features, labels and the name carry over unchanged.

        Cost is proportional to the batch size plus the touched rows of
        the CSR, not the edge count: the changes accumulate into a small
        COO correction added to the adjacency (a deletion contributes
        exactly ``-weight``, so the cancelled entry is exact ``0.0`` and
        dropped by the CSR normalisation) — the delta-sized contract the
        :mod:`repro.dynamic` repair path relies on.
        """
        from repro.graphs.delta import UpdateBatch

        batch = UpdateBatch.coerce(updates)
        n = self.num_nodes
        adjacency = self.adjacency
        # Net weight change per canonical (u, v) pair; presence checks
        # see earlier deltas of the same batch through this mapping.
        changes: dict = {}
        for delta in batch:
            u, v = delta.u, delta.v
            if v >= n:
                raise GraphError(
                    f"delta endpoint {v} out of range for a graph with "
                    f"{n} nodes")
            current = float(adjacency[u, v]) + changes.get((u, v), 0.0)
            if delta.kind == "insert":
                if current != 0.0:
                    raise GraphError(
                        f"cannot insert edge ({u}, {v}): already present")
                changes[(u, v)] = changes.get((u, v), 0.0) + delta.weight
            elif delta.kind == "delete":
                if current == 0.0:
                    raise GraphError(
                        f"cannot delete edge ({u}, {v}): not present")
                changes[(u, v)] = changes.get((u, v), 0.0) - current
            else:  # reweight
                if current == 0.0:
                    raise GraphError(
                        f"cannot reweight edge ({u}, {v}): not present")
                changes[(u, v)] = (changes.get((u, v), 0.0)
                                   + (delta.weight - current))
        if not changes:
            return Graph(adjacency.copy(), features=self.features,
                         labels=self.labels, name=self.name)
        pairs = [pair for pair, weight in changes.items() if weight != 0.0]
        if pairs:
            rows = np.fromiter((p[0] for p in pairs), dtype=np.int64,
                               count=len(pairs))
            cols = np.fromiter((p[1] for p in pairs), dtype=np.int64,
                               count=len(pairs))
            data = np.fromiter((changes[p] for p in pairs), dtype=np.float64,
                               count=len(pairs))
            correction = sp.coo_matrix(
                (np.concatenate([data, data]),
                 (np.concatenate([rows, cols]),
                  np.concatenate([cols, rows]))), shape=(n, n))
            adjacency = (adjacency + correction.tocsr()).tocsr()
        return Graph(adjacency, features=self.features,
                     labels=self.labels, name=self.name)

    def with_features(self, features: np.ndarray) -> "Graph":
        return Graph(self.adjacency, features=features, labels=self.labels, name=self.name)

    def with_labels(self, labels: np.ndarray) -> "Graph":
        return Graph(self.adjacency, features=self.features, labels=labels, name=self.name)

    def copy(self) -> "Graph":
        return Graph(
            self.adjacency.copy(),
            features=None if self.features is None else self.features.copy(),
            labels=None if self.labels is None else self.labels.copy(),
            name=self.name,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = [f"Graph(name={self.name!r}, nodes={self.num_nodes}, edges={self.num_edges}"]
        if self.features is not None:
            parts.append(f", features={self.features.shape[1]}")
        if self.labels is not None:
            parts.append(f", classes={self.num_classes}")
        parts.append(")")
        return "".join(parts)


__all__ = ["Graph"]
