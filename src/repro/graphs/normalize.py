"""Adjacency-normalisation operators used by GNN propagation.

The SIGMA paper uses the random-walk matrix ``P = D^-1 A`` in its SimRank
derivation (Theorem III.2) and the symmetric GCN normalisation
``Â = D̃^-1/2 (A + I) D̃^-1/2`` for the convolutional baselines.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.errors import GraphError


def _degree_vector(adjacency: sp.spmatrix, axis: int = 1) -> np.ndarray:
    return np.asarray(adjacency.sum(axis=axis)).ravel()


def add_self_loops(adjacency: sp.spmatrix, weight: float = 1.0) -> sp.csr_matrix:
    """Return ``A + weight * I`` in CSR format."""
    n = adjacency.shape[0]
    return (sp.csr_matrix(adjacency) + weight * sp.identity(n, format="csr")).tocsr()


def row_normalize(adjacency: sp.spmatrix) -> sp.csr_matrix:
    """Random-walk normalisation ``P = D^-1 A`` (rows sum to one).

    Isolated nodes keep an all-zero row.
    """
    adjacency = sp.csr_matrix(adjacency, dtype=np.float64)
    degrees = _degree_vector(adjacency)
    inv = np.zeros_like(degrees)
    nonzero = degrees > 0
    inv[nonzero] = 1.0 / degrees[nonzero]
    return sp.diags(inv).dot(adjacency).tocsr()


def column_normalize(adjacency: sp.spmatrix) -> sp.csr_matrix:
    """Column-stochastic normalisation ``W = A D^-1`` (columns sum to one)."""
    adjacency = sp.csr_matrix(adjacency, dtype=np.float64)
    degrees = _degree_vector(adjacency, axis=0)
    inv = np.zeros_like(degrees)
    nonzero = degrees > 0
    inv[nonzero] = 1.0 / degrees[nonzero]
    return adjacency.dot(sp.diags(inv)).tocsr()


def symmetric_normalize(adjacency: sp.spmatrix, *, self_loops: bool = True) -> sp.csr_matrix:
    """GCN normalisation ``D̃^-1/2 (A [+ I]) D̃^-1/2``."""
    adjacency = sp.csr_matrix(adjacency, dtype=np.float64)
    if self_loops:
        adjacency = add_self_loops(adjacency)
    degrees = _degree_vector(adjacency)
    inv_sqrt = np.zeros_like(degrees)
    nonzero = degrees > 0
    inv_sqrt[nonzero] = 1.0 / np.sqrt(degrees[nonzero])
    diag = sp.diags(inv_sqrt)
    return diag.dot(adjacency).dot(diag).tocsr()


def normalized_adjacency_power(adjacency: sp.spmatrix, power: int,
                               *, self_loops: bool = True) -> sp.csr_matrix:
    """Return ``Â^power`` with the symmetric normalisation.

    ``power = 0`` returns the identity.  Raises :class:`GraphError` for
    negative powers.
    """
    if power < 0:
        raise GraphError(f"power must be non-negative, got {power}")
    n = adjacency.shape[0]
    if power == 0:
        return sp.identity(n, format="csr")
    normalized = symmetric_normalize(adjacency, self_loops=self_loops)
    result = normalized
    for _ in range(power - 1):
        result = result.dot(normalized)
    return result.tocsr()


__all__ = [
    "add_self_loops",
    "row_normalize",
    "column_normalize",
    "symmetric_normalize",
    "normalized_adjacency_power",
]
