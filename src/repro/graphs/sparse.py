"""Sparse-matrix helpers shared by the SimRank and PPR substrates."""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp


def csr_row_indices(matrix: sp.csr_matrix) -> np.ndarray:
    """Row index of every stored entry of a CSR matrix (COO expansion)."""
    return np.repeat(np.arange(matrix.shape[0], dtype=np.int64),
                     np.diff(matrix.indptr))


def top_k_per_row(matrix: sp.spmatrix, k: int, *, keep_diagonal: bool = False) -> sp.csr_matrix:
    """Keep only the ``k`` largest entries of each row of ``matrix``.

    This implements the paper's top-k pruning of the approximate SimRank
    matrix, reducing the aggregation operator to ``O(k n)`` stored entries.

    Parameters
    ----------
    matrix:
        Sparse matrix whose rows are pruned independently.
    k:
        Number of entries to keep per row.  Rows with fewer than ``k``
        non-zeros are left untouched.  Every returned row has at most
        ``k`` stored entries, with or without ``keep_diagonal``.
    keep_diagonal:
        When true the diagonal entry is always retained (useful when the
        matrix encodes self-similarity that must survive pruning).  If the
        diagonal entry is not among the ``k`` largest, it *replaces* the
        smallest selected entry so the ``≤ k`` per-row bound — and with it
        the paper's ``O(k·n)`` storage guarantee — still holds.

    Notes
    -----
    Entries are ranked by value descending; ties are broken toward the
    smaller column index (so the kept set is deterministic).  When the
    diagonal evicts an entry, it evicts the lowest-ranked selected one,
    i.e. the smallest kept value, among equal values the one with the
    largest column index.
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    csr = sp.csr_matrix(matrix, copy=True)
    n_rows = csr.shape[0]
    data, indices, indptr = csr.data, csr.indices, csr.indptr
    new_data: list[np.ndarray] = []
    new_indices: list[np.ndarray] = []
    new_indptr = np.zeros(n_rows + 1, dtype=np.int64)
    for row in range(n_rows):
        start, end = indptr[row], indptr[row + 1]
        row_data = data[start:end]
        row_indices = indices[start:end]
        if row_data.size > k:
            # Rank by value descending, ties toward the smaller column.
            order = np.lexsort((row_indices, -row_data))
            keep = order[:k]
            if keep_diagonal:
                diag_pos = np.flatnonzero(row_indices == row)
                if diag_pos.size and diag_pos[0] not in keep:
                    # Evict the lowest-ranked kept (non-diagonal) entry.
                    keep = keep.copy()
                    keep[-1] = diag_pos[0]
            keep_mask = np.zeros(row_data.size, dtype=bool)
            keep_mask[keep] = True
            row_data = row_data[keep_mask]
            row_indices = row_indices[keep_mask]
        new_data.append(row_data)
        new_indices.append(row_indices)
        new_indptr[row + 1] = new_indptr[row] + row_data.size
    pruned = sp.csr_matrix(
        (np.concatenate(new_data) if new_data else np.array([], dtype=np.float64),
         np.concatenate(new_indices) if new_indices else np.array([], dtype=np.int64),
         new_indptr),
        shape=csr.shape,
    )
    pruned.sort_indices()
    return pruned


def sparse_row_normalize(matrix: sp.spmatrix) -> sp.csr_matrix:
    """Normalise every non-empty row of ``matrix`` to sum to one."""
    csr = sp.csr_matrix(matrix, dtype=np.float64, copy=True)
    row_sums = np.asarray(csr.sum(axis=1)).ravel()
    scale = np.ones_like(row_sums)
    nonzero = row_sums != 0
    scale[nonzero] = 1.0 / row_sums[nonzero]
    return sp.diags(scale).dot(csr).tocsr()


def dense_to_sparse_threshold(matrix: np.ndarray, threshold: float) -> sp.csr_matrix:
    """Convert a dense matrix to CSR, dropping entries below ``threshold``."""
    dense = np.asarray(matrix, dtype=np.float64).copy()
    dense[np.abs(dense) < threshold] = 0.0
    return sp.csr_matrix(dense)


__all__ = ["csr_row_indices", "top_k_per_row", "sparse_row_normalize",
           "dense_to_sparse_threshold"]
