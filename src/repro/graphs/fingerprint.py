"""Content hashing: the single digest path for graphs and key payloads.

Every content-addressed key in the project — operator-cache entries,
delta-chained dynamic entries, experiment-store cells and
:class:`repro.graphs.delta.UpdateBatch` hashes — bottoms out in the two
helpers here:

:func:`graph_fingerprint`
    SHA-256 over a graph's canonical CSR arrays.  Content-addressed:
    two graphs with identical topology and weights share a fingerprint
    regardless of name, features or labels.
:func:`payload_digest`
    SHA-256 (truncated to :data:`DIGEST_LENGTH` hex chars) of a
    canonical-JSON encoding of a key payload (``sort_keys=True``,
    ``default=str``).

Keeping both in one module is deliberate: the operator cache, the
dynamic delta chain and the artifact store must not each grow their own
canonicalisation rules (key drift between them is exactly the failure
mode lint rule R1 guards the *field* derivation against — this module
guards the *hash* derivation the same way).
"""

from __future__ import annotations

import hashlib
import json
from typing import Mapping

import numpy as np

from repro.graphs.graph import Graph

#: Hex chars kept from the SHA-256 digest of a key payload.  128 bits —
#: collision-safe for cache-sized populations while keeping file names
#: readable.  Graph fingerprints keep the full digest (they are embedded
#: in payloads, not used as file names).
DIGEST_LENGTH = 32


def graph_fingerprint(graph: Graph) -> str:
    """Content hash of a graph's adjacency structure (SHA-256 hex digest).

    Hashes the canonical CSR arrays (``Graph`` sorts indices on
    construction), so two graphs with identical topology and weights share
    a fingerprint regardless of name, features or labels — none of which
    influence the SimRank operator.
    """
    adjacency = graph.adjacency
    digest = hashlib.sha256()
    digest.update(np.int64(adjacency.shape[0]).tobytes())
    digest.update(adjacency.indptr.astype(np.int64, copy=False).tobytes())
    digest.update(adjacency.indices.astype(np.int64, copy=False).tobytes())
    digest.update(adjacency.data.astype(np.float64, copy=False).tobytes())
    return digest.hexdigest()


def payload_digest(payload: Mapping[str, object]) -> str:
    """Canonical digest of a JSON-serialisable key payload.

    The payload is encoded as canonical JSON (``sort_keys=True``; values
    without a native JSON form fall back to ``str``, matching the
    experiment store's historical encoding) and hashed with SHA-256,
    truncated to :data:`DIGEST_LENGTH` hex characters.  Callers are
    responsible for including a format-version field in ``payload`` so
    bumping the version orphans stale entries.
    """
    encoded = json.dumps(dict(payload), sort_keys=True, default=str)
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()[:DIGEST_LENGTH]


__all__ = ["graph_fingerprint", "payload_digest", "DIGEST_LENGTH"]
