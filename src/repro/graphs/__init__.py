"""Graph substrate: containers, deltas, normalisation and homophily."""

from repro.graphs.delta import DELTA_KINDS, GraphDelta, UpdateBatch
from repro.graphs.fingerprint import graph_fingerprint, payload_digest
from repro.graphs.graph import Graph
from repro.graphs.homophily import (
    class_insensitive_edge_homophily,
    edge_homophily,
    node_homophily,
)
from repro.graphs.normalize import (
    add_self_loops,
    column_normalize,
    row_normalize,
    symmetric_normalize,
)
from repro.graphs.sparse import top_k_per_row

__all__ = [
    "Graph",
    "GraphDelta",
    "UpdateBatch",
    "DELTA_KINDS",
    "graph_fingerprint",
    "payload_digest",
    "node_homophily",
    "edge_homophily",
    "class_insensitive_edge_homophily",
    "row_normalize",
    "column_normalize",
    "symmetric_normalize",
    "add_self_loops",
    "top_k_per_row",
]
