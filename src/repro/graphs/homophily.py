"""Graph homophily measures.

The paper characterises datasets by *node homophily* (its Eq. (1)): the
average fraction of a node's neighbours that share its label.  Edge
homophily and the class-insensitive variant of Lim et al. (LINKX) are also
provided because the large-scale benchmark datasets are usually reported
with those measures.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphError
from repro.graphs.graph import Graph


def _require_labels(graph: Graph) -> np.ndarray:
    if graph.labels is None:
        raise GraphError("homophily measures require node labels")
    return graph.labels


def node_homophily(graph: Graph) -> float:
    """Node homophily ``H_node`` as defined in Eq. (1) of the paper.

    Nodes without neighbours are skipped (they contribute no neighbourhood
    fraction), matching the common implementation in heterophily benchmarks.
    """
    labels = _require_labels(graph)
    adjacency = graph.adjacency
    total = 0.0
    counted = 0
    for node in range(graph.num_nodes):
        start, end = adjacency.indptr[node], adjacency.indptr[node + 1]
        neighbors = adjacency.indices[start:end]
        if neighbors.size == 0:
            continue
        same = np.count_nonzero(labels[neighbors] == labels[node])
        total += same / neighbors.size
        counted += 1
    if counted == 0:
        return 0.0
    return float(total / counted)


def edge_homophily(graph: Graph) -> float:
    """Fraction of edges whose endpoints share a label."""
    labels = _require_labels(graph)
    edges = graph.edge_list()
    if edges.shape[0] == 0:
        return 0.0
    same = np.count_nonzero(labels[edges[:, 0]] == labels[edges[:, 1]])
    return float(same / edges.shape[0])


def class_insensitive_edge_homophily(graph: Graph) -> float:
    """Class-insensitive edge homophily (Lim et al., 2021).

    Averages, over classes, the excess of the per-class edge homophily above
    the class prior, clipped at zero.  Values near zero indicate strong
    heterophily even when class sizes are imbalanced.
    """
    labels = _require_labels(graph)
    edges = graph.edge_list()
    num_classes = int(labels.max()) + 1
    n = graph.num_nodes
    if edges.shape[0] == 0 or num_classes < 2:
        return 0.0
    score = 0.0
    for klass in range(num_classes):
        mask = labels[edges[:, 0]] == klass
        mask |= labels[edges[:, 1]] == klass
        klass_edges = edges[mask]
        if klass_edges.shape[0] == 0:
            continue
        both = np.count_nonzero(
            (labels[klass_edges[:, 0]] == klass) & (labels[klass_edges[:, 1]] == klass)
        )
        h_k = both / klass_edges.shape[0]
        prior = np.count_nonzero(labels == klass) / n
        score += max(0.0, h_k - prior)
    return float(score / (num_classes - 1))


def heterophily_extent(graph: Graph) -> float:
    """The paper's heterophily extent ``p``: 1 - node homophily."""
    return 1.0 - node_homophily(graph)


__all__ = [
    "node_homophily",
    "edge_homophily",
    "class_insensitive_edge_homophily",
    "heterophily_extent",
]
