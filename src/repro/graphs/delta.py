"""Validated edge-update deltas for evolving graphs.

The dynamic subsystem (:mod:`repro.dynamic`) repairs a LocalPush
operator instead of recomputing it when the underlying graph mutates.
This module defines the update language that drives it:

:class:`GraphDelta`
    One undirected edge update — ``insert``, ``delete`` or ``reweight``
    — validated at construction and canonicalised to ``u < v`` so two
    spellings of the same edge hash identically.
:class:`UpdateBatch`
    An ordered, composable sequence of deltas with a content hash
    (:meth:`UpdateBatch.content_hash`, via the shared
    :func:`repro.graphs.fingerprint.payload_digest` path) used by the
    delta-chained operator-cache entries, plus the dict round-trip the
    daemon's ``/update`` endpoint speaks.

Deltas are *strict*: an insert of an existing edge, a delete or
reweight of a missing one, a self-loop, or a non-positive weight is an
error (:class:`repro.errors.GraphError`) rather than a silent no-op —
the repair algebra assumes the delta describes exactly what changed.
The node set is fixed: updates address existing node ids only (bounds
are checked against the graph at application time by
:meth:`repro.graphs.graph.Graph.apply_delta`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Optional, Tuple, Union

from repro.errors import GraphError
from repro.graphs.fingerprint import payload_digest

#: Update kinds accepted by :class:`GraphDelta`.
DELTA_KINDS = ("insert", "delete", "reweight")

#: Participates in every :meth:`UpdateBatch.content_hash` payload; bump
#: to orphan delta-chained cache entries when delta semantics change.
DELTA_FORMAT_VERSION = 1


@dataclass(frozen=True)
class GraphDelta:
    """One undirected edge update.

    ``insert`` adds a new edge with ``weight`` (default ``1.0``),
    ``delete`` removes an existing edge (``weight`` must be omitted),
    ``reweight`` changes an existing edge's weight.  Endpoints are
    canonicalised to ``u < v`` on construction — the graphs are
    undirected, so ``(3, 1)`` and ``(1, 3)`` name the same edge and must
    hash the same way.
    """

    kind: str
    u: int
    v: int
    weight: Optional[float] = None

    def __post_init__(self) -> None:
        coerce = object.__setattr__
        if self.kind not in DELTA_KINDS:
            raise GraphError(
                f"delta kind must be one of {DELTA_KINDS}, got {self.kind!r}")
        try:
            u, v = int(self.u), int(self.v)
        except (TypeError, ValueError):
            raise GraphError(
                f"delta endpoints must be integers, got "
                f"({self.u!r}, {self.v!r})") from None
        if u < 0 or v < 0:
            raise GraphError(f"delta endpoints must be >= 0, got ({u}, {v})")
        if u == v:
            raise GraphError(f"self-loop delta on node {u} is not allowed")
        coerce(self, "u", min(u, v))
        coerce(self, "v", max(u, v))
        if self.kind == "delete":
            if self.weight is not None:
                raise GraphError(
                    f"delete delta must not carry a weight, got {self.weight!r}")
            return
        weight = 1.0 if self.weight is None else self.weight
        try:
            weight = float(weight)
        except (TypeError, ValueError):
            raise GraphError(
                f"delta weight must be a number, got {self.weight!r}") from None
        if not math.isfinite(weight) or weight <= 0.0:
            raise GraphError(
                f"delta weight must be finite and positive, got {weight}")
        coerce(self, "weight", weight)

    def to_dict(self) -> dict:
        """JSON-serialisable form (``weight`` omitted for deletes)."""
        record: dict = {"kind": self.kind, "u": self.u, "v": self.v}
        if self.weight is not None:
            record["weight"] = self.weight
        return record

    @classmethod
    def from_dict(cls, record: Mapping[str, object]) -> "GraphDelta":
        """Inverse of :meth:`to_dict`; unknown fields are rejected."""
        if not isinstance(record, Mapping):
            raise GraphError(f"delta record must be a mapping, got {record!r}")
        unknown = set(record) - {"kind", "u", "v", "weight"}
        if unknown:
            raise GraphError(f"unknown delta field(s) {sorted(unknown)}")
        missing = {"kind", "u", "v"} - set(record)
        if missing:
            raise GraphError(f"delta record missing field(s) {sorted(missing)}")
        return cls(kind=record["kind"], u=record["u"], v=record["v"],  # type: ignore[arg-type]
                   weight=record.get("weight"))  # type: ignore[arg-type]


#: Anything :meth:`UpdateBatch.coerce` accepts as an update stream.
Updates = Union["UpdateBatch", GraphDelta, Iterable[GraphDelta]]


@dataclass(frozen=True)
class UpdateBatch:
    """An ordered sequence of :class:`GraphDelta`, applied left to right.

    Batches compose with ``+`` (sequential concatenation — ``a + b``
    means *apply a, then b*), so a chain of small updates collapses into
    one batch whose :meth:`content_hash` addresses the chained cache
    entry.  A batch may touch the same edge more than once (e.g. insert
    then reweight); the sequential semantics make that well-defined.
    """

    deltas: Tuple[GraphDelta, ...] = ()

    def __post_init__(self) -> None:
        deltas = tuple(self.deltas)
        for delta in deltas:
            if not isinstance(delta, GraphDelta):
                raise GraphError(
                    f"UpdateBatch entries must be GraphDelta, got {delta!r}")
        object.__setattr__(self, "deltas", deltas)

    @classmethod
    def coerce(cls, updates: Updates) -> "UpdateBatch":
        """Normalise a delta, a batch or an iterable of deltas to a batch."""
        if isinstance(updates, UpdateBatch):
            return updates
        if isinstance(updates, GraphDelta):
            return cls((updates,))
        try:
            return cls(tuple(updates))
        except TypeError:
            raise GraphError(
                f"updates must be an UpdateBatch, a GraphDelta or an "
                f"iterable of GraphDelta, got {updates!r}") from None

    def __len__(self) -> int:
        return len(self.deltas)

    def __iter__(self) -> Iterator[GraphDelta]:
        return iter(self.deltas)

    def __add__(self, other: "UpdateBatch") -> "UpdateBatch":
        if not isinstance(other, UpdateBatch):
            return NotImplemented
        return UpdateBatch(self.deltas + other.deltas)

    def touched_nodes(self) -> Tuple[int, ...]:
        """Sorted, de-duplicated endpoints of every delta in the batch."""
        return tuple(sorted({node for delta in self.deltas
                             for node in (delta.u, delta.v)}))

    def content_hash(self) -> str:
        """Canonical digest of the batch (order-sensitive, version-tagged).

        Shares the :func:`repro.graphs.fingerprint.payload_digest` path
        with the operator cache and the experiment store so delta-chained
        cache keys cannot drift onto a second hashing scheme.
        """
        return payload_digest({
            "version": DELTA_FORMAT_VERSION,
            "deltas": [delta.to_dict() for delta in self.deltas],
        })

    def to_dict(self) -> dict:
        """JSON-serialisable form, the daemon's ``/update`` body shape."""
        return {"deltas": [delta.to_dict() for delta in self.deltas]}

    @classmethod
    def from_dict(cls, record: Mapping[str, object]) -> "UpdateBatch":
        """Inverse of :meth:`to_dict`; unknown fields are rejected."""
        if not isinstance(record, Mapping):
            raise GraphError(f"batch record must be a mapping, got {record!r}")
        unknown = set(record) - {"deltas"}
        if unknown:
            raise GraphError(f"unknown batch field(s) {sorted(unknown)}")
        deltas = record.get("deltas")
        if not isinstance(deltas, (list, tuple)):
            raise GraphError(
                f"batch record needs a 'deltas' list, got {deltas!r}")
        return cls(tuple(GraphDelta.from_dict(entry) for entry in deltas))


__all__ = ["GraphDelta", "UpdateBatch", "Updates", "DELTA_KINDS",
           "DELTA_FORMAT_VERSION"]
