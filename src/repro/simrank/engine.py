"""Unified LocalPush engine core with pluggable shard executors.

This module owns the *single* implementation of the batched LocalPush
loop (Algorithm 1 of the paper, frontier-batched form).  The three
engines that previous revisions kept side by side — the vectorized
frontier engine, the thread-sharded engine and its streaming top-k
variant — were the same round loop differing only in **how the per-round
shard pushes are executed**.  That difference is now a pluggable
*executor* strategy:

``executor="serial"``
    Shards are pushed one after another in the calling thread.  This
    absorbs the old vectorized engine (``backend="vectorized"``): a
    frontier small enough for one shard is pushed with a single sparse
    matmul, exactly as before.
``executor="thread"``
    Shards are pushed by a :class:`concurrent.futures.ThreadPoolExecutor`
    (the old ``backend="sharded"`` pool).  scipy's sparse matmul holds
    the GIL, so this mainly overlaps allocation and bookkeeping.
``executor="process"``
    Shards are pushed by a process pool.  The CSR arrays of the walk
    matrix ``W`` (and ``Wᵀ``) are placed in
    :mod:`multiprocessing.shared_memory` segments once per run; each
    worker process attaches zero-copy views, so only the (small) shard
    frontiers and the partial results cross the process boundary.  This
    is the executor that scales past the GIL on multi-core CPython.

Every round works on the same deterministic plan:

1. gather the above-threshold frontier from the CSR residual,
2. absorb it into the estimate,
3. partition it into shards ``F = Σ_i F_i`` — the partition is a
   function of the frontier alone (``num_shards`` fixed by the caller or
   derived from the frontier size), **never** of the executor or worker
   count,
4. hand the shards to the executor and merge the partial updates
   ``c·Wᵀ F_i W`` *in shard order*, no matter which worker finished
   first.

Because the push operator is linear in ``F`` and the shard partition and
merge order are executor-independent, the returned matrix is
**bit-identical for every executor and every worker count** — the
property the operator cache relies on (its key excludes both knobs) and
the equivalence suite pins.  The residual invariant, the streaming
top-k prune with its ``‖R‖_max/(1−c)`` correction bound, and the shared
:func:`repro.simrank.localpush.finalize_estimate` semantics are all
unchanged from the engines this core replaces; see the module docstring
of :mod:`repro.simrank` for the error-bound arguments.
"""

from __future__ import annotations

import multiprocessing as mp
import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from repro.errors import SimRankError
from repro.graphs.graph import Graph
from repro.graphs.normalize import column_normalize
from repro.graphs.sparse import csr_row_indices as _csr_rows
from repro.graphs.sparse import top_k_per_row
from repro.simrank.exact import DEFAULT_DECAY
from repro.simrank.kernels import (DTYPES, KERNELS, PhaseProfile, Shard,
                                   make_round_state, resolve_kernel,
                                   shard_bounds, streaming_prune,
                                   working_dtype)
from repro.utils.timer import Timer

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from repro.simrank.localpush import LocalPushResult

#: Target number of frontier entries per shard when ``num_shards`` is not
#: given.  Chosen so a shard's ``Wᵀ F_i W`` stays comfortably inside cache
#: while leaving enough shards to occupy a small worker pool.
DEFAULT_SHARD_NNZ = 8192

#: Upper bound applied to the default worker count.
DEFAULT_MAX_WORKERS = 4

#: Executor names accepted by :func:`localpush_engine`.
EXECUTORS = ("serial", "thread", "process")


def default_num_workers() -> int:
    """Worker count used when ``num_workers`` is not specified."""
    return max(1, min(DEFAULT_MAX_WORKERS, os.cpu_count() or 1))


def _push_matrix(walk_t: sp.csr_matrix, walk: sp.csr_matrix,
                 shard: sp.csr_matrix, decay: float) -> sp.csr_matrix:
    """One shard matrix's partial update ``c·Wᵀ F_i W`` (pure)."""
    pushed = ((walk_t @ shard) @ walk).tocsr()
    pushed.data *= decay
    return pushed


def _push_shard(walk_t: sp.csr_matrix, walk: sp.csr_matrix,
                rows: np.ndarray, cols: np.ndarray, data: np.ndarray,
                n: int, decay: float) -> sp.csr_matrix:
    """One shard's partial update ``c·Wᵀ F_i W`` (pure, order-independent)."""
    shard = sp.csr_matrix((data, (rows, cols)), shape=(n, n))
    return _push_matrix(walk_t, walk, shard, decay)


# --------------------------------------------------------------------- #
# Executor strategies
# --------------------------------------------------------------------- #
class _SerialExecutor:
    """Push shards one by one in the calling thread."""

    name = "serial"
    wants_triplets = False
    workers_used: Optional[int] = None

    def __init__(self, walk: sp.csr_matrix, walk_t: sp.csr_matrix,
                 n: int, decay: float) -> None:
        self._walk, self._walk_t = walk, walk_t
        self._n, self._decay = n, decay

    def push_round(self, shards: Sequence[Shard]) -> List[sp.csr_matrix]:
        return [_push_shard(self._walk_t, self._walk, rows, cols, data,
                            self._n, self._decay)
                for rows, cols, data in shards]

    def push_round_matrices(self, matrices: Sequence[sp.csr_matrix]
                            ) -> List[sp.csr_matrix]:
        return [_push_matrix(self._walk_t, self._walk, matrix, self._decay)
                for matrix in matrices]

    def close(self) -> None:
        pass


class _ThreadExecutor(_SerialExecutor):
    """Push shards on a thread pool; single-shard rounds run inline."""

    name = "thread"

    def __init__(self, walk: sp.csr_matrix, walk_t: sp.csr_matrix,
                 n: int, decay: float, workers: int) -> None:
        super().__init__(walk, walk_t, n, decay)
        self.workers_used = workers
        self._pool: Optional[ThreadPoolExecutor] = None

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(max_workers=self.workers_used)
        return self._pool

    def push_round(self, shards: Sequence[Shard]) -> List[sp.csr_matrix]:
        if self.workers_used == 1 or len(shards) <= 1:
            return super().push_round(shards)
        pool = self._ensure_pool()
        futures = [pool.submit(_push_shard, self._walk_t, self._walk,
                               rows, cols, data, self._n, self._decay)
                   for rows, cols, data in shards]
        return [future.result() for future in futures]

    def push_round_matrices(self, matrices: Sequence[sp.csr_matrix]
                            ) -> List[sp.csr_matrix]:
        if self.workers_used == 1 or len(matrices) <= 1:
            return super().push_round_matrices(matrices)
        pool = self._ensure_pool()
        futures = [pool.submit(_push_matrix, self._walk_t, self._walk,
                               matrix, self._decay) for matrix in matrices]
        return [future.result() for future in futures]

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


# Per-worker-process state: the walk matrices rebuilt as zero-copy views
# over the parent's shared-memory segments (set by _process_worker_init).
_PROCESS_STATE: dict = {}


def _process_worker_init(spec: dict) -> None:
    """Attach a worker process to the parent's shared walk matrices."""
    from multiprocessing import resource_tracker, shared_memory

    segments = []
    arrays = {}
    # The parent owns the segments and unlinks them at close; suppress the
    # attach-side resource_tracker registration (a per-attach register with
    # no matching unregister — removed upstream only in 3.13's track=False)
    # so the shared tracker neither warns about "leaked" segments nor
    # double-frees them.
    original_register = resource_tracker.register

    def _register(name: str, rtype: str) -> None:  # pragma: no cover - trivial shim
        if rtype != "shared_memory":
            original_register(name, rtype)

    resource_tracker.register = _register
    try:
        for field, (name, dtype, length) in spec["arrays"].items():
            segment = shared_memory.SharedMemory(name=name)
            segments.append(segment)
            arrays[field] = np.ndarray((length,), dtype=np.dtype(dtype),
                                       buffer=segment.buf)
    finally:
        resource_tracker.register = original_register
    n = spec["n"]
    walk = sp.csr_matrix(
        (arrays["walk_data"], arrays["walk_indices"], arrays["walk_indptr"]),
        shape=(n, n))
    walk_t = sp.csr_matrix(
        (arrays["walk_t_data"], arrays["walk_t_indices"],
         arrays["walk_t_indptr"]), shape=(n, n))
    _PROCESS_STATE.update(walk=walk, walk_t=walk_t, n=n,
                          decay=spec["decay"], segments=segments)


def _process_push_shard(rows: np.ndarray, cols: np.ndarray,
                        data: np.ndarray) -> Tuple[np.ndarray, np.ndarray,
                                                   np.ndarray]:
    """Worker-side shard push against the shared walk matrices."""
    n = _PROCESS_STATE["n"]
    pushed = _push_shard(_PROCESS_STATE["walk_t"], _PROCESS_STATE["walk"],
                         rows, cols, data, n, _PROCESS_STATE["decay"])
    return pushed.data, pushed.indices, pushed.indptr


class _ProcessExecutor(_SerialExecutor):
    """Push shards on a process pool over shared-memory walk matrices.

    The pool and the shared-memory segments are created lazily on the
    first multi-shard round, so small runs (every round fits one shard)
    never pay the fork/attach cost — and remain bit-identical, because
    single-shard rounds are computed inline by every executor.

    ``wants_triplets`` steers the fused kernel back to (rows, cols, data)
    chunks for multi-shard rounds: zero-copy CSR views cannot cross the
    process boundary, and the triplet rebuild is exactly what the
    shared-memory workers already implement.
    """

    name = "process"
    wants_triplets = True

    def __init__(self, walk: sp.csr_matrix, walk_t: sp.csr_matrix,
                 n: int, decay: float, workers: int) -> None:
        super().__init__(walk, walk_t, n, decay)
        self.workers_used = workers
        self._pool: Optional[ProcessPoolExecutor] = None
        self._segments: list = []

    def _start_pool(self) -> None:
        from multiprocessing import shared_memory

        spec_arrays = {}
        for field, array in (
                ("walk_data", self._walk.data),
                ("walk_indices", self._walk.indices),
                ("walk_indptr", self._walk.indptr),
                ("walk_t_data", self._walk_t.data),
                ("walk_t_indices", self._walk_t.indices),
                ("walk_t_indptr", self._walk_t.indptr)):
            array = np.ascontiguousarray(array)
            segment = shared_memory.SharedMemory(
                create=True, size=max(1, array.nbytes))
            view = np.ndarray(array.shape, dtype=array.dtype,
                              buffer=segment.buf)
            view[:] = array
            self._segments.append(segment)
            spec_arrays[field] = (segment.name, array.dtype.str, array.shape[0])
        spec = {"arrays": spec_arrays, "n": self._n, "decay": self._decay}
        methods = mp.get_all_start_methods()
        context = mp.get_context("fork" if "fork" in methods else "spawn")
        self._pool = ProcessPoolExecutor(
            max_workers=self.workers_used, mp_context=context,
            initializer=_process_worker_init, initargs=(spec,))

    def push_round(self, shards: Sequence[Shard]) -> List[sp.csr_matrix]:
        if len(shards) <= 1:
            return _SerialExecutor.push_round(self, shards)
        if self._pool is None:
            self._start_pool()
        futures = [self._pool.submit(_process_push_shard, rows, cols, data)
                   for rows, cols, data in shards]
        partials = []
        for future in futures:
            data, indices, indptr = future.result()
            partials.append(sp.csr_matrix((data, indices, indptr),
                                          shape=(self._n, self._n)))
        return partials

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        for segment in self._segments:
            segment.close()
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        self._segments = []


def _make_executor(name: str, walk: sp.csr_matrix, walk_t: sp.csr_matrix,
                   n: int, decay: float,
                   num_workers: Optional[int]) -> "_SerialExecutor":
    if name == "serial":
        return _SerialExecutor(walk, walk_t, n, decay)
    workers = num_workers if num_workers is not None else default_num_workers()
    if name == "thread":
        return _ThreadExecutor(walk, walk_t, n, decay, workers)
    if name == "process":
        return _ProcessExecutor(walk, walk_t, n, decay, workers)
    raise SimRankError(f"unknown LocalPush executor {name!r}; "
                       f"expected one of {EXECUTORS}")


# The streaming top-k prune now lives in repro.simrank.kernels (shared
# by every kernel); re-exported here under its historical private name.
_streaming_prune = streaming_prune


# --------------------------------------------------------------------- #
# The engine core
# --------------------------------------------------------------------- #
@dataclass
class _EngineRun:
    """Raw outcome of one push-round loop, before result packaging."""

    estimate: sp.csr_matrix
    num_pushes: int
    num_rounds: int
    num_residual_entries: int
    elapsed_seconds: float
    workers_used: Optional[int]
    max_shards_used: int
    kernel_used: str
    #: Final residual, attached only when the caller asked to keep it
    #: (``keep_residual=True`` — the dynamic-maintenance path).
    residual: Optional[sp.csr_matrix] = None


def _validate_engine_args(decay: float, epsilon: float, executor: str,
                          num_workers: Optional[int],
                          num_shards: Optional[int],
                          stream_top_k: Optional[int],
                          kernel: str = "auto",
                          dtype: str = "float64") -> None:
    if not 0.0 < decay < 1.0:
        raise SimRankError(f"decay factor c must be in (0, 1), got {decay}")
    if epsilon <= 0.0:
        raise SimRankError(f"epsilon must be positive, got {epsilon}")
    if executor not in EXECUTORS:
        raise SimRankError(f"unknown LocalPush executor {executor!r}; "
                           f"expected one of {EXECUTORS}")
    if kernel not in KERNELS:
        raise SimRankError(f"unknown LocalPush kernel {kernel!r}; "
                           f"expected one of {KERNELS}")
    if dtype not in DTYPES:
        raise SimRankError(f"unknown LocalPush dtype {dtype!r}; "
                           f"expected one of {DTYPES}")
    if num_workers is not None and num_workers < 1:
        raise SimRankError(f"num_workers must be >= 1, got {num_workers}")
    if num_shards is not None and num_shards < 1:
        raise SimRankError(f"num_shards must be >= 1, got {num_shards}")
    if stream_top_k is not None and stream_top_k < 1:
        raise SimRankError(f"stream_top_k must be >= 1, got {stream_top_k}")


def _seed_residual(n: int, seed_nodes: Optional[np.ndarray],
                   dtype: np.dtype = np.dtype(np.float64)) -> sp.csr_matrix:
    """Initial residual: the identity restricted to ``seed_nodes``.

    ``seed_nodes=None`` seeds every node (the all-pairs run).  A restricted
    seed set is exact for the seeded nodes' connected components: the
    push operator ``c·Wᵀ F W`` never creates an entry ``(a, b)`` with
    ``a`` and ``b`` outside the components the mass started in, so seeds
    from other components contribute nothing to the restricted rows.
    """
    if seed_nodes is None:
        return sp.identity(n, dtype=dtype, format="csr")
    counts = np.zeros(n, dtype=np.int64)
    counts[seed_nodes] = 1
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    data = np.ones(seed_nodes.size, dtype=dtype)
    return sp.csr_matrix((data, seed_nodes.astype(np.int64, copy=False),
                          indptr), shape=(n, n))


def _run_rounds(graph: Graph, *, decay: float, epsilon: float, prune: bool,
                absorb_residual: bool, max_pushes: Optional[int],
                executor: str, num_workers: Optional[int],
                num_shards: Optional[int], stream_top_k: Optional[int],
                coalesce_every: int,
                seed_nodes: Optional[np.ndarray] = None,
                absorb_rows: Optional[np.ndarray] = None,
                kernel: str = "auto", dtype: str = "float64",
                profile: Optional[PhaseProfile] = None,
                initial_residual: Optional[sp.csr_matrix] = None,
                copy_residual: bool = True,
                signed: bool = False, finalize: bool = True,
                keep_residual: bool = False) -> _EngineRun:
    """The shared frontier-batched round loop.

    The per-round CSR arithmetic is delegated to a *round state* from
    :mod:`repro.simrank.kernels` (``kernel`` selects which; every kernel
    is bit-identical per ``dtype``); this loop owns the round plan —
    extract, absorb, shard, push, coalesce, prune — and the accounting.

    ``seed_nodes``/``absorb_rows`` are the single-source restriction
    hooks: the residual starts as the identity restricted to
    ``seed_nodes`` (``None`` = all nodes) and only estimate entries whose
    row is in ``absorb_rows`` are materialised (``None`` = all rows).
    Every arithmetic operation on an absorbed row is identical to the
    unrestricted run whenever the shard partitions coincide — CSR
    matmul, addition, thresholding and duplicate folding are all per-row
    independent — which is what makes single-source rows bit-identical
    to the all-pairs rows (see ``single_source_localpush`` for the
    precise guarantee).

    Streaming top-k runs in-loop only for unrestricted runs; restricted
    runs accumulate triplets and apply the identical
    ``top_k_per_row(..., keep_diagonal=True)`` semantics post hoc.

    The dynamic-maintenance hooks (all defaulted off, leaving every
    fresh run bit-identical to the pre-hook loop):

    ``initial_residual``
        Warm-start residual replacing the identity seeding — the repair
        residual of :mod:`repro.dynamic`.  Copied before use; the
        caller's matrix is never mutated.
    ``signed``
        Magnitude-threshold frontier extraction (``|R| > threshold``)
        for residuals that carry negative mass; excludes streaming
        top-k, whose prune slack assumes non-negative residuals.
    ``finalize``
        ``False`` skips :func:`finalize_estimate` (diagonal restore and
        ε/10 floor) so the returned estimate is the raw absorbed
        frontier sum — the quantity the repair algebra adds to a
        maintained estimate.
    ``keep_residual``
        Attach the final residual to the returned :class:`_EngineRun`.
    """
    from repro.simrank.localpush import finalize_estimate

    if signed and stream_top_k is not None:
        raise SimRankError(
            "signed (repair) runs cannot stream top-k: the streaming "
            "prune's slack bound assumes a non-negative residual")

    n = graph.num_nodes
    threshold = (1.0 - decay) * epsilon
    np_dtype = working_dtype(dtype)
    walk = column_normalize(graph.adjacency)     # W = A D⁻¹
    if walk.dtype != np_dtype:
        walk = walk.astype(np_dtype)
    walk_t = walk.T.tocsr()
    runner = _make_executor(executor, walk, walk_t, n, decay, num_workers)

    if initial_residual is not None:
        residual = sp.csr_matrix(initial_residual, dtype=np_dtype,
                                 copy=copy_residual)
        if residual.shape != (n, n):
            raise SimRankError(
                f"initial residual must have shape {(n, n)}, "
                f"got {residual.shape}")
        residual.sort_indices()
        residual.eliminate_zeros()
    else:
        residual = _seed_residual(n, seed_nodes, np_dtype)
    state = make_round_state(resolve_kernel(kernel), residual, n=n,
                             dtype=np_dtype,
                             index_dtype=walk.indices.dtype,
                             profile=profile, signed=signed)
    state.set_flush_cadence(coalesce_every)
    streaming = stream_top_k is not None and absorb_rows is None
    absorb_mask: Optional[np.ndarray] = None
    if absorb_rows is not None:
        absorb_mask = np.zeros(n, dtype=bool)
        absorb_mask[absorb_rows] = True
    # The materialised running estimate is only needed when the streaming
    # prune inspects it in-loop; otherwise absorbed frontiers are
    # accumulated as COO triplets and coalesced once at the end.
    est_rows: list[np.ndarray] = []
    est_cols: list[np.ndarray] = []
    est_data: list[np.ndarray] = []

    num_pushes = 0
    num_rounds = 0
    max_shards_used = 0
    timer = Timer()
    timer.start()
    try:
        while True:
            if profile is not None:
                # Round marker for span-emitting profiles (telemetry):
                # a plain accumulating PhaseProfile ignores it.  Metadata
                # only — it cannot influence the arithmetic.
                profile.begin_round(num_rounds)
            frontier = state.extract_frontier(threshold)
            if frontier is None:
                break
            count = frontier.count

            # Absorb the frontier into the estimate (line 4 of Algorithm 1,
            # batched); the round state has already cleared it from the
            # residual.
            if streaming:
                state.absorb_stream(frontier)
            elif absorb_mask is not None:
                keep = absorb_mask[frontier.rows]
                if keep.any():
                    est_rows.append(frontier.rows[keep])
                    est_cols.append(frontier.cols[keep])
                    est_data.append(frontier.data[keep])
            else:
                est_rows.append(frontier.rows)
                est_cols.append(frontier.cols)
                est_data.append(frontier.data)
            num_pushes += count
            if max_pushes is not None and num_pushes > max_pushes:
                raise SimRankError(
                    f"LocalPush exceeded max_pushes={max_pushes}; "
                    "epsilon is likely too small for this graph"
                )

            # Shard the frontier by stored-entry ranges.  The partition is
            # a function of the frontier only, never of the kernel,
            # executor or worker count.
            shards = num_shards if num_shards is not None else max(
                1, -(-count // DEFAULT_SHARD_NNZ))
            shards = min(shards, count)
            max_shards_used = max(max_shards_used, shards)
            bounds = shard_bounds(count, shards)

            state.push_round(runner, frontier, bounds)
            num_rounds += 1
            if num_rounds % coalesce_every == 0:
                state.coalesce()

            if streaming:
                assert stream_top_k is not None
                state.stream_prune(stream_top_k, decay)
    finally:
        runner.close()
    residual, stream_estimate = state.finish(streaming, stream_top_k, decay)
    residual.eliminate_zeros()
    elapsed = timer.stop()

    if streaming:
        assert stream_estimate is not None
        estimate = stream_estimate
    else:
        estimate = sp.csr_matrix((n, n), dtype=np_dtype)
    if not streaming and est_data:
        estimate = sp.coo_matrix(
            (np.concatenate(est_data),
             (np.concatenate(est_rows), np.concatenate(est_cols))),
            shape=(n, n),
        ).tocsr()  # COO→CSR sums duplicate frontier absorptions

    if absorb_residual and residual.nnz:
        rows = _csr_rows(residual)
        positive = residual.data > 0.0
        if absorb_mask is not None:
            positive &= absorb_mask[rows]
        if positive.any():
            leftover_mass = sp.csr_matrix(
                (residual.data[positive].copy(),
                 (rows[positive],
                  residual.indices[positive].astype(np.int64, copy=False))),
                shape=(n, n))
            estimate = estimate + leftover_mass

    if finalize:
        estimate = finalize_estimate(estimate, residual, epsilon=epsilon,
                                     prune=prune)

    if stream_top_k is not None:
        # Exact top_k_per_row semantics over the surviving superset: equal
        # to pruning the full estimate, because streamed drops were
        # provably outside the final top-k.  Restricted runs reach here
        # with the full (un-streamed) absorbed rows, so this is simply
        # the post-hoc prune.
        estimate = top_k_per_row(estimate, stream_top_k, keep_diagonal=True)

    if signed:
        leftover = int(residual.nnz)  # eliminate_zeros ran: all nonzero
    else:
        leftover = int(np.count_nonzero(residual.data > 0.0))
    return _EngineRun(
        estimate=estimate,
        num_pushes=num_pushes,
        num_rounds=num_rounds,
        num_residual_entries=leftover,
        elapsed_seconds=elapsed,
        workers_used=runner.workers_used,
        max_shards_used=max_shards_used,
        kernel_used=state.kernel,
        residual=residual if keep_residual else None,
    )


def localpush_engine(graph: Graph, *, decay: float = DEFAULT_DECAY,
                     epsilon: float = 0.1, prune: bool = True,
                     absorb_residual: bool = False,
                     max_pushes: int | None = None,
                     executor: str = "serial",
                     num_workers: Optional[int] = None,
                     num_shards: Optional[int] = None,
                     stream_top_k: Optional[int] = None,
                     coalesce_every: int = 4,
                     backend_label: Optional[str] = None,
                     kernel: str = "auto", dtype: str = "float64",
                     profile: Optional[PhaseProfile] = None
                     ) -> "LocalPushResult":
    """Run the batched LocalPush round loop with a pluggable executor.

    Parameters mirror :func:`repro.simrank.localpush.localpush_simrank`
    (which dispatches here for every non-dict plan), plus:

    executor:
        ``"serial"``, ``"thread"`` or ``"process"`` — how the per-round
        shard pushes are executed.  The result is bit-identical for
        every executor and worker count (see the module docstring), so
        this is purely a throughput knob.
    kernel:
        ``"auto"``, ``"scipy"``, ``"fused"`` or ``"numba"`` — how the
        per-round CSR arithmetic is carried out (see
        :mod:`repro.simrank.kernels`).  Bit-identical per ``dtype`` for
        every kernel, so — like ``executor`` — purely a throughput knob.
    dtype:
        ``"float64"`` (default) or ``"float32"``.  float32 halves the
        working-set memory at the cost of a slightly enlarged error
        bound (:func:`repro.simrank.kernels.float32_error_bound`) and a
        separate operator-cache key.
    profile:
        Optional :class:`repro.simrank.kernels.PhaseProfile` that
        accumulates per-phase seconds (frontier/push/merge/prune) for
        benchmarking; ``None`` keeps the loop unmeasured.
    num_workers:
        Pool size for the thread/process executors (ignored by
        ``"serial"``); defaults to :func:`default_num_workers`.
    num_shards:
        Fixed shard count per round.  Defaults to
        ``ceil(frontier_nnz / DEFAULT_SHARD_NNZ)``, recomputed per round
        from the frontier alone so results stay independent of the
        executor and pool size.
    stream_top_k:
        When given, stream top-k pruning into the round loop (bounded
        ``O(k·n)`` memory) and return the matrix already pruned with
        :func:`repro.graphs.sparse.top_k_per_row` semantics
        (``keep_diagonal=True``); matches pruning the fully materialised
        estimate exactly.
    backend_label:
        Legacy backend name recorded on the result for callers that
        still reason in ``backend=`` terms (``"vectorized"`` ≡
        ``(core, serial)``, ``"sharded"`` ≡ ``(core, thread|process)``).
    """
    from repro.simrank.localpush import LocalPushResult

    _validate_engine_args(decay, epsilon, executor, num_workers, num_shards,
                          stream_top_k, kernel, dtype)
    run = _run_rounds(graph, decay=decay, epsilon=epsilon, prune=prune,
                      absorb_residual=absorb_residual, max_pushes=max_pushes,
                      executor=executor, num_workers=num_workers,
                      num_shards=num_shards, stream_top_k=stream_top_k,
                      coalesce_every=coalesce_every, kernel=kernel,
                      dtype=dtype, profile=profile)
    return LocalPushResult(
        matrix=run.estimate,
        num_pushes=run.num_pushes,
        num_residual_entries=run.num_residual_entries,
        elapsed_seconds=run.elapsed_seconds,
        epsilon=epsilon,
        decay=decay,
        backend=backend_label or
        ("vectorized" if executor == "serial" else "sharded"),
        executor=executor,
        num_rounds=run.num_rounds,
        num_workers=run.workers_used,
        num_shards=run.max_shards_used,
        kernel=run.kernel_used,
        dtype=dtype,
    )


# --------------------------------------------------------------------- #
# Warm-started (repair) runs
# --------------------------------------------------------------------- #
@dataclass
class ResumeRun:
    """Outcome of a warm-started round loop (:func:`resume_localpush`).

    ``estimate_delta`` is the raw absorbed frontier sum of the resumed
    rounds — no diagonal restore, no ε/10 floor — i.e. the correction a
    maintained estimate adds to itself.  ``residual`` is the final
    residual with every entry magnitude ``≤ (1−c)·ε``.
    """

    estimate_delta: sp.csr_matrix
    residual: sp.csr_matrix
    num_pushes: int
    num_rounds: int
    num_residual_entries: int
    elapsed_seconds: float
    workers_used: Optional[int]
    max_shards_used: int
    kernel_used: str


def resume_localpush(graph: Graph, initial_residual: sp.csr_matrix, *,
                     decay: float = DEFAULT_DECAY, epsilon: float = 0.1,
                     max_pushes: Optional[int] = None,
                     executor: str = "serial",
                     num_workers: Optional[int] = None,
                     num_shards: Optional[int] = None,
                     coalesce_every: int = 4, kernel: str = "auto",
                     dtype: str = "float64",
                     copy_residual: bool = True,
                     profile: Optional[PhaseProfile] = None) -> ResumeRun:
    """Resume the round loop from an explicit (possibly signed) residual.

    This is the engine entry point of the dynamic subsystem
    (:mod:`repro.dynamic`): given a residual ``R₀`` that restores the
    LocalPush invariant ``Ŝ + G(R₀) = S`` for some maintained estimate
    ``Ŝ`` on ``graph``, it runs the standard frontier rounds — any
    ``kernel`` × ``executor`` × worker count, same shard plan, same
    bit-determinism argument — in *signed* mode (``|R| > (1−c)·ε``
    frontier threshold, since repair residuals carry negative mass for
    deleted edges) until convergence.  ``Ŝ + estimate_delta`` then
    satisfies the same ``(1−c)·ε`` residual bound, and hence the same
    ``< ε`` error bound, as a fresh run (see the :mod:`repro.dynamic`
    package docstring for the algebra).

    The caller's ``initial_residual`` is copied, never mutated — unless
    ``copy_residual=False``, which hands the matrix's buffers to the
    round loop (the dynamic operator passes a residual it just built and
    owns; the defensive copy is measurable at repair latencies).
    Streaming top-k and the single-source restrictions do not apply to
    repair runs.
    """
    _validate_engine_args(decay, epsilon, executor, num_workers, num_shards,
                          None, kernel, dtype)
    run = _run_rounds(graph, decay=decay, epsilon=epsilon, prune=False,
                      absorb_residual=False, max_pushes=max_pushes,
                      executor=executor, num_workers=num_workers,
                      num_shards=num_shards, stream_top_k=None,
                      coalesce_every=coalesce_every, kernel=kernel,
                      dtype=dtype, profile=profile,
                      initial_residual=initial_residual,
                      copy_residual=copy_residual, signed=True,
                      finalize=False, keep_residual=True)
    assert run.residual is not None
    return ResumeRun(
        estimate_delta=run.estimate,
        residual=run.residual,
        num_pushes=run.num_pushes,
        num_rounds=run.num_rounds,
        num_residual_entries=run.num_residual_entries,
        elapsed_seconds=run.elapsed_seconds,
        workers_used=run.workers_used,
        max_shards_used=run.max_shards_used,
        kernel_used=run.kernel_used,
    )


# --------------------------------------------------------------------- #
# Single-source / single-pair queries
# --------------------------------------------------------------------- #
@dataclass
class SingleSourceResult:
    """One source row of the SimRank matrix, with the run's telemetry.

    ``row`` is a ``1×n`` CSR matrix holding row ``source`` of the
    estimate ``Ŝ`` with ``‖Ŝ[source] − S[source]‖_max < ε`` (same Lemma
    III.5 bound as the all-pairs engine).  Batch queries share one round
    loop, so ``num_pushes``/``num_rounds``/``elapsed_seconds`` describe
    the whole batch, not the one source.
    """

    source: int
    row: sp.csr_matrix
    num_pushes: int
    num_rounds: int
    num_residual_entries: int
    elapsed_seconds: float
    epsilon: float
    decay: float
    executor: str
    num_workers: Optional[int]
    num_shards: int
    component_size: int
    batch_size: int = 1

    @property
    def nnz(self) -> int:
        return int(self.row.nnz)


def component_nodes(graph: Graph, sources: Sequence[int]) -> np.ndarray:
    """Sorted node ids of the connected components containing ``sources``.

    Deterministic (``scipy.sparse.csgraph.connected_components`` labels
    are a pure function of the CSR structure); used to restrict the
    single-source residual seeding to the only seeds that can reach the
    query rows.
    """
    from scipy.sparse.csgraph import connected_components

    _, labels = connected_components(graph.adjacency, directed=False)
    source_array = np.asarray(sources, dtype=np.int64)
    wanted = labels[source_array]
    return np.flatnonzero(np.isin(labels, wanted))


def _validate_sources(graph: Graph, sources: Sequence[int]) -> np.ndarray:
    source_array = np.asarray(list(sources), dtype=np.int64)
    if source_array.ndim != 1 or source_array.size == 0:
        raise SimRankError("sources must be a non-empty sequence of node ids")
    n = graph.num_nodes
    bad = (source_array < 0) | (source_array >= n)
    if bad.any():
        raise SimRankError(
            f"source node(s) {sorted(int(s) for s in source_array[bad])} "
            f"out of range for a graph with {n} nodes")
    return source_array


def multi_source_localpush(graph: Graph, sources: Sequence[int], *,
                           decay: float = DEFAULT_DECAY,
                           epsilon: float = 0.1, prune: bool = True,
                           absorb_residual: bool = False,
                           max_pushes: int | None = None,
                           executor: str = "serial",
                           num_workers: Optional[int] = None,
                           num_shards: Optional[int] = None,
                           top_k: Optional[int] = None,
                           coalesce_every: int = 4,
                           kernel: str = "auto",
                           dtype: str = "float64"
                           ) -> List[SingleSourceResult]:
    """Batched single-source LocalPush: one shared round loop, many rows.

    Seeds the residual with the identity restricted to the sources'
    connected components (the only seeds whose mass can reach the query
    rows — the push operator never crosses components) and materialises
    estimate entries only for the requested rows, so memory is
    ``O(rounds × per-row frontier)`` instead of ``O(n²)`` while the
    residual work is bounded by the touched components, not the graph.

    **Equivalence guarantee** (pinned by the single-source suite): each
    returned ``row`` is *bit-identical* to the corresponding row of
    ``localpush_engine(...)`` run without streaming — for every executor
    and worker count — whenever the per-round shard partitions of the two
    runs coincide: always on a connected graph (the frontiers, and hence
    the partition derived from them, are identical), and on any graph
    when every round fits one shard (the ``DEFAULT_SHARD_NNZ`` default
    for all but huge frontiers).  With a forced multi-shard split on a
    *disconnected* graph the partial-sum order may differ and rows agree
    only to float round-off (still within the ``(1−c)·ε`` bound).

    ``top_k`` applies :func:`repro.graphs.sparse.top_k_per_row`
    semantics (``keep_diagonal=True``) to each returned row — identical
    to pruning the all-pairs estimate post hoc.

    Results are returned in input order; duplicate sources share the
    same computed row.
    """
    _validate_engine_args(decay, epsilon, executor, num_workers, num_shards,
                          top_k, kernel, dtype)
    source_array = _validate_sources(graph, sources)
    unique_sources = np.unique(source_array)

    from scipy.sparse.csgraph import connected_components

    _, labels = connected_components(graph.adjacency, directed=False)
    wanted = labels[unique_sources]
    seed_nodes = np.flatnonzero(np.isin(labels, wanted))

    run = _run_rounds(graph, decay=decay, epsilon=epsilon, prune=prune,
                      absorb_residual=absorb_residual, max_pushes=max_pushes,
                      executor=executor, num_workers=num_workers,
                      num_shards=num_shards, stream_top_k=top_k,
                      coalesce_every=coalesce_every,
                      seed_nodes=seed_nodes, absorb_rows=unique_sources,
                      kernel=kernel, dtype=dtype)

    component_sizes = {int(s): int(np.count_nonzero(labels == labels[s]))
                       for s in unique_sources}
    rows = {int(s): run.estimate.getrow(int(s)) for s in unique_sources}
    return [SingleSourceResult(
        source=int(source),
        row=rows[int(source)],
        num_pushes=run.num_pushes,
        num_rounds=run.num_rounds,
        num_residual_entries=run.num_residual_entries,
        elapsed_seconds=run.elapsed_seconds,
        epsilon=epsilon,
        decay=decay,
        executor=executor,
        num_workers=run.workers_used,
        num_shards=run.max_shards_used,
        component_size=component_sizes[int(source)],
        batch_size=int(unique_sources.size),
    ) for source in source_array]


def single_source_localpush(graph: Graph, source: int, *,
                            decay: float = DEFAULT_DECAY,
                            epsilon: float = 0.1, prune: bool = True,
                            absorb_residual: bool = False,
                            max_pushes: int | None = None,
                            executor: str = "serial",
                            num_workers: Optional[int] = None,
                            num_shards: Optional[int] = None,
                            top_k: Optional[int] = None,
                            coalesce_every: int = 4,
                            kernel: str = "auto",
                            dtype: str = "float64") -> SingleSourceResult:
    """Single-source LocalPush: row ``source`` of the SimRank matrix.

    A one-element :func:`multi_source_localpush` batch; see there for
    the bit-identical equivalence guarantee and the complexity argument.
    """
    return multi_source_localpush(
        graph, [source], decay=decay, epsilon=epsilon, prune=prune,
        absorb_residual=absorb_residual, max_pushes=max_pushes,
        executor=executor, num_workers=num_workers, num_shards=num_shards,
        top_k=top_k, coalesce_every=coalesce_every, kernel=kernel,
        dtype=dtype)[0]


def single_pair_localpush(graph: Graph, source: int, target: int, *,
                          decay: float = DEFAULT_DECAY,
                          epsilon: float = 0.1, prune: bool = True,
                          absorb_residual: bool = False,
                          max_pushes: int | None = None,
                          executor: str = "serial",
                          num_workers: Optional[int] = None,
                          num_shards: Optional[int] = None,
                          coalesce_every: int = 4,
                          kernel: str = "auto",
                          dtype: str = "float64") -> float:
    """Single-pair LocalPush: ``Ŝ(source, target)`` with the same ε bound.

    Computed as entry ``target`` of the single-source row so the value is
    bit-identical to the all-pairs entry under the guarantee documented
    on :func:`multi_source_localpush`.  When the two nodes live in
    different connected components the true score is exactly ``0.0`` and
    no push rounds run at all.
    """
    _validate_sources(graph, [source, target])
    from scipy.sparse.csgraph import connected_components

    _, labels = connected_components(graph.adjacency, directed=False)
    if source != target and labels[source] != labels[target]:
        return 0.0
    result = single_source_localpush(
        graph, source, decay=decay, epsilon=epsilon, prune=prune,
        absorb_residual=absorb_residual, max_pushes=max_pushes,
        executor=executor, num_workers=num_workers, num_shards=num_shards,
        coalesce_every=coalesce_every, kernel=kernel, dtype=dtype)
    return float(result.row[0, target])


__all__ = ["localpush_engine", "resume_localpush", "ResumeRun",
           "single_source_localpush",
           "multi_source_localpush", "single_pair_localpush",
           "SingleSourceResult", "component_nodes", "default_num_workers",
           "EXECUTORS", "DEFAULT_SHARD_NNZ", "DEFAULT_MAX_WORKERS"]
