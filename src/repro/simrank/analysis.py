"""Intra- vs inter-class SimRank statistics (paper Table II and Fig. 2).

The paper's empirical argument for using SimRank under heterophily is that
intra-class node pairs receive systematically higher SimRank scores than
inter-class pairs.  :func:`simrank_class_statistics` reproduces the mean and
standard deviation rows of Table II and the score histograms of Fig. 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.errors import SimRankError
from repro.graphs.graph import Graph
from repro.utils.rng import RngLike, ensure_rng


@dataclass
class SimRankClassStats:
    """Summary statistics of SimRank scores split by label agreement."""

    dataset: str
    intra_mean: float
    intra_std: float
    inter_mean: float
    inter_std: float
    num_intra_pairs: int
    num_inter_pairs: int
    intra_scores: np.ndarray
    inter_scores: np.ndarray

    @property
    def separation(self) -> float:
        """Difference of means; positive when intra-class pairs score higher."""
        return self.intra_mean - self.inter_mean

    def histogram(self, bins: int = 40) -> Dict[str, Tuple[np.ndarray, np.ndarray]]:
        """Density histograms for both pair populations (Fig. 2 series)."""
        low = float(min(self.intra_scores.min(initial=0.0), self.inter_scores.min(initial=0.0)))
        high = float(max(self.intra_scores.max(initial=1.0), self.inter_scores.max(initial=1.0)))
        edges = np.linspace(low, high, bins + 1)
        intra_density, _ = np.histogram(self.intra_scores, bins=edges, density=True)
        inter_density, _ = np.histogram(self.inter_scores, bins=edges, density=True)
        return {"edges": (edges, edges), "intra": (edges[:-1], intra_density),
                "inter": (edges[:-1], inter_density)}


def _pair_scores(scores: np.ndarray | sp.spmatrix, pairs: np.ndarray) -> np.ndarray:
    if sp.issparse(scores):
        values = np.asarray(scores[pairs[:, 0], pairs[:, 1]]).ravel()
    else:
        values = np.asarray(scores)[pairs[:, 0], pairs[:, 1]]
    return values.astype(np.float64)


def simrank_class_statistics(graph: Graph, scores: np.ndarray | sp.spmatrix,
                             *, num_pairs: int = 20000, exclude_zero: bool = False,
                             seed: RngLike = 0) -> SimRankClassStats:
    """Sample node pairs and summarise scores by label agreement.

    Parameters
    ----------
    graph:
        Labelled graph whose labels define intra- vs inter-class pairs.
    scores:
        A dense or sparse ``(n, n)`` SimRank (or any similarity) matrix.
    num_pairs:
        Number of distinct node pairs sampled uniformly at random (without
        the diagonal).  Small graphs with fewer possible pairs use them all.
    exclude_zero:
        Drop sampled pairs whose score is exactly zero (useful when scoring
        with a heavily pruned sparse matrix).
    """
    if graph.labels is None:
        raise SimRankError("class statistics require node labels")
    n = graph.num_nodes
    rng = ensure_rng(seed)
    total_pairs = n * (n - 1) // 2
    if total_pairs <= num_pairs:
        upper = np.triu_indices(n, k=1)
        pairs = np.stack(upper, axis=1)
    else:
        left = rng.integers(0, n, size=num_pairs * 2)
        right = rng.integers(0, n, size=num_pairs * 2)
        keep = left != right
        pairs = np.stack([left[keep], right[keep]], axis=1)[:num_pairs]

    values = _pair_scores(scores, pairs)
    if exclude_zero:
        nonzero = values != 0.0
        pairs, values = pairs[nonzero], values[nonzero]

    labels = graph.labels
    same = labels[pairs[:, 0]] == labels[pairs[:, 1]]
    intra, inter = values[same], values[~same]
    return SimRankClassStats(
        dataset=graph.name,
        intra_mean=float(intra.mean()) if intra.size else 0.0,
        intra_std=float(intra.std()) if intra.size else 0.0,
        inter_mean=float(inter.mean()) if inter.size else 0.0,
        inter_std=float(inter.std()) if inter.size else 0.0,
        num_intra_pairs=int(intra.size),
        num_inter_pairs=int(inter.size),
        intra_scores=intra,
        inter_scores=inter,
    )


__all__ = ["SimRankClassStats", "simrank_class_statistics"]
