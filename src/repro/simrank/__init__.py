"""SimRank substrate: exact, linearized and LocalPush-approximate SimRank.

Three computations are provided:

* :func:`exact_simrank` — the classic Jeh–Widom fixed point of Eq. (2) in the
  paper, computed by power iteration with a diagonal reset.  This is the
  ground truth for small graphs (Table II, Fig. 2).
* :func:`linearized_simrank` — the series
  ``S' = Σ_ℓ c^ℓ (W^ℓ)ᵀ W^ℓ`` of pairwise-random-walk meeting
  probabilities, exactly the quantity of Theorem III.2.  This is the fixed
  point that LocalPush approximates and the operator SIGMA aggregates with.
* :func:`localpush_simrank` — Algorithm 1 (LocalPush) of the paper: a
  residual-push approximation with max-norm guarantee ``ε`` and
  ``O(d²/ε)``-style cost, returning a sparse matrix.  Two engines are
  available (``backend="dict"|"vectorized"|"auto"``): the per-pair
  reference loop and the frontier-batched array engine of
  :func:`localpush_simrank_vectorized`.

:func:`simrank_operator` combines approximation and top-k pruning into the
sparse aggregation operator used by the SIGMA model.
"""

from repro.simrank.exact import exact_simrank, linearized_simrank
from repro.simrank.localpush import LocalPushResult, localpush_simrank
from repro.simrank.localpush_vec import localpush_simrank_vectorized
from repro.simrank.topk import simrank_operator, topk_simrank
from repro.simrank.pairwise_walk import (
    homophily_probability,
    pairwise_meeting_probability,
    pairwise_walk_series,
)
from repro.simrank.analysis import SimRankClassStats, simrank_class_statistics

__all__ = [
    "exact_simrank",
    "linearized_simrank",
    "localpush_simrank",
    "localpush_simrank_vectorized",
    "LocalPushResult",
    "topk_simrank",
    "simrank_operator",
    "pairwise_meeting_probability",
    "pairwise_walk_series",
    "homophily_probability",
    "SimRankClassStats",
    "simrank_class_statistics",
]
