"""SimRank substrate: exact, linearized and LocalPush-approximate SimRank.

Three computations are provided:

* :func:`exact_simrank` — the classic Jeh–Widom fixed point of Eq. (2) in the
  paper, computed by power iteration with a diagonal reset.  This is the
  ground truth for small graphs (Table II, Fig. 2).
* :func:`linearized_simrank` — the series
  ``S' = Σ_ℓ c^ℓ (W^ℓ)ᵀ W^ℓ`` of pairwise-random-walk meeting
  probabilities, exactly the quantity of Theorem III.2.  This is the fixed
  point that LocalPush approximates and the operator SIGMA aggregates with.
* :func:`localpush_simrank` — Algorithm 1 (LocalPush) of the paper: a
  residual-push approximation with max-norm guarantee ``ε`` and
  ``O(d²/ε)``-style cost, returning a sparse matrix.

:func:`simrank_operator` combines approximation and top-k pruning into the
sparse aggregation operator used by the SIGMA model.

Backend selection
-----------------
``localpush_simrank`` dispatches between three engines
(``backend="dict"|"vectorized"|"sharded"|"auto"``):

========== ===================== =============================================
backend     auto-selected for     engine
========== ===================== =============================================
dict        < 256 nodes           per-pair reference loop (equivalence oracle)
vectorized  256 – 4095 nodes      frontier-batched sparse rounds
sharded     ≥ 4096 nodes          vectorized rounds split into row shards
                                  executed by a worker pool, merged in shard
                                  order (bit-deterministic across worker
                                  counts), with optional streaming top-k
========== ===================== =============================================

The thresholds live in :data:`repro.simrank.localpush.AUTO_BACKEND_MIN_NODES`
and :data:`repro.simrank.localpush.AUTO_SHARDED_MIN_NODES` and are resolved
by :func:`repro.simrank.localpush.resolve_backend`; unit tests pin them.
All engines satisfy the same ``‖Ŝ − S‖_max < ε`` guarantee (Lemma III.5).

Streaming top-k error-bound argument
------------------------------------
The sharded engine can prune the estimate to the top ``k`` scores per row
*inside* the push loop (``stream_top_k``), keeping memory at ``O(k·n)``
instead of ``O(n·d²/ε)``.  Correctness rests on the residual invariant
``S = Ŝ + Σ_{ℓ≥0} c^ℓ (Wᵀ)^ℓ R W^ℓ`` and on the columns of ``W = A D⁻¹``
summing to at most one, which bounds the future growth of *any* estimate
entry by ``slack = ‖R‖_max / (1 − c)``.  An entry is dropped only when its
current value plus ``slack`` is strictly below the row's current k-th
largest score — so it provably cannot enter the final top-k, and the
streamed result is identical to pruning the fully materialised estimate
(see :mod:`repro.simrank.sharded` for the full argument).  Because the
estimate never feeds back into the residual, the ε guarantee on retained
entries is untouched.

Operator cache layout
---------------------
:mod:`repro.simrank.cache` persists computed operators under a cache
directory as ``simrank-<key>.npz`` files (CSR arrays plus a JSON metadata
record).  ``<key>`` hashes ``(format version, graph fingerprint, method,
c, ε, k, row_normalize, resolved backend)``; the worker count is excluded
because sharded results are bit-identical across pools.  Stale format
versions, metadata mismatches and corrupted files are evicted and
recomputed; see the module docstring of :mod:`repro.simrank.cache`.
Enable it via ``simrank_operator(..., cache=<dir>)``, model kwargs
``simrank_cache_dir=...``, or the CLI flag ``--simrank-cache-dir``.
"""

from repro.simrank.cache import (
    CACHE_FORMAT_VERSION,
    OperatorCache,
    get_operator_cache,
    graph_fingerprint,
)
from repro.simrank.exact import exact_simrank, linearized_simrank
from repro.simrank.localpush import (
    AUTO_BACKEND_MIN_NODES,
    AUTO_SHARDED_MIN_NODES,
    LocalPushResult,
    localpush_simrank,
    resolve_backend,
)
from repro.simrank.localpush_vec import localpush_simrank_vectorized
from repro.simrank.sharded import localpush_simrank_sharded
from repro.simrank.topk import simrank_operator, topk_simrank
from repro.simrank.pairwise_walk import (
    homophily_probability,
    pairwise_meeting_probability,
    pairwise_walk_series,
)
from repro.simrank.analysis import SimRankClassStats, simrank_class_statistics

__all__ = [
    "exact_simrank",
    "linearized_simrank",
    "localpush_simrank",
    "localpush_simrank_vectorized",
    "localpush_simrank_sharded",
    "LocalPushResult",
    "resolve_backend",
    "AUTO_BACKEND_MIN_NODES",
    "AUTO_SHARDED_MIN_NODES",
    "topk_simrank",
    "simrank_operator",
    "OperatorCache",
    "get_operator_cache",
    "graph_fingerprint",
    "CACHE_FORMAT_VERSION",
    "pairwise_meeting_probability",
    "pairwise_walk_series",
    "homophily_probability",
    "SimRankClassStats",
    "simrank_class_statistics",
]
