"""SimRank substrate: exact, linearized and LocalPush-approximate SimRank.

Three computations are provided:

* :func:`exact_simrank` — the classic Jeh–Widom fixed point of Eq. (2) in the
  paper, computed by power iteration with a diagonal reset.  This is the
  ground truth for small graphs (Table II, Fig. 2).
* :func:`linearized_simrank` — the series
  ``S' = Σ_ℓ c^ℓ (W^ℓ)ᵀ W^ℓ`` of pairwise-random-walk meeting
  probabilities, exactly the quantity of Theorem III.2.  This is the fixed
  point that LocalPush approximates and the operator SIGMA aggregates with.
* :func:`localpush_simrank` — Algorithm 1 (LocalPush) of the paper: a
  residual-push approximation with max-norm guarantee ``ε`` and
  ``O(d²/ε)``-style cost, returning a sparse matrix.

:func:`simrank_operator` combines approximation and top-k pruning into the
sparse aggregation operator used by the SIGMA model.  Its supported
calling convention is a single typed config object::

    from repro.config import SimRankConfig
    operator = simrank_operator(graph, SimRankConfig(
        method="localpush", epsilon=0.1, top_k=32,
        executor="process", workers=8,
        cache_dir="~/.cache/simrank"))

(the pre-config keyword arguments remain accepted as deprecated shims —
one ``DeprecationWarning`` each, identical operator and cache key).

Configuration: SimRankConfig
----------------------------
:class:`repro.config.SimRankConfig` carries three field groups:

* the **mathematical contract** — ``method`` (``"exact"``, ``"series"``,
  ``"localpush"`` or ``"auto"``, which picks exactness up to
  ``exact_size_limit`` nodes and LocalPush above), ``decay``,
  ``epsilon``, ``top_k`` and ``row_normalize``; these determine the
  operator entries and therefore enter the cache key;
* the **execution plan** — ``backend``, ``executor``, ``workers``,
  ``kernel`` and ``dtype``, resolved to a concrete LocalPush plan by
  ``resolve_execution``:

  =========== ==================== ========================================
  backend      plan                 auto-selected for
  =========== ==================== ========================================
  dict         (dict, —)            < 256 nodes — per-pair reference loop
  vectorized   (core, serial)       256 – 4095 nodes — frontier-batched
                                    sparse rounds, shards pushed in-thread
  sharded      (core, thread)       ≥ 4096 nodes — shards pushed by a
                                    thread pool, merged in shard order
  (explicit)   (core, process)      ``executor="process"`` — shards pushed
                                    by a process pool over shared-memory
                                    walk matrices (multi-core past the GIL)
  =========== ==================== ========================================

  Orthogonally to the executor axis, ``kernel`` picks the push-round
  *arithmetic* inside the core plans (see
  :mod:`repro.simrank.kernels`):

  =========== ============================================================
  kernel       push-round implementation
  =========== ============================================================
  auto         the default — resolves to ``fused``
  scipy        reference: sparse-matrix ops with per-round allocations
  fused        raw-CSR kernel with round-reused workspaces, zero-copy
               shard slices and a one-pass partial merge — bit-identical
               to ``scipy``, measurably faster on multi-round runs
  numba        ``fused`` plus a JIT-compiled frontier-extraction loop;
               silently degrades to ``fused`` when numba is missing
  =========== ============================================================

* the **cache location** — ``cache_dir`` and ``cache_max_bytes``.

The shard partition is a function of the frontier alone and partial
updates merge in shard order, so **every executor, worker count and
kernel returns a bit-identical matrix** — pinned by
``tests/test_simrank_engine.py`` and ``tests/test_simrank_kernels.py``.
Accordingly only the resolved backend *label* enters the operator-cache
key (``kernel`` is exempt); the key fields are derived in exactly one
place, :meth:`repro.config.SimRankConfig.cache_key_fields`.  The auto
thresholds live in
:data:`repro.simrank.localpush.AUTO_BACKEND_MIN_NODES` and
:data:`repro.simrank.localpush.AUTO_SHARDED_MIN_NODES`; unit tests pin
them.  All plans satisfy the same ``‖Ŝ − S‖_max < ε`` guarantee
(Lemma III.5) — in float64.  The opt-in ``dtype="float32"`` mode
trades that guarantee for half the memory: accumulated rounding can
exceed ε itself, so the bound loosens to
:func:`repro.simrank.kernels.float32_error_bound`, which adds a
per-round rounding term ``O(u·rounds/(1−c))`` (``u = 2⁻²⁴``); because
the entries differ from float64's, ``dtype`` *does* enter the cache
key.  ``localpush_simrank_vectorized`` /
``localpush_simrank_sharded`` are deprecated shims over the core
(bit-identical, with a ``DeprecationWarning``).

Streaming top-k error-bound argument
------------------------------------
The core can prune the estimate to the top ``k`` scores per row *inside*
the push loop (``stream_top_k``), keeping memory at ``O(k·n)`` instead
of ``O(n·d²/ε)``.  Correctness rests on the residual invariant
``S = Ŝ + Σ_{ℓ≥0} c^ℓ (Wᵀ)^ℓ R W^ℓ`` and on the columns of ``W = A D⁻¹``
summing to at most one, which bounds the future growth of *any* estimate
entry by ``slack = ‖R‖_max / (1 − c)``.  An entry is dropped only when its
current value plus ``slack`` is strictly below the row's current k-th
largest score — so it provably cannot enter the final top-k, and the
streamed result is identical to pruning the fully materialised estimate
(see :mod:`repro.simrank.engine` for the full argument).  Because the
estimate never feeds back into the residual, the ε guarantee on retained
entries is untouched.

Operator cache: layout, eviction, reuse
---------------------------------------
:mod:`repro.simrank.cache` persists computed operators under a cache
directory as ``simrank-<key>.npz`` files (CSR arrays plus a JSON metadata
record) with a sidecar index for LRU accounting.  ``<key>`` hashes
``(format version, graph fingerprint, method, c, ε, k, row_normalize,
resolved backend)``; the executor and worker count are excluded because
core results are bit-identical across both.  Stale format versions,
metadata mismatches and corrupted files are evicted and recomputed.  Two
policies sit on top:

* **LRU eviction** — give the cache a byte cap
  (``cache_max_bytes=``/``--simrank-cache-max-bytes``) and stores beyond
  it evict the least-recently-used entries;
* **cross-ε/k reuse** — an entry computed at tighter ``ε′ ≤ ε`` with
  ``k′ ≥ k`` serves the looser request after re-pruning (never the
  reverse), counted separately from exact hits.

See the module docstring of :mod:`repro.simrank.cache` for both
arguments.  Enable the cache by setting ``cache_dir`` (and optionally
``cache_max_bytes``) on the :class:`repro.config.SimRankConfig` passed
to ``simrank_operator`` / ``SIGMA(simrank=...)`` / a ``RunSpec``, or via
the CLI flag ``--simrank-cache-dir``.
"""

from repro.simrank.cache import (
    CACHE_FORMAT_VERSION,
    OperatorCache,
    get_operator_cache,
    graph_fingerprint,
)
from repro.simrank.engine import EXECUTORS, localpush_engine
from repro.simrank.exact import exact_simrank, linearized_simrank
from repro.simrank.localpush import (
    AUTO_BACKEND_MIN_NODES,
    AUTO_SHARDED_MIN_NODES,
    LocalPushResult,
    localpush_simrank,
    resolve_backend,
    resolve_execution,
)
from repro.simrank.localpush_vec import localpush_simrank_vectorized
from repro.simrank.sharded import localpush_simrank_sharded
from repro.simrank.topk import simrank_operator, topk_simrank
from repro.simrank.pairwise_walk import (
    homophily_probability,
    pairwise_meeting_probability,
    pairwise_walk_series,
)
from repro.simrank.analysis import SimRankClassStats, simrank_class_statistics

__all__ = [
    "exact_simrank",
    "linearized_simrank",
    "localpush_simrank",
    "localpush_engine",
    "localpush_simrank_vectorized",
    "localpush_simrank_sharded",
    "LocalPushResult",
    "resolve_backend",
    "resolve_execution",
    "EXECUTORS",
    "AUTO_BACKEND_MIN_NODES",
    "AUTO_SHARDED_MIN_NODES",
    "topk_simrank",
    "simrank_operator",
    "OperatorCache",
    "get_operator_cache",
    "graph_fingerprint",
    "CACHE_FORMAT_VERSION",
    "pairwise_meeting_probability",
    "pairwise_walk_series",
    "homophily_probability",
    "SimRankClassStats",
    "simrank_class_statistics",
]
