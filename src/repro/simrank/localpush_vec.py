"""Vectorized, frontier-batched LocalPush (Algorithm 1, batched variant).

The reference implementation in :mod:`repro.simrank.localpush` pops one
``(u, v)`` pair at a time from a work queue — a faithful transcription of
Algorithm 1, but a Python-level loop whose cost is dominated by dict and
deque overhead.  This module performs the *same* computation with array
operations only:

1. **Gather the frontier** — all residual entries strictly above the push
   threshold ``(1 − c)·ε`` — in one vectorized pass over the CSR residual
   (row ids recovered with ``np.repeat`` over the ``indptr`` gaps).
2. **Absorb** the whole frontier into the estimate at once.  The estimate is
   accumulated as COO triplets and duplicate-coalesced when materialised.
3. **Push** all frontier residual mass in a single batched step:
   ``R ← R + c · Wᵀ F W`` where ``F`` is the sparse frontier matrix and
   ``W = A D⁻¹`` is the column-normalised walk matrix.  Entry-wise this is
   exactly Algorithm 1's ``R[u', v'] += c · R[u, v] / (deg(u')·deg(v'))``
   for every ``u' ∈ N(u), v' ∈ N(v)``, with duplicate contributions
   coalesced by the sparse add.

Because every frontier entry is above threshold when absorbed and the loop
only terminates once **no** residual exceeds ``(1 − c)·ε``, the batched
variant satisfies the same invariant as the sequential one
(``Ŝ + diag-restricted residual`` under-approximates the linearized series)
and therefore inherits the ``‖Ŝ − S‖_max < ε`` guarantee of Lemma III.5
verbatim.  Only the *order* in which residual mass is moved differs, so the
two backends agree within ``ε`` (and in practice far tighter — see
``tests/test_simrank_localpush_vec.py``).

Complexity: each round costs ``O(nnz(F)·d²)`` work in compiled sparse
kernels instead of ``O(nnz(F)·d²)`` Python bytecode, and the number of
rounds is bounded by the series depth ``O(log ε / log c)`` plus the rounds
needed to drain re-accumulated mass — in practice a few dozen.  Total
storage stays ``O(n·d²/((1 − c)·ε))`` like the reference.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.errors import SimRankError
from repro.graphs.graph import Graph
from repro.graphs.normalize import column_normalize
from repro.graphs.sparse import csr_row_indices as _csr_rows
from repro.simrank.exact import DEFAULT_DECAY
from repro.utils.timer import Timer


def localpush_simrank_vectorized(graph: Graph, *, decay: float = DEFAULT_DECAY,
                                 epsilon: float = 0.1, prune: bool = True,
                                 absorb_residual: bool = False,
                                 max_pushes: int | None = None,
                                 coalesce_every: int = 4):
    """Frontier-batched LocalPush; drop-in equivalent of the dict backend.

    Parameters mirror :func:`repro.simrank.localpush.localpush_simrank`
    (which dispatches here for ``backend="vectorized"``); ``coalesce_every``
    controls how often explicit zeros are purged from the residual between
    rounds.  ``max_pushes`` counts absorbed frontier entries, the batched
    analogue of the reference backend's per-pair push count.
    """
    from repro.simrank.localpush import LocalPushResult, finalize_estimate

    if not 0.0 < decay < 1.0:
        raise SimRankError(f"decay factor c must be in (0, 1), got {decay}")
    if epsilon <= 0.0:
        raise SimRankError(f"epsilon must be positive, got {epsilon}")

    n = graph.num_nodes
    threshold = (1.0 - decay) * epsilon
    walk = column_normalize(graph.adjacency)     # W = A D⁻¹
    walk_t = walk.T.tocsr()

    residual = sp.identity(n, dtype=np.float64, format="csr")
    est_rows: list[np.ndarray] = []
    est_cols: list[np.ndarray] = []
    est_data: list[np.ndarray] = []

    num_pushes = 0
    num_rounds = 0
    timer = Timer()
    timer.start()
    while True:
        above = residual.data > threshold
        count = int(np.count_nonzero(above))
        if count == 0:
            break
        rows = _csr_rows(residual)
        frontier_rows = rows[above]
        frontier_cols = residual.indices[above].astype(np.int64, copy=False)
        frontier_data = residual.data[above].copy()

        # Absorb the frontier into the estimate (line 4 of Algorithm 1,
        # batched) and clear it from the residual.
        est_rows.append(frontier_rows)
        est_cols.append(frontier_cols)
        est_data.append(frontier_data)
        num_pushes += count
        if max_pushes is not None and num_pushes > max_pushes:
            raise SimRankError(
                f"LocalPush exceeded max_pushes={max_pushes}; "
                "epsilon is likely too small for this graph"
            )
        residual.data[above] = 0.0

        # Batched push (line 5): R += c · Wᵀ F W.  The sparse add coalesces
        # duplicate (u', v') contributions from different frontier entries.
        frontier = sp.csr_matrix((frontier_data, (frontier_rows, frontier_cols)),
                                 shape=(n, n))
        pushed = (walk_t @ frontier) @ walk
        pushed = pushed.tocsr()
        pushed.data *= decay
        residual = residual + pushed
        num_rounds += 1
        if num_rounds % coalesce_every == 0:
            residual.eliminate_zeros()
    residual.eliminate_zeros()
    elapsed = timer.stop()

    if absorb_residual and residual.nnz:
        rows = _csr_rows(residual)
        positive = residual.data > 0.0
        est_rows.append(rows[positive])
        est_cols.append(residual.indices[positive].astype(np.int64, copy=False))
        est_data.append(residual.data[positive].copy())

    if est_data:
        estimate = sp.coo_matrix(
            (np.concatenate(est_data),
             (np.concatenate(est_rows), np.concatenate(est_cols))),
            shape=(n, n),
        ).tocsr()  # COO→CSR sums duplicate frontier absorptions
    else:
        estimate = sp.csr_matrix((n, n))

    estimate = finalize_estimate(estimate, residual, epsilon=epsilon,
                                 prune=prune)
    leftover = int(np.count_nonzero(residual.data > 0.0))
    return LocalPushResult(
        matrix=estimate,
        num_pushes=num_pushes,
        num_residual_entries=leftover,
        elapsed_seconds=elapsed,
        epsilon=epsilon,
        decay=decay,
        backend="vectorized",
        num_rounds=num_rounds,
    )


__all__ = ["localpush_simrank_vectorized"]
