"""Deprecated shim: the vectorized LocalPush engine is now the unified core.

The frontier-batched push loop that used to live here (absorb the whole
above-threshold frontier, push ``R ← R + c·Wᵀ F W`` in one sparse step)
is the ``executor="serial"`` configuration of
:func:`repro.simrank.engine.localpush_engine` — see that module for the
loop, the sharding plan and the bit-identical-across-executors argument.
This module remains only so existing imports keep working; prefer
``localpush_simrank(..., backend="vectorized")`` or the engine directly.
"""

from __future__ import annotations

import warnings

from repro.graphs.graph import Graph
from repro.simrank.engine import localpush_engine
from repro.simrank.exact import DEFAULT_DECAY


def localpush_simrank_vectorized(graph: Graph, *, decay: float = DEFAULT_DECAY,
                                 epsilon: float = 0.1, prune: bool = True,
                                 absorb_residual: bool = False,
                                 max_pushes: int | None = None,
                                 coalesce_every: int = 4):
    """Deprecated alias for the unified core with the serial executor.

    Emits a :class:`DeprecationWarning` and returns a result bit-identical
    to ``localpush_engine(..., executor="serial")`` (pinned by
    ``tests/test_simrank_engine.py``).
    """
    warnings.warn(
        "localpush_simrank_vectorized is deprecated; use "
        "localpush_simrank(..., backend='vectorized') or "
        "repro.simrank.engine.localpush_engine(..., executor='serial')",
        DeprecationWarning, stacklevel=2)
    return localpush_engine(graph, decay=decay, epsilon=epsilon, prune=prune,
                            absorb_residual=absorb_residual,
                            max_pushes=max_pushes, executor="serial",
                            coalesce_every=coalesce_every,
                            backend_label="vectorized")


__all__ = ["localpush_simrank_vectorized"]
