"""Sharded, worker-parallel LocalPush with streaming top-k pruning.

This is the third LocalPush engine (``backend="sharded"``), built for the
Fig. 5 / Table III scalability regime where a single batched push round
``R ← R + c·Wᵀ F W`` becomes the bottleneck.  It extends the vectorized
engine of :mod:`repro.simrank.localpush_vec` in two orthogonal ways:

**Row-sharded push rounds.**  Each round's above-threshold frontier ``F``
is split by stored-entry ranges into shards ``F = Σ_i F_i`` and every
shard's partial update ``c·Wᵀ F_i W`` is computed in a
:class:`concurrent.futures.ThreadPoolExecutor` task.  The push operator is
linear in ``F``, so the shard sum equals the unsharded update exactly (up
to floating-point grouping).  Determinism is preserved by construction:

* the shard *partition* depends only on the frontier (``num_shards`` is
  either caller-fixed or derived from the frontier size, never from the
  worker count), and
* the partial results are *merged in shard order*, no matter which worker
  finished first.

Consequently the returned matrix is bit-identical for every
``num_workers`` — a property the test suite pins for
``num_workers ∈ {1, 2, 4}`` and the operator cache relies on (the cache
key deliberately excludes the worker count).

**Streaming top-k pruning.**  When ``stream_top_k=k`` is given, the
estimate is pruned *inside* the round loop so at most ``O(k·n)`` (plus a
provably-undecidable margin) entries are ever held, instead of
materialising the full ``O(n·d²/ε)`` estimate and pruning afterwards.
The prune is guarded by a correction bound derived from the residual
invariant ``S = Ŝ + Σ_{ℓ≥0} c^ℓ (Wᵀ)^ℓ R W^ℓ``: because the columns of
``W = A D⁻¹`` sum to at most one, every entry of ``(Wᵀ)^ℓ R W^ℓ`` is
bounded by ``‖R‖_max``, so the *future growth* of any estimate entry is at
most

    ``slack = ‖R‖_max / (1 − c)``.

An entry ``(u, v)`` is therefore dropped from row ``u`` only when

    ``Ŝ(u, v) + slack < (k-th largest entry of row u)``,

i.e. when its final value provably cannot reach the row's final k-th
largest score (row maxima are monotone under pushes, so the k-th largest
only grows).  Dropped entries can thus never belong to the final top-k
selection, and a last :func:`repro.graphs.sparse.top_k_per_row` pass over
the surviving superset yields *exactly* the same matrix — same entries,
same deterministic tie-breaking, same preserved diagonal — as pruning the
fully materialised estimate.  The ``‖Ŝ − S‖_max < ε`` guarantee of
Lemma III.5 is untouched because pruning the estimate never feeds back
into the residual loop.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import Optional

import numpy as np
import scipy.sparse as sp

from repro.errors import SimRankError
from repro.graphs.graph import Graph
from repro.graphs.normalize import column_normalize
from repro.graphs.sparse import csr_row_indices as _csr_rows
from repro.graphs.sparse import top_k_per_row
from repro.simrank.exact import DEFAULT_DECAY
from repro.utils.timer import Timer

#: Target number of frontier entries per shard when ``num_shards`` is not
#: given.  Chosen so a shard's ``Wᵀ F_i W`` stays comfortably inside cache
#: while leaving enough shards to occupy a small worker pool.
DEFAULT_SHARD_NNZ = 8192

#: Upper bound applied to the default worker count.
DEFAULT_MAX_WORKERS = 4


def default_num_workers() -> int:
    """Worker count used when ``num_workers`` is not specified."""
    return max(1, min(DEFAULT_MAX_WORKERS, os.cpu_count() or 1))


def _push_shard(walk_t: sp.csr_matrix, walk: sp.csr_matrix,
                rows: np.ndarray, cols: np.ndarray, data: np.ndarray,
                n: int, decay: float) -> sp.csr_matrix:
    """One shard's partial update ``c·Wᵀ F_i W`` (pure, order-independent)."""
    shard = sp.csr_matrix((data, (rows, cols)), shape=(n, n))
    pushed = ((walk_t @ shard) @ walk).tocsr()
    pushed.data *= decay
    return pushed


def _streaming_prune(estimate: sp.csr_matrix, k: int,
                     slack: float) -> sp.csr_matrix:
    """Drop estimate entries that provably cannot reach the final top-k.

    An entry is removed only when ``value + slack`` is strictly below the
    row's current k-th largest value; the diagonal is never dropped (it is
    preserved by the final ``top_k_per_row(..., keep_diagonal=True)``
    semantics and must survive streaming too).  Mutates ``estimate`` in
    place (the caller holds the only reference to the freshly summed
    matrix).
    """
    if estimate.nnz == 0:
        return estimate
    indptr, indices, data = estimate.indptr, estimate.indices, estimate.data
    # Early rounds can never drop anything: value + slack >= slack, and no
    # row's k-th largest can exceed the global maximum entry.
    if slack >= float(data.max()):
        return estimate
    # Only rows holding more than k entries can possibly shed one.
    candidates = np.flatnonzero(np.diff(indptr) > k)
    if candidates.size == 0:
        return estimate
    changed = False
    for row in candidates:
        start, end = indptr[row], indptr[row + 1]
        size = end - start
        row_data = data[start:end]
        kth = np.partition(row_data, size - k)[size - k]
        drop = (row_data + slack) < kth
        if not drop.any():
            continue
        drop &= indices[start:end] != row
        if not drop.any():
            continue
        row_data[drop] = 0.0
        changed = True
    if changed:
        estimate.eliminate_zeros()
    return estimate


def localpush_simrank_sharded(graph: Graph, *, decay: float = DEFAULT_DECAY,
                              epsilon: float = 0.1, prune: bool = True,
                              absorb_residual: bool = False,
                              max_pushes: int | None = None,
                              num_workers: Optional[int] = None,
                              num_shards: Optional[int] = None,
                              stream_top_k: Optional[int] = None,
                              coalesce_every: int = 4):
    """Row-sharded LocalPush; drop-in equivalent of the other backends.

    Parameters mirror :func:`repro.simrank.localpush.localpush_simrank`
    (which dispatches here for ``backend="sharded"``), plus:

    num_workers:
        Size of the thread pool executing shard pushes.  Defaults to
        :func:`default_num_workers`.  The result is bit-identical for every
        worker count (see the module docstring), so this is purely a
        throughput knob.
    num_shards:
        Fixed shard count per round.  Defaults to
        ``ceil(frontier_nnz / DEFAULT_SHARD_NNZ)``, recomputed per round
        from the frontier alone so results stay independent of the pool
        size.
    stream_top_k:
        When given, stream top-k pruning into the round loop (bounded
        memory) and return the matrix already pruned with
        :func:`repro.graphs.sparse.top_k_per_row` semantics
        (``keep_diagonal=True``).  Matches pruning the fully materialised
        estimate exactly; see the correction-bound argument above.
    """
    from repro.simrank.localpush import LocalPushResult, finalize_estimate

    if not 0.0 < decay < 1.0:
        raise SimRankError(f"decay factor c must be in (0, 1), got {decay}")
    if epsilon <= 0.0:
        raise SimRankError(f"epsilon must be positive, got {epsilon}")
    if num_workers is not None and num_workers < 1:
        raise SimRankError(f"num_workers must be >= 1, got {num_workers}")
    if num_shards is not None and num_shards < 1:
        raise SimRankError(f"num_shards must be >= 1, got {num_shards}")
    if stream_top_k is not None and stream_top_k < 1:
        raise SimRankError(f"stream_top_k must be >= 1, got {stream_top_k}")

    workers = num_workers if num_workers is not None else default_num_workers()
    n = graph.num_nodes
    threshold = (1.0 - decay) * epsilon
    walk = column_normalize(graph.adjacency)     # W = A D⁻¹
    walk_t = walk.T.tocsr()

    residual = sp.identity(n, dtype=np.float64, format="csr")
    streaming = stream_top_k is not None
    # The materialised running estimate is only needed when the streaming
    # prune inspects it every round; otherwise absorbed frontiers are
    # accumulated as COO triplets and coalesced once at the end, like the
    # vectorized engine.
    estimate = sp.csr_matrix((n, n), dtype=np.float64)
    est_rows: list[np.ndarray] = []
    est_cols: list[np.ndarray] = []
    est_data: list[np.ndarray] = []

    num_pushes = 0
    num_rounds = 0
    max_shards_used = 0
    pool = ThreadPoolExecutor(max_workers=workers) if workers > 1 else None
    timer = Timer()
    timer.start()
    try:
        while True:
            above = residual.data > threshold
            count = int(np.count_nonzero(above))
            if count == 0:
                break
            rows = _csr_rows(residual)[above]
            cols = residual.indices[above].astype(np.int64, copy=False)
            data = residual.data[above].copy()

            # Absorb the frontier into the estimate (line 4 of Algorithm 1,
            # batched) and clear it from the residual.
            if streaming:
                estimate = estimate + sp.csr_matrix((data, (rows, cols)),
                                                    shape=(n, n))
            else:
                est_rows.append(rows)
                est_cols.append(cols)
                est_data.append(data)
            num_pushes += count
            if max_pushes is not None and num_pushes > max_pushes:
                raise SimRankError(
                    f"LocalPush exceeded max_pushes={max_pushes}; "
                    "epsilon is likely too small for this graph"
                )
            residual.data[above] = 0.0

            # Shard the frontier by stored-entry ranges.  The partition is a
            # function of the frontier only, never of the worker count.
            shards = num_shards if num_shards is not None else max(
                1, -(-count // DEFAULT_SHARD_NNZ))
            shards = min(shards, count)
            max_shards_used = max(max_shards_used, shards)
            chunks = [c for c in np.array_split(np.arange(count), shards)
                      if c.size]
            if pool is not None and len(chunks) > 1:
                futures = [pool.submit(_push_shard, walk_t, walk, rows[c],
                                       cols[c], data[c], n, decay)
                           for c in chunks]
                partials = [future.result() for future in futures]
            else:
                partials = [_push_shard(walk_t, walk, rows[c], cols[c],
                                        data[c], n, decay) for c in chunks]

            # Merge in shard order — deterministic regardless of which
            # worker finished first.
            pushed = partials[0]
            for partial in partials[1:]:
                pushed = pushed + partial
            residual = residual + pushed
            num_rounds += 1
            if num_rounds % coalesce_every == 0:
                residual.eliminate_zeros()

            if streaming:
                r_max = float(residual.data.max()) if residual.nnz else 0.0
                slack = r_max / (1.0 - decay)
                estimate = _streaming_prune(estimate, stream_top_k, slack)
    finally:
        if pool is not None:
            pool.shutdown(wait=True)
    residual.eliminate_zeros()
    elapsed = timer.stop()

    if not streaming and est_data:
        estimate = sp.coo_matrix(
            (np.concatenate(est_data),
             (np.concatenate(est_rows), np.concatenate(est_cols))),
            shape=(n, n),
        ).tocsr()  # COO→CSR sums duplicate frontier absorptions

    if absorb_residual and residual.nnz:
        rows = _csr_rows(residual)
        positive = residual.data > 0.0
        leftover_mass = sp.csr_matrix(
            (residual.data[positive].copy(),
             (rows[positive], residual.indices[positive].astype(np.int64, copy=False))),
            shape=(n, n))
        estimate = estimate + leftover_mass

    estimate = finalize_estimate(estimate, residual, epsilon=epsilon,
                                 prune=prune)

    if streaming:
        # Exact top_k_per_row semantics over the surviving superset: equal to
        # pruning the full estimate because streamed drops were provably out.
        estimate = top_k_per_row(estimate, stream_top_k, keep_diagonal=True)

    leftover = int(np.count_nonzero(residual.data > 0.0))
    return LocalPushResult(
        matrix=estimate,
        num_pushes=num_pushes,
        num_residual_entries=leftover,
        elapsed_seconds=elapsed,
        epsilon=epsilon,
        decay=decay,
        backend="sharded",
        num_rounds=num_rounds,
        num_workers=workers,
        num_shards=max_shards_used,
    )


__all__ = ["localpush_simrank_sharded", "default_num_workers",
           "DEFAULT_SHARD_NNZ", "DEFAULT_MAX_WORKERS"]
