"""Deprecated shim: the sharded LocalPush engine is now the unified core.

The row-sharded, worker-parallel push loop with streaming top-k pruning
that used to live here is the ``executor="thread"`` configuration of
:func:`repro.simrank.engine.localpush_engine`; the shard partition, the
shard-order merge, the ``‖R‖_max/(1−c)`` streaming-prune correction
bound and the worker-count determinism guarantee all moved there
verbatim (the process executor shares them too).  This module remains
only so existing imports keep working; prefer
``localpush_simrank(..., backend="sharded")``, an explicit
``executor=``, or the engine directly.
"""

from __future__ import annotations

import warnings
from typing import Optional

from repro.graphs.graph import Graph
from repro.simrank.engine import (
    DEFAULT_MAX_WORKERS,
    DEFAULT_SHARD_NNZ,
    default_num_workers,
    localpush_engine,
)
from repro.simrank.exact import DEFAULT_DECAY


def localpush_simrank_sharded(graph: Graph, *, decay: float = DEFAULT_DECAY,
                              epsilon: float = 0.1, prune: bool = True,
                              absorb_residual: bool = False,
                              max_pushes: int | None = None,
                              num_workers: Optional[int] = None,
                              num_shards: Optional[int] = None,
                              stream_top_k: Optional[int] = None,
                              coalesce_every: int = 4):
    """Deprecated alias for the unified core with the thread executor.

    Emits a :class:`DeprecationWarning` and returns a result bit-identical
    to ``localpush_engine(..., executor="thread")`` (pinned by
    ``tests/test_simrank_engine.py``).
    """
    warnings.warn(
        "localpush_simrank_sharded is deprecated; use "
        "localpush_simrank(..., backend='sharded') or "
        "repro.simrank.engine.localpush_engine(..., executor='thread')",
        DeprecationWarning, stacklevel=2)
    return localpush_engine(graph, decay=decay, epsilon=epsilon, prune=prune,
                            absorb_residual=absorb_residual,
                            max_pushes=max_pushes, executor="thread",
                            num_workers=num_workers, num_shards=num_shards,
                            stream_top_k=stream_top_k,
                            coalesce_every=coalesce_every,
                            backend_label="sharded")


__all__ = ["localpush_simrank_sharded", "default_num_workers",
           "DEFAULT_SHARD_NNZ", "DEFAULT_MAX_WORKERS"]
