"""Top-k pruning and construction of the SIGMA aggregation operator.

The paper stores, for every node, only its ``k`` largest approximate
SimRank scores, reducing both memory (``O(k·n)``) and the per-epoch
aggregation cost (``O(k·n·f)``, Table III).  :func:`simrank_operator`
bundles the full precomputation pipeline used by the SIGMA model:

``graph → (exact | series | localpush) SimRank → top-k prune → CSR operator``
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Literal, Optional, Union

import numpy as np
import scipy.sparse as sp

from repro.config import UNSET, SimRankConfig, merge_deprecated_kwargs
from repro.graphs.graph import Graph
from repro.graphs.sparse import sparse_row_normalize, top_k_per_row
from repro.simrank.cache import (
    OperatorCache,
    get_operator_cache,
    graph_fingerprint,
)
from repro.simrank.exact import exact_simrank, linearized_simrank
from repro.simrank.localpush import localpush_simrank
from repro.utils.timer import Timer

Method = Literal["exact", "series", "localpush", "auto"]

CacheLike = Union[OperatorCache, str, os.PathLike, None]


def topk_simrank(matrix: sp.spmatrix | np.ndarray, k: int,
                 *, keep_diagonal: bool = True) -> sp.csr_matrix:
    """Keep the ``k`` largest SimRank scores per row.

    The diagonal (self-similarity) entry is preserved by default because the
    SIGMA update (Eq. (6)) mixes the aggregated embedding with the node's
    own embedding and losing the self entry would silently drop that term
    from ``S·H``.
    """
    if sp.issparse(matrix):
        sparse = sp.csr_matrix(matrix)
    else:
        sparse = sp.csr_matrix(np.asarray(matrix))
    return top_k_per_row(sparse, k, keep_diagonal=keep_diagonal)


@dataclass
class SimRankOperator:
    """The precomputed aggregation operator ``S`` plus provenance metadata."""

    matrix: sp.csr_matrix
    method: str
    decay: float
    epsilon: Optional[float]
    top_k: Optional[int]
    precompute_seconds: float
    backend: Optional[str] = None
    #: True when the operator was served from a persistent cache instead of
    #: being recomputed; ``precompute_seconds`` then measures the load.
    cache_hit: bool = False
    #: Whether the rows were normalised to sum to one after pruning.
    row_normalize: bool = False
    #: Set on cross-ε/k cache reuse hits: the (tighter) ε′ and (larger) k′
    #: of the stored entry that was re-pruned to serve this request.
    reuse_source_epsilon: Optional[float] = None
    reuse_source_top_k: Optional[int] = None

    @property
    def nnz(self) -> int:
        return int(self.matrix.nnz)

    @property
    def average_entries_per_node(self) -> float:
        n = self.matrix.shape[0]
        return self.nnz / n if n else 0.0


def simrank_operator(graph: Graph, config: Optional[SimRankConfig] = None, *,
                     method: object = UNSET, decay: object = UNSET,
                     epsilon: object = UNSET, top_k: object = UNSET,
                     row_normalize: object = UNSET,
                     exact_size_limit: object = UNSET,
                     backend: object = UNSET, executor: object = UNSET,
                     num_workers: object = UNSET, cache: object = UNSET,
                     cache_max_bytes: object = UNSET) -> SimRankOperator:
    """Precompute the SimRank aggregation operator for a graph.

    The supported calling convention is a single
    :class:`repro.config.SimRankConfig`::

        simrank_operator(graph, SimRankConfig(method="localpush",
                                              epsilon=0.1, top_k=32,
                                              cache_dir="~/.simrank-cache"))

    See :class:`repro.config.SimRankConfig` for the meaning of every
    field (method selection, ε, top-k pruning, the LocalPush
    ``(backend, executor, workers)`` plan, and the persistent operator
    cache with its LRU byte cap).  With ``config=None`` and no keywords
    the library defaults apply.

    Deprecated keywords
    -------------------
    The pre-config keyword arguments (``method=``, ``decay=``,
    ``epsilon=``, ``top_k=``, ``row_normalize=``, ``exact_size_limit=``,
    ``backend=``, ``executor=``, ``num_workers=``, ``cache=``,
    ``cache_max_bytes=``) remain accepted: each one emits a
    :class:`DeprecationWarning` and is folded into an equivalent config,
    producing an identical operator *and* an identical on-disk cache key
    (pinned by ``tests/test_config.py``), so caches written by older
    code stay warm.  ``cache=`` additionally accepts a live
    :class:`repro.simrank.cache.OperatorCache` instance.  Mixing
    ``config=`` with any deprecated keyword is an error.
    """
    cache_instance: Optional[OperatorCache] = None
    if isinstance(cache, OperatorCache):
        cache_instance = cache
        cache = str(cache.directory)
    # These knobs had None for their legacy default, so an explicit None
    # means "default", not an override.  (top_k=None stays explicit: it
    # is the documented "no pruning" request — same value as the config
    # default here, but the warning should still fire.)
    executor = UNSET if executor is None else executor
    num_workers = UNSET if num_workers is None else num_workers
    cache = UNSET if cache is None else cache
    cache_max_bytes = UNSET if cache_max_bytes is None else cache_max_bytes
    config = merge_deprecated_kwargs(config, {
        "method": ("method", method),
        "decay": ("decay", decay),
        "epsilon": ("epsilon", epsilon),
        "top_k": ("top_k", top_k),
        "row_normalize": ("row_normalize", row_normalize),
        "exact_size_limit": ("exact_size_limit", exact_size_limit),
        "backend": ("backend", backend),
        "executor": ("executor", executor),
        "num_workers": ("workers", num_workers),
        "cache": ("cache_dir", cache),
        "cache_max_bytes": ("cache_max_bytes", cache_max_bytes),
    }, api_hint="config=SimRankConfig(...)")
    return _simrank_operator(graph, config, cache_instance)


def _simrank_operator(graph: Graph, config: SimRankConfig,
                      cache_instance: Optional[OperatorCache] = None
                      ) -> SimRankOperator:
    """Config-driven core of :func:`simrank_operator`."""
    resolved = config.resolved_method(graph.num_nodes)
    key_fields = config.cache_key_fields(graph.num_nodes)

    cache_store = cache_instance
    if cache_store is not None:
        if config.cache_max_bytes is not None:
            cache_store.max_bytes = config.cache_max_bytes
    elif config.cache_dir is not None:
        cache_store = get_operator_cache(config.cache_dir,
                                         max_bytes=config.cache_max_bytes)

    key: Optional[str] = None
    fingerprint: Optional[str] = None
    timer = Timer()
    timer.start()
    if cache_store is not None:
        fingerprint = graph_fingerprint(graph)
        key = cache_store.key_for_fields(graph, key_fields)
        cached = cache_store.lookup(graph, fingerprint=fingerprint,
                                    **key_fields)
        if cached is not None:
            cached.precompute_seconds = timer.stop()
            return cached

    localpush_backend: Optional[str] = None
    if resolved == "exact":
        dense = exact_simrank(graph, decay=config.decay)
        matrix = sp.csr_matrix(dense)
    elif resolved == "series":
        dense = linearized_simrank(graph, decay=config.decay,
                                   tolerance=config.epsilon / 10.0)
        dense[dense < config.epsilon / 10.0] = 0.0
        matrix = sp.csr_matrix(dense)
    else:
        # For the aggregation operator we keep sub-threshold residual mass
        # (a strict accuracy improvement) and let top-k do the pruning; the
        # unified core additionally streams the top-k prune into the push
        # loop (stream_top_k) so the full estimate never materialises.
        result = localpush_simrank(graph, decay=config.decay,
                                   epsilon=config.epsilon,
                                   prune=config.top_k is None,
                                   absorb_residual=True,
                                   backend=config.backend,
                                   executor=config.executor,
                                   num_workers=config.workers,
                                   stream_top_k=config.top_k,
                                   kernel=config.kernel,
                                   dtype=config.dtype)
        matrix = result.matrix
        localpush_backend = result.backend
    if config.dtype == "float32" and matrix.dtype != np.float32:
        # The LocalPush core computes natively in float32; the dense
        # references have no reduced-precision path, so their operators
        # are computed exactly and rounded once at the end (a strictly
        # smaller error than carrying float32 through the iteration).
        matrix = matrix.astype(np.float32)

    if config.top_k is not None:
        matrix = topk_simrank(matrix, config.top_k)
    if config.row_normalize:
        matrix = sparse_row_normalize(matrix)
    matrix.sort_indices()

    operator = SimRankOperator(
        matrix=matrix,
        method=resolved,
        decay=config.decay,
        epsilon=key_fields["epsilon"],
        top_k=config.top_k,
        precompute_seconds=timer.stop(),
        backend=localpush_backend,
        row_normalize=config.row_normalize,
    )
    if cache_store is not None and key is not None:
        cache_store.store(key, operator, fingerprint=fingerprint)
    return operator


__all__ = ["topk_simrank", "simrank_operator", "SimRankOperator"]
