"""Top-k pruning and construction of the SIGMA aggregation operator.

The paper stores, for every node, only its ``k`` largest approximate
SimRank scores, reducing both memory (``O(k·n)``) and the per-epoch
aggregation cost (``O(k·n·f)``, Table III).  :func:`simrank_operator`
bundles the full precomputation pipeline used by the SIGMA model:

``graph → (exact | series | localpush) SimRank → top-k prune → CSR operator``
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal, Optional

import numpy as np
import scipy.sparse as sp

from repro.errors import SimRankError
from repro.graphs.graph import Graph
from repro.graphs.sparse import sparse_row_normalize, top_k_per_row
from repro.simrank.exact import DEFAULT_DECAY, exact_simrank, linearized_simrank
from repro.simrank.localpush import Backend, localpush_simrank
from repro.utils.timer import Timer

Method = Literal["exact", "series", "localpush", "auto"]


def topk_simrank(matrix: sp.spmatrix | np.ndarray, k: int,
                 *, keep_diagonal: bool = True) -> sp.csr_matrix:
    """Keep the ``k`` largest SimRank scores per row.

    The diagonal (self-similarity) entry is preserved by default because the
    SIGMA update (Eq. (6)) mixes the aggregated embedding with the node's
    own embedding and losing the self entry would silently drop that term
    from ``S·H``.
    """
    if sp.issparse(matrix):
        sparse = sp.csr_matrix(matrix)
    else:
        sparse = sp.csr_matrix(np.asarray(matrix))
    return top_k_per_row(sparse, k, keep_diagonal=keep_diagonal)


@dataclass
class SimRankOperator:
    """The precomputed aggregation operator ``S`` plus provenance metadata."""

    matrix: sp.csr_matrix
    method: str
    decay: float
    epsilon: Optional[float]
    top_k: Optional[int]
    precompute_seconds: float
    backend: Optional[str] = None

    @property
    def nnz(self) -> int:
        return int(self.matrix.nnz)

    @property
    def average_entries_per_node(self) -> float:
        n = self.matrix.shape[0]
        return self.nnz / n if n else 0.0


def simrank_operator(graph: Graph, *, method: Method = "auto",
                     decay: float = DEFAULT_DECAY, epsilon: float = 0.1,
                     top_k: Optional[int] = None, row_normalize: bool = False,
                     exact_size_limit: int = 3000,
                     backend: Backend = "auto") -> SimRankOperator:
    """Precompute the SimRank aggregation operator for a graph.

    Parameters
    ----------
    method:
        ``"exact"`` (dense Jeh–Widom SimRank), ``"series"`` (dense
        linearized series), ``"localpush"`` (Algorithm 1, sparse) or
        ``"auto"`` which picks ``"series"`` for graphs up to
        ``exact_size_limit`` nodes and ``"localpush"`` above it — matching
        the paper's policy of exact scores on small datasets and the
        ε-approximation on large ones.
    epsilon:
        Error threshold for the LocalPush approximation.
    top_k:
        When given, keep only the ``k`` largest scores per row.
    row_normalize:
        Optionally normalise the rows of the pruned operator to sum to one.
        The paper aggregates with the raw scores; normalisation is exposed
        for ablation studies.
    backend:
        LocalPush engine (``"dict"``, ``"vectorized"`` or ``"auto"``); only
        consulted when the resolved method is ``"localpush"``.  See
        :func:`repro.simrank.localpush.localpush_simrank`.
    """
    if top_k is not None and top_k <= 0:
        raise SimRankError(f"top_k must be positive, got {top_k}")
    if method not in {"exact", "series", "localpush", "auto"}:
        raise SimRankError(f"unknown SimRank method {method!r}")

    resolved = method
    if method == "auto":
        resolved = "series" if graph.num_nodes <= exact_size_limit else "localpush"

    localpush_backend: Optional[str] = None
    timer = Timer()
    with timer:
        if resolved == "exact":
            dense = exact_simrank(graph, decay=decay)
            matrix = sp.csr_matrix(dense)
        elif resolved == "series":
            dense = linearized_simrank(graph, decay=decay, tolerance=epsilon / 10.0)
            dense[dense < epsilon / 10.0] = 0.0
            matrix = sp.csr_matrix(dense)
        else:
            # For the aggregation operator we keep sub-threshold residual mass
            # (a strict accuracy improvement) and let top-k do the pruning.
            result = localpush_simrank(graph, decay=decay, epsilon=epsilon,
                                       prune=top_k is None,
                                       absorb_residual=True,
                                       backend=backend)
            matrix = result.matrix
            localpush_backend = result.backend

    if top_k is not None:
        matrix = topk_simrank(matrix, top_k)
    if row_normalize:
        matrix = sparse_row_normalize(matrix)
    matrix.sort_indices()

    return SimRankOperator(
        matrix=matrix,
        method=resolved,
        decay=decay,
        epsilon=None if resolved == "exact" else epsilon,
        top_k=top_k,
        precompute_seconds=timer.elapsed,
        backend=localpush_backend,
    )


__all__ = ["topk_simrank", "simrank_operator", "SimRankOperator"]
