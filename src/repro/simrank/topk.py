"""Top-k pruning and construction of the SIGMA aggregation operator.

The paper stores, for every node, only its ``k`` largest approximate
SimRank scores, reducing both memory (``O(k·n)``) and the per-epoch
aggregation cost (``O(k·n·f)``, Table III).  :func:`simrank_operator`
bundles the full precomputation pipeline used by the SIGMA model:

``graph → (exact | series | localpush) SimRank → top-k prune → CSR operator``
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Literal, Optional, Union

import numpy as np
import scipy.sparse as sp

from repro.errors import SimRankError
from repro.graphs.graph import Graph
from repro.graphs.sparse import sparse_row_normalize, top_k_per_row
from repro.simrank.cache import (
    OperatorCache,
    get_operator_cache,
    graph_fingerprint,
)
from repro.simrank.exact import DEFAULT_DECAY, exact_simrank, linearized_simrank
from repro.simrank.localpush import (
    Backend,
    ExecutorName,
    localpush_simrank,
    resolve_execution,
)
from repro.utils.timer import Timer

Method = Literal["exact", "series", "localpush", "auto"]

CacheLike = Union[OperatorCache, str, os.PathLike, None]


def _resolve_cache(cache: CacheLike,
                   max_bytes: Optional[int] = None) -> Optional[OperatorCache]:
    if cache is None:
        return None
    if isinstance(cache, OperatorCache):
        if max_bytes is not None:
            cache.max_bytes = max_bytes
        return cache
    return get_operator_cache(cache, max_bytes=max_bytes)


def topk_simrank(matrix: sp.spmatrix | np.ndarray, k: int,
                 *, keep_diagonal: bool = True) -> sp.csr_matrix:
    """Keep the ``k`` largest SimRank scores per row.

    The diagonal (self-similarity) entry is preserved by default because the
    SIGMA update (Eq. (6)) mixes the aggregated embedding with the node's
    own embedding and losing the self entry would silently drop that term
    from ``S·H``.
    """
    if sp.issparse(matrix):
        sparse = sp.csr_matrix(matrix)
    else:
        sparse = sp.csr_matrix(np.asarray(matrix))
    return top_k_per_row(sparse, k, keep_diagonal=keep_diagonal)


@dataclass
class SimRankOperator:
    """The precomputed aggregation operator ``S`` plus provenance metadata."""

    matrix: sp.csr_matrix
    method: str
    decay: float
    epsilon: Optional[float]
    top_k: Optional[int]
    precompute_seconds: float
    backend: Optional[str] = None
    #: True when the operator was served from a persistent cache instead of
    #: being recomputed; ``precompute_seconds`` then measures the load.
    cache_hit: bool = False
    #: Whether the rows were normalised to sum to one after pruning.
    row_normalize: bool = False
    #: Set on cross-ε/k cache reuse hits: the (tighter) ε′ and (larger) k′
    #: of the stored entry that was re-pruned to serve this request.
    reuse_source_epsilon: Optional[float] = None
    reuse_source_top_k: Optional[int] = None

    @property
    def nnz(self) -> int:
        return int(self.matrix.nnz)

    @property
    def average_entries_per_node(self) -> float:
        n = self.matrix.shape[0]
        return self.nnz / n if n else 0.0


def simrank_operator(graph: Graph, *, method: Method = "auto",
                     decay: float = DEFAULT_DECAY, epsilon: float = 0.1,
                     top_k: Optional[int] = None, row_normalize: bool = False,
                     exact_size_limit: int = 3000,
                     backend: Backend = "auto",
                     executor: Optional[ExecutorName] = None,
                     num_workers: Optional[int] = None,
                     cache: CacheLike = None,
                     cache_max_bytes: Optional[int] = None) -> SimRankOperator:
    """Precompute the SimRank aggregation operator for a graph.

    Parameters
    ----------
    method:
        ``"exact"`` (dense Jeh–Widom SimRank), ``"series"`` (dense
        linearized series), ``"localpush"`` (Algorithm 1, sparse) or
        ``"auto"`` which picks ``"series"`` for graphs up to
        ``exact_size_limit`` nodes and ``"localpush"`` above it — matching
        the paper's policy of exact scores on small datasets and the
        ε-approximation on large ones.
    epsilon:
        Error threshold for the LocalPush approximation.
    top_k:
        When given, keep only the ``k`` largest scores per row.
    row_normalize:
        Optionally normalise the rows of the pruned operator to sum to one.
        The paper aggregates with the raw scores; normalisation is exposed
        for ablation studies.
    backend:
        LocalPush engine family (``"dict"``, ``"vectorized"``,
        ``"sharded"`` or ``"auto"``); only consulted when the resolved
        method is ``"localpush"``.  See
        :func:`repro.simrank.localpush.localpush_simrank`.
    executor:
        Unified-core executor (``"serial"``, ``"thread"``, ``"process"``
        or ``"auto"``) — how the LocalPush shard pushes run.  Not part of
        the cache key: every executor is bit-identical.
    num_workers:
        Worker-pool size for the thread/process executors.  Deliberately
        *not* part of the cache key: the engine core is bit-identical
        across worker counts.
    cache:
        Optional persistent operator cache — an
        :class:`repro.simrank.cache.OperatorCache` or a cache directory
        path.  On a hit the precompute is skipped entirely and
        ``cache_hit=True`` is set on the returned operator (including
        cross-ε/k *reuse* hits, where a tighter-ε′/larger-k′ entry is
        re-pruned to this request — see :mod:`repro.simrank.cache`); on a
        miss the computed operator is stored for the next run.
    cache_max_bytes:
        Byte cap for the cache directory; stores beyond it evict the
        least-recently-used entries.  ``None`` (default) means unbounded.
    """
    if top_k is not None and top_k <= 0:
        raise SimRankError(f"top_k must be positive, got {top_k}")
    if method not in {"exact", "series", "localpush", "auto"}:
        raise SimRankError(f"unknown SimRank method {method!r}")

    resolved = method
    if method == "auto":
        resolved = "series" if graph.num_nodes <= exact_size_limit else "localpush"
    resolved_backend: Optional[str] = None
    if resolved == "localpush":
        resolved_backend, _ = resolve_execution(backend, executor,
                                                graph.num_nodes)
    cache_epsilon = None if resolved == "exact" else epsilon

    cache_store = _resolve_cache(cache, cache_max_bytes)
    key: Optional[str] = None
    fingerprint: Optional[str] = None
    timer = Timer()
    timer.start()
    if cache_store is not None:
        fingerprint = graph_fingerprint(graph)
        key = cache_store.key_for(
            graph, method=resolved, decay=decay, epsilon=cache_epsilon,
            top_k=top_k, row_normalize=row_normalize, backend=resolved_backend)
        cached = cache_store.lookup(
            graph, method=resolved, decay=decay, epsilon=cache_epsilon,
            top_k=top_k, row_normalize=row_normalize,
            backend=resolved_backend, fingerprint=fingerprint)
        if cached is not None:
            cached.precompute_seconds = timer.stop()
            return cached

    localpush_backend: Optional[str] = None
    if resolved == "exact":
        dense = exact_simrank(graph, decay=decay)
        matrix = sp.csr_matrix(dense)
    elif resolved == "series":
        dense = linearized_simrank(graph, decay=decay, tolerance=epsilon / 10.0)
        dense[dense < epsilon / 10.0] = 0.0
        matrix = sp.csr_matrix(dense)
    else:
        # For the aggregation operator we keep sub-threshold residual mass
        # (a strict accuracy improvement) and let top-k do the pruning; the
        # unified core additionally streams the top-k prune into the push
        # loop (stream_top_k) so the full estimate never materialises.
        result = localpush_simrank(graph, decay=decay, epsilon=epsilon,
                                   prune=top_k is None,
                                   absorb_residual=True,
                                   backend=backend,
                                   executor=executor,
                                   num_workers=num_workers,
                                   stream_top_k=top_k)
        matrix = result.matrix
        localpush_backend = result.backend

    if top_k is not None:
        matrix = topk_simrank(matrix, top_k)
    if row_normalize:
        matrix = sparse_row_normalize(matrix)
    matrix.sort_indices()

    operator = SimRankOperator(
        matrix=matrix,
        method=resolved,
        decay=decay,
        epsilon=cache_epsilon,
        top_k=top_k,
        precompute_seconds=timer.stop(),
        backend=localpush_backend,
        row_normalize=row_normalize,
    )
    if cache_store is not None and key is not None:
        cache_store.store(key, operator, fingerprint=fingerprint)
    return operator


__all__ = ["topk_simrank", "simrank_operator", "SimRankOperator"]
