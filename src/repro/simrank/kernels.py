"""Push-round kernels: how one LocalPush round's CSR arithmetic is executed.

:mod:`repro.simrank.engine` owns *what* a round computes (frontier →
``c·Wᵀ F W`` → residual/estimate update) and the executor strategies own
*where* the shard matmuls run.  This module owns the remaining axis —
*how* the surrounding CSR arithmetic is carried out — as a pluggable
kernel ladder:

``kernel="scipy"``
    The historical implementation: the frontier round-trips through a
    ``np.repeat`` row expansion and a COO→CSR construction per shard,
    shard partials merge through chained ``csr_plus_csr`` additions
    (an ``O(shards²)`` walk of the partial mass), and the streaming
    estimate absorbs and prunes every round.
``kernel="fused"``
    Operates on the raw CSR arrays with preallocated, round-reused
    workspaces.  The frontier is compressed out of the residual with one
    boolean mask and a searchsorted row pointer (no ``np.repeat``, no
    COO round-trip) and the shard matrices are zero-copy
    clipped-row-pointer views of it; the shard partials merge in **one**
    concatenate + single duplicate-summing pass (a selector-matrix
    product — see below) instead of the chained additions; the
    streaming-estimate absorb is batched and pruned at the
    ``coalesce_every`` cadence instead of every round.
``kernel="numba"``
    The fused kernel with the frontier extraction loop JIT-compiled
    (mask, compress and residual clearing fused into one pass over the
    stored entries), when :mod:`numba` is importable; resolves to
    ``"fused"`` otherwise (the dependency is optional, never required).
``kernel="auto"``
    Resolves to ``"fused"``.

The one-pass partial merge
--------------------------
Chained ``((p₀ + p₁) + p₂) + …`` additions walk the accumulated pushed
mass once per shard — ``O(shards²)`` stored entries touched per round,
and the measured hot spot of multi-shard rounds.  The fused kernel
instead stacks the partials (``vstack`` — the concatenate) and
left-multiplies by a *selector* matrix ``J`` with a single ``1.0`` entry
per ``(row, shard)`` pair, so ``J @ vstack(partials)`` sums, for every
output entry, the matching entries of all shards in one C pass of
scipy's sparse matmul.  This is bitwise the chained association: the
matmul accumulates each output entry sequentially in shard order
starting from ``+0.0``, and ``+0.0 + a == a`` and ``1.0 · a == a``
exactly, so the per-entry float operations are identical to the chained
adds (shard partials are products of non-negative walk weights and
positive frontier mass, so no ``-0.0`` corner exists; a partial entry
that underflows to ``+0.0`` is dropped by the subsequent
``csr_plus_csr`` zero filter on either path, leaving identical stored
patterns).

The residual update itself stays scipy's canonical ``csr_plus_csr`` (a
single C merge): a prototype that held the residual as flat
``row·n + col`` key/value arrays and merged in numpy was measured
1.5–2× *slower* than the C add at every size — the fused win comes from
removing redundant passes (the chained folds, the per-shard COO
round-trips, the per-round absorbs), not from reimplementing the merge.

Bit-identity
------------
For a fixed dtype every kernel returns *bit-identical* matrices — the
same guarantee the executor axis already carries, and the reason
``kernel`` stays out of the operator-cache key.  The pieces:

* both kernels canonicalise the round update (``pushed.sort_indices()``)
  before the residual add, so the residual's storage order is row-major
  column-sorted every round and both kernels extract frontiers in the
  identical entry order;
* the fused zero-copy shard slices hold bitwise the same
  ``(indptr, indices, data)`` arrays the scipy kernel builds through its
  per-shard COO round-trip (the frontier inherits the residual's
  canonical order; frontier keys are unique, so the COO build sorts and
  folds nothing), and the executor matmuls are shared;
* the one-pass partial merge reproduces the chained association exactly
  (previous section), and the residual/estimate additions are the same
  ``csr_plus_csr`` calls with the same operand order;
* the only cadence difference — the fused kernel folds and prunes the
  streaming estimate every ``coalesce_every`` rounds instead of every
  round — cannot change the final matrix: the absorb fold keeps the
  round-order left-to-right association, and every streamed drop is
  *provably outside the final top-k* (its value plus the
  ``‖R‖_max/(1−c)`` slack is strictly below the row's k-th largest,
  which never decreases), so the post-loop
  ``top_k_per_row(..., keep_diagonal=True)`` selects the same entries
  with the same fully-accumulated values either way.

The kernel-equivalence suite pins all of this per executor × worker
count, including single-source rows and streamed top-k runs.

float32 mode and its adjusted bound
-----------------------------------
``dtype="float32"`` runs the whole round loop — walk matrix, residual,
estimate — in single precision.  The push *threshold* ``(1−c)·ε`` needs
no adjustment: float32 values embed exactly into float64, so the
comparison against the float64 threshold is exact.  The *error bound*
does: Lemma III.5's ``‖Ŝ − S‖_max < ε`` holds in exact arithmetic, and
single precision adds rounding error on top.  Each stored value is
accumulated over at most ``ceil(log((1−c)·ε) / log(c))`` rounds (the
residual max decays at least geometrically by ``c`` per round), each
round compounding a bounded number of rounding steps (the ``Wᵀ F W``
dot products plus one absorb/merge add) on mass bounded by the
geometric total ``1/(1−c)``.  :func:`float32_error_bound` packages this
as

    ``ε₃₂ = ε + F32_BOUND_SAFETY · u · rounds(ε, c) / (1 − c)``

with ``u = 2⁻²⁴`` (round-to-nearest unit roundoff) and a safety constant
absorbing the per-round dot-product accumulation; the hypothesis sweep
and the recorded benchmark sweep validate the bound against the exact
``linearized_simrank`` oracle.  float32 operators are keyed separately
in the operator cache (see ``SimRankConfig.cache_key_fields``).
"""

from __future__ import annotations

import math
from typing import (Callable, Dict, List, Optional, Protocol, Sequence,
                    Tuple, Union)

import numpy as np
import scipy.sparse as sp

from repro.errors import SimRankError
from repro.graphs.sparse import csr_row_indices
from repro.utils.timer import Timer

#: Kernel names accepted by the engine (``"auto"`` resolves to the best
#: available implementation; ``"numba"`` falls back to ``"fused"`` when
#: numba is not importable).
KERNELS = ("auto", "scipy", "fused", "numba")

#: dtype names accepted by the engine.
DTYPES = ("float64", "float32")

#: float32 round-to-nearest unit roundoff (2⁻²⁴).
F32_UNIT_ROUNDOFF = 2.0 ** -24

#: Safety factor of :func:`float32_error_bound`, absorbing the per-round
#: dot-product accumulation (degree-length products inside ``Wᵀ F W``)
#: with ample margin; validated empirically by the hypothesis sweep and
#: the recorded benchmark sweep.
F32_BOUND_SAFETY = 64.0

#: Per-round phase names recorded by :class:`PhaseProfile`.
PHASES = ("frontier", "push", "merge", "prune")

#: A shard of the frontier: (rows, cols, values) of its stored entries.
Shard = Tuple[np.ndarray, np.ndarray, np.ndarray]


class RoundRunner(Protocol):
    """The executor surface the round states drive (see ``engine.py``)."""

    name: str
    #: Process pools want pickled (rows, cols, data) triplets for
    #: multi-shard rounds; in-process executors take zero-copy matrices.
    wants_triplets: bool

    def push_round(self, shards: Sequence[Shard]) -> List[sp.csr_matrix]:
        ...

    def push_round_matrices(self, matrices: Sequence[sp.csr_matrix]
                            ) -> List[sp.csr_matrix]:
        ...


def numba_available() -> bool:
    """Whether the optional numba dependency is importable."""
    try:
        import numba  # noqa: F401  (probe only)
    except Exception:  # pragma: no cover - depends on environment
        return False
    return True


def resolve_kernel(kernel: str) -> str:
    """Resolve a kernel request to a concrete implementation name.

    ``"auto"`` picks ``"fused"`` (bit-identical to ``"scipy"`` and
    faster); ``"numba"`` degrades gracefully to ``"fused"`` when numba
    is not importable.  Unknown names raise :class:`SimRankError`.
    """
    if kernel not in KERNELS:
        raise SimRankError(f"unknown LocalPush kernel {kernel!r}; "
                           f"expected one of {KERNELS}")
    if kernel == "auto":
        return "fused"
    if kernel == "numba" and not numba_available():
        return "fused"
    return kernel


def working_dtype(dtype: str) -> np.dtype:
    """The numpy dtype for a config-level dtype name."""
    if dtype not in DTYPES:
        raise SimRankError(f"unknown LocalPush dtype {dtype!r}; "
                           f"expected one of {DTYPES}")
    return np.dtype(np.float32 if dtype == "float32" else np.float64)


def localpush_max_rounds(epsilon: float, decay: float) -> int:
    """Upper bound on the number of frontier rounds before termination.

    After each round every residual entry is a sum of push masses from
    one more application of ``c·Wᵀ · W`` whose total mass factor is at
    most ``c``, so ``‖R‖_max`` decays at least geometrically: it drops
    below the ``(1−c)·ε`` push threshold within
    ``ceil(log((1−c)·ε) / log(c))`` rounds.
    """
    threshold = (1.0 - decay) * epsilon
    if threshold >= 1.0:
        return 0
    return max(1, math.ceil(math.log(threshold) / math.log(decay)))


def float32_error_bound(epsilon: float, decay: float) -> float:
    """The adjusted max-norm error bound of the float32 mode.

    ``ε₃₂ = ε + F32_BOUND_SAFETY · u · rounds(ε, c) / (1 − c)`` — the
    exact-arithmetic truncation bound ``ε`` (Lemma III.5, unchanged: the
    float32 threshold comparison is exact) plus a rounding term: every
    stored value is accumulated over at most
    :func:`localpush_max_rounds` rounds of unit-roundoff-``u``
    operations on total mass bounded by the geometric series
    ``1/(1−c)``.  See the module docstring for the derivation and the
    safety constant.
    """
    rounds = localpush_max_rounds(epsilon, decay)
    return epsilon + F32_BOUND_SAFETY * F32_UNIT_ROUNDOFF * rounds / (1.0 - decay)


# --------------------------------------------------------------------- #
# Per-round phase profiling
# --------------------------------------------------------------------- #
class PhaseProfile:
    """Accumulated per-phase seconds of a push-round loop.

    Phases: ``frontier`` (above-threshold extraction, residual clearing
    and shard assembly), ``push`` (the executor's shard matmuls),
    ``merge`` (partial merging + the residual update) and ``prune``
    (coalescing plus the streaming absorb/prune work).  Used by
    ``bench_localpush.py --profile``; ``None`` (the default everywhere)
    keeps the loop unmeasured.

    This is also the engine's telemetry hook:
    :class:`repro.telemetry.TracingPhaseProfile` subclasses it to
    re-emit every measurement as a trace span, overriding :meth:`add`
    and the per-round marker :meth:`begin_round` (a no-op here).
    """

    def __init__(self) -> None:
        self.seconds: Dict[str, float] = {phase: 0.0 for phase in PHASES}

    def measure(self, phase: str) -> "_PhaseTimer":
        return _PhaseTimer(self, phase)

    def add(self, phase: str, seconds: float) -> None:
        self.seconds[phase] += seconds

    def begin_round(self, index: int) -> None:
        """Round marker called by the engine loop; metadata only."""

    def as_dict(self) -> Dict[str, float]:
        return dict(self.seconds)


class _PhaseTimer(Timer):
    """A :class:`Timer` that reports its elapsed time into a profile."""

    def __init__(self, profile: PhaseProfile, phase: str) -> None:
        super().__init__()
        self._profile = profile
        self._phase = phase

    def __exit__(self, *exc_info: object) -> None:
        self._profile.add(self._phase, self.stop())


class _NullTimer:
    """No-op context manager standing in for an absent profile."""

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


_NULL_TIMER = _NullTimer()

_Measure = Union[_PhaseTimer, _NullTimer]


# --------------------------------------------------------------------- #
# Shared frontier container + deterministic shard bounds
# --------------------------------------------------------------------- #
class Frontier:
    """One round's above-threshold entries, in residual storage order.

    ``cols``/``data`` are always materialised.  ``rows`` is computed on
    first access from the frontier row pointer (the fused kernel's
    zero-copy matrix path never needs it; the triplet and absorb paths
    do).  ``matrix`` is the frontier as one canonical CSR matrix sharing
    the ``cols``/``data`` arrays — set by the fused kernels, ``None``
    for the scipy kernel, which passes eager ``rows`` instead.
    """

    __slots__ = ("cols", "data", "matrix", "_rows", "_indptr")

    def __init__(self, cols: np.ndarray, data: np.ndarray, *,
                 rows: Optional[np.ndarray] = None,
                 indptr: Optional[np.ndarray] = None,
                 matrix: Optional[sp.csr_matrix] = None) -> None:
        self.cols = cols
        self.data = data
        self.matrix = matrix
        self._rows = rows
        self._indptr = indptr

    @property
    def rows(self) -> np.ndarray:
        if self._rows is None:
            assert self._indptr is not None
            counts = np.diff(self._indptr)
            self._rows = np.repeat(
                np.arange(counts.size, dtype=np.int64), counts)
        return self._rows

    @property
    def count(self) -> int:
        return int(self.data.size)


def shard_bounds(count: int, shards: int) -> List[Tuple[int, int]]:
    """Contiguous ``[start, end)`` entry ranges of the shard partition.

    Reproduces ``np.array_split(np.arange(count), shards)`` exactly (the
    first ``count % shards`` shards get one extra entry), so the
    partition — and with it the bit-identity guarantee — is a pure
    function of the frontier size, never of the kernel or executor.
    """
    base, extra = divmod(count, shards)
    bounds: List[Tuple[int, int]] = []
    start = 0
    for index in range(shards):
        end = start + base + (1 if index < extra else 0)
        bounds.append((start, end))
        start = end
    return bounds


# --------------------------------------------------------------------- #
# Round-reused scratch buffers
# --------------------------------------------------------------------- #
class _Workspace:
    """Named, capacity-grown scratch buffers reused across rounds."""

    def __init__(self) -> None:
        self._buffers: Dict[str, np.ndarray] = {}

    def scratch(self, name: str, size: int, dtype: np.dtype) -> np.ndarray:
        buffer = self._buffers.get(name)
        if buffer is None or buffer.size < size or buffer.dtype != dtype:
            buffer = np.empty(max(size, 16), dtype=dtype)
            self._buffers[name] = buffer
        return buffer[:size]

    def bool_buffer(self, name: str, size: int) -> np.ndarray:
        return self.scratch(name, size, np.dtype(bool))


# --------------------------------------------------------------------- #
# Streaming top-k prune (correction-bound guarded; see module docstring
# of repro.simrank for the full argument)
# --------------------------------------------------------------------- #
def streaming_prune(estimate: sp.csr_matrix, k: int,
                    slack: float) -> sp.csr_matrix:
    """Drop estimate entries that provably cannot reach the final top-k.

    An entry is removed only when ``value + slack`` is strictly below the
    row's current k-th largest value; the diagonal is never dropped (it
    is preserved by the final ``top_k_per_row(..., keep_diagonal=True)``
    semantics and must survive streaming too).  Mutates ``estimate`` in
    place (the caller holds the only reference to the freshly summed
    matrix).
    """
    if estimate.nnz == 0:
        return estimate
    indptr, indices, data = estimate.indptr, estimate.indices, estimate.data
    # Early rounds can never drop anything: value + slack >= slack, and no
    # row's k-th largest can exceed the global maximum entry.
    if slack >= float(data.max()):
        return estimate
    # Only rows holding more than k entries can possibly shed one.
    candidates = np.flatnonzero(np.diff(indptr) > k)
    if candidates.size == 0:
        return estimate
    changed = False
    for row in candidates:
        start, end = indptr[row], indptr[row + 1]
        size = end - start
        row_data = data[start:end]
        kth = np.partition(row_data, size - k)[size - k]
        drop = (row_data + slack) < kth
        if not drop.any():
            continue
        drop &= indices[start:end] != row
        if not drop.any():
            continue
        row_data[drop] = 0.0
        changed = True
    if changed:
        estimate.eliminate_zeros()
    return estimate


# --------------------------------------------------------------------- #
# Round states: the per-run kernel objects driven by the engine loop
# --------------------------------------------------------------------- #
class ScipyRoundState:
    """The historical CSR-object round arithmetic, verbatim.

    ``signed=True`` switches the frontier threshold to entry
    *magnitude* (``|R| > threshold``).  The fresh-run loop never needs
    it — seeding with the identity keeps the residual non-negative —
    but a dynamic repair warm-starts from a residual that carries
    negative mass for deleted edges (:mod:`repro.dynamic`), and its
    convergence argument bounds ``‖R‖_max = max |R_uv|``.  The default
    keeps the positive-only compare, bit-identical to every run before
    the flag existed.
    """

    kernel = "scipy"

    def __init__(self, residual: sp.csr_matrix, *, n: int, dtype: np.dtype,
                 index_dtype: np.dtype,
                 profile: Optional[PhaseProfile] = None,
                 signed: bool = False) -> None:
        self._residual = residual
        self._n = n
        self._dtype = dtype
        self._profile = profile
        self._signed = bool(signed)
        self._estimate = sp.csr_matrix((n, n), dtype=dtype)

    def _measure(self, phase: str) -> _Measure:
        if self._profile is None:
            return _NULL_TIMER
        return self._profile.measure(phase)

    def set_flush_cadence(self, coalesce_every: int) -> None:
        """No-op: the scipy kernel absorbs and prunes every round."""

    def extract_frontier(self, threshold: float) -> Optional[Frontier]:
        with self._measure("frontier"):
            residual = self._residual
            if self._signed:
                above = np.abs(residual.data) > threshold
            else:
                above = residual.data > threshold
            count = int(np.count_nonzero(above))
            if count == 0:
                return None
            rows = csr_row_indices(residual)[above]
            cols = residual.indices[above].astype(np.int64, copy=False)
            data = residual.data[above].copy()
            residual.data[above] = 0.0
        return Frontier(cols, data, rows=rows)

    def absorb_stream(self, frontier: Frontier) -> None:
        with self._measure("prune"):
            self._estimate = self._estimate + sp.csr_matrix(
                (frontier.data, (frontier.rows, frontier.cols)),
                shape=(self._n, self._n))

    def push_round(self, runner: RoundRunner, frontier: Frontier,
                   bounds: Sequence[Tuple[int, int]]) -> None:
        with self._measure("frontier"):
            chunks = [(frontier.rows[start:end], frontier.cols[start:end],
                       frontier.data[start:end]) for start, end in bounds]
        with self._measure("push"):
            partials = runner.push_round(chunks)
        with self._measure("merge"):
            # Merge in shard order — deterministic regardless of which
            # worker finished first.
            pushed = partials[0]
            for partial in partials[1:]:
                pushed = pushed + partial
            # Canonicalise the round update (a storage reorder; no value
            # changes).  With both operands canonical the addition takes
            # scipy's sorted fast path, so the residual's *storage order*
            # is row-major column-sorted every round — the same order the
            # fused kernel maintains.  Without this, downstream
            # order-sensitive steps (shard partitioning, the estimate's
            # COO duplicate fold) would diverge between kernels by a few
            # ulps.
            pushed.sort_indices()
            self._residual = self._residual + pushed

    def coalesce(self) -> None:
        with self._measure("prune"):
            self._residual.eliminate_zeros()

    def residual_max(self) -> float:
        return float(self._residual.data.max()) if self._residual.nnz else 0.0

    def stream_prune(self, k: int, decay: float) -> None:
        with self._measure("prune"):
            slack = self.residual_max() / (1.0 - decay)
            self._estimate = streaming_prune(self._estimate, k, slack)

    def finish(self, streaming: bool, k: Optional[int], decay: float
               ) -> Tuple[sp.csr_matrix, Optional[sp.csr_matrix]]:
        return self._residual, (self._estimate if streaming else None)


class FusedRoundState(ScipyRoundState):
    """Raw-CSR round arithmetic with reused workspaces and one-pass merges.

    Shares the scipy kernel's residual/estimate objects and C additions
    but restructures the three measured hot spots: repeat-free frontier
    compression with zero-copy shard slices, the one-pass
    selector-product partial merge, and the batched streaming absorb.
    Bit-identical to :class:`ScipyRoundState` per dtype — see the module
    docstring for the argument and ``tests/test_simrank_kernels.py`` for
    the pins.
    """

    kernel = "fused"

    def __init__(self, residual: sp.csr_matrix, *, n: int, dtype: np.dtype,
                 index_dtype: np.dtype,
                 profile: Optional[PhaseProfile] = None,
                 signed: bool = False) -> None:
        super().__init__(residual, n=n, dtype=dtype,
                         index_dtype=index_dtype, profile=profile,
                         signed=signed)
        self._index_dtype = index_dtype
        self._workspace = _Workspace()
        #: Selector matrices of the one-pass partial merge, per shard
        #: count (rounds repeat shard counts, so these are reused too).
        self._selectors: Dict[int, sp.csr_matrix] = {}
        #: Streaming absorbs batched between flushes (frontier matrices
        #: in round order).
        self._pending: List[sp.csr_matrix] = []
        self._flush_every = 1

    def set_flush_cadence(self, coalesce_every: int) -> None:
        """Batch streaming absorbs for this many rounds between flushes."""
        self._flush_every = max(1, int(coalesce_every))

    def extract_frontier(self, threshold: float) -> Optional[Frontier]:
        with self._measure("frontier"):
            residual = self._residual
            data = residual.data
            workspace = self._workspace
            above = workspace.bool_buffer("above", data.size)
            if self._signed:
                magnitude = workspace.scratch("magnitude", data.size,
                                              self._dtype)
                np.abs(data, out=magnitude)
                np.greater(magnitude, threshold, out=above)
            else:
                np.greater(data, threshold, out=above)
            positions = np.flatnonzero(above)
            count = int(positions.size)
            if count == 0:
                return None
            # Row pointer of the compressed selection: the number of
            # selected entries before each residual row boundary — a
            # binary search of the (sorted) selected positions, with the
            # gathers indexed instead of boolean-masked (measured ~10×
            # cheaper per pass).  No per-entry row-index expansion.
            indptr = np.searchsorted(positions, residual.indptr)
            cols = residual.indices[positions]
            frontier_data = data[positions]
            data[positions] = 0.0
            matrix = sp.csr_matrix(
                (frontier_data, cols,
                 indptr.astype(self._index_dtype, copy=False)),
                shape=(self._n, self._n), copy=False)
        return Frontier(cols, frontier_data, indptr=indptr, matrix=matrix)

    def absorb_stream(self, frontier: Frontier) -> None:
        # Queue the round's frontier matrix; the left-to-right fold (and
        # the prune) run at the coalesce cadence in stream_prune().
        assert frontier.matrix is not None
        self._pending.append(frontier.matrix)

    def push_round(self, runner: RoundRunner, frontier: Frontier,
                   bounds: Sequence[Tuple[int, int]]) -> None:
        use_triplets = runner.wants_triplets and len(bounds) > 1
        with self._measure("frontier"):
            if use_triplets:
                chunks = [(frontier.rows[start:end],
                           frontier.cols[start:end],
                           frontier.data[start:end])
                          for start, end in bounds]
                matrices: List[sp.csr_matrix] = []
            else:
                chunks = []
                matrices = self._shard_slices(frontier, bounds)
        with self._measure("push"):
            if use_triplets:
                partials = runner.push_round(chunks)
            else:
                partials = runner.push_round_matrices(matrices)
        with self._measure("merge"):
            if len(partials) == 1:
                pushed = partials[0]
            else:
                pushed = self._fold_partials(partials)
            # Same canonicalisation as the scipy kernel (storage reorder
            # only) so the add below takes the sorted fast path and the
            # residual order stays canonical.
            pushed.sort_indices()
            self._residual = self._residual + pushed

    def _shard_slices(self, frontier: Frontier,
                      bounds: Sequence[Tuple[int, int]]
                      ) -> List[sp.csr_matrix]:
        """Zero-copy CSR shard views of the frontier matrix.

        The frontier inherits the residual's row-major, column-sorted
        entry order, so a contiguous entry range *is* a CSR matrix once
        the row pointer is clipped to it — bitwise the same arrays the
        scipy kernel builds through its per-shard COO round-trip, with
        no sort and no duplicate folding.
        """
        matrix = frontier.matrix
        assert matrix is not None
        n = self._n
        indptr = matrix.indptr.astype(np.int64, copy=False)
        slices = []
        for start, end in bounds:
            shard_indptr = np.clip(indptr - start, 0, end - start)
            slices.append(sp.csr_matrix(
                (matrix.data[start:end], matrix.indices[start:end],
                 shard_indptr.astype(self._index_dtype, copy=False)),
                shape=(n, n), copy=False))
        return slices

    def _fold_partials(self, partials: Sequence[sp.csr_matrix]
                       ) -> sp.csr_matrix:
        """All shard partials summed in one duplicate-folding C pass.

        ``selector @ vstack(partials)`` — the selector row ``r`` holds a
        unit entry at column ``i·n + r`` for every shard ``i`` in
        ascending order, so the sparse matmul accumulates each output
        entry sequentially in shard order: bitwise the chained
        ``((p₀ + p₁) + p₂)`` association (see the module docstring), at
        a cost of one walk over the partial mass instead of one per
        shard.
        """
        stacked = sp.vstack(partials, format="csr")
        pushed = self._selector(len(partials),
                                stacked.indices.dtype) @ stacked
        return pushed.tocsr()

    def _selector(self, shards: int,
                  index_dtype: np.dtype) -> sp.csr_matrix:
        selector = self._selectors.get(shards)
        if selector is None or selector.indices.dtype != index_dtype \
                or selector.data.dtype != self._dtype:
            n = self._n
            indices = (np.arange(shards, dtype=np.int64)[None, :] * n
                       + np.arange(n, dtype=np.int64)[:, None]).ravel()
            indptr = np.arange(0, shards * n + 1, shards, dtype=np.int64)
            selector = sp.csr_matrix(
                (np.ones(shards * n, dtype=self._dtype),
                 indices.astype(index_dtype, copy=False),
                 indptr.astype(index_dtype, copy=False)),
                shape=(n, shards * n), copy=False)
            self._selectors[shards] = selector
        return selector

    def stream_prune(self, k: int, decay: float) -> None:
        if len(self._pending) < self._flush_every:
            return
        with self._measure("prune"):
            self._flush_stream(k, decay)

    def _flush_stream(self, k: int, decay: float) -> None:
        # The left-to-right fold reproduces the scipy kernel's
        # round-by-round ((e + f₁) + f₂) additions: the estimate stays
        # the left operand and each round's frontier folds in round
        # order.
        estimate = self._estimate
        for matrix in self._pending:
            estimate = estimate + matrix
        self._pending.clear()
        slack = self.residual_max() / (1.0 - decay)
        self._estimate = streaming_prune(estimate, k, slack)

    def finish(self, streaming: bool, k: Optional[int], decay: float
               ) -> Tuple[sp.csr_matrix, Optional[sp.csr_matrix]]:
        estimate: Optional[sp.csr_matrix] = None
        if streaming:
            assert k is not None
            # Final flush: absorb any batched rounds and prune once more
            # with the terminal slack (idempotent when already flushed).
            self._flush_stream(k, decay)
            estimate = self._estimate
        return self._residual, estimate


class NumbaRoundState(FusedRoundState):
    """The fused kernel with a JIT-compiled frontier extraction loop.

    Only constructed when :func:`numba_available` is true (the resolver
    falls back to ``"fused"`` otherwise).  The jitted loop fuses the
    threshold mask, the entry compression and the residual clearing into
    one pass over the stored entries, visiting them in the identical
    canonical order — so the produced arrays, and with them the whole
    run, are bitwise those of the fused kernel by construction.
    """

    kernel = "numba"

    def __init__(self, residual: sp.csr_matrix, *, n: int, dtype: np.dtype,
                 index_dtype: np.dtype,
                 profile: Optional[PhaseProfile] = None,
                 signed: bool = False) -> None:
        super().__init__(residual, n=n, dtype=dtype,
                         index_dtype=index_dtype, profile=profile,
                         signed=signed)
        self._numba_extract = _load_numba_extract()

    def extract_frontier(self, threshold: float) -> Optional[Frontier]:
        if self._signed:
            # The jitted loop compiles the positive-only compare; signed
            # runs take the fused numpy extraction, which produces the
            # identical arrays (same canonical entry order).
            return FusedRoundState.extract_frontier(self, threshold)
        with self._measure("frontier"):
            residual = self._residual
            workspace = self._workspace
            size = residual.data.size
            out_cols = workspace.scratch("extract_cols", size,
                                         residual.indices.dtype)
            out_data = workspace.scratch("extract_data", size, self._dtype)
            indptr = np.empty(self._n + 1, dtype=np.int64)
            count = self._numba_extract(residual.indptr, residual.indices,
                                        residual.data, threshold,
                                        indptr, out_cols, out_data)
            if count == 0:
                return None
            cols = out_cols[:count].copy()
            data = out_data[:count].copy()
            matrix = sp.csr_matrix(
                (data, cols, indptr.astype(self._index_dtype, copy=False)),
                shape=(self._n, self._n), copy=False)
        return Frontier(cols, data, indptr=indptr, matrix=matrix)


_NUMBA_EXTRACT: Optional[Callable[..., int]] = None


def _load_numba_extract() -> Callable[..., int]:
    """Compile (once) the fused extraction loop used by ``"numba"``."""
    global _NUMBA_EXTRACT
    if _NUMBA_EXTRACT is not None:
        return _NUMBA_EXTRACT
    import numba  # gated by numba_available() at resolution time

    @numba.njit(cache=False)  # type: ignore[misc]
    def extract(indptr: np.ndarray, indices: np.ndarray, data: np.ndarray,
                threshold: float, out_indptr: np.ndarray,
                out_cols: np.ndarray,
                out_data: np.ndarray) -> int:  # pragma: no cover - needs numba
        count = 0
        for row in range(out_indptr.size - 1):
            out_indptr[row] = count
            for position in range(indptr[row], indptr[row + 1]):
                value = data[position]
                if value > threshold:
                    out_cols[count] = indices[position]
                    out_data[count] = value
                    data[position] = 0.0
                    count += 1
        out_indptr[out_indptr.size - 1] = count
        return count

    _NUMBA_EXTRACT = extract
    return extract


RoundState = Union[ScipyRoundState, FusedRoundState]

_ROUND_STATES: Dict[str, type] = {
    "scipy": ScipyRoundState,
    "fused": FusedRoundState,
    "numba": NumbaRoundState,
}


def make_round_state(kernel: str, residual: sp.csr_matrix, *, n: int,
                     dtype: np.dtype, index_dtype: np.dtype,
                     profile: Optional[PhaseProfile] = None,
                     signed: bool = False) -> RoundState:
    """Construct the round state for a *resolved* kernel name.

    ``signed=True`` selects magnitude-threshold frontier extraction for
    repair runs whose residual carries negative mass (see
    :class:`ScipyRoundState`); the default is the positive-only compare
    used by every fresh run.
    """
    try:
        state_cls = _ROUND_STATES[kernel]
    except KeyError:
        raise SimRankError(
            f"unknown LocalPush kernel {kernel!r}; "
            f"expected one of {tuple(_ROUND_STATES)}") from None
    state: RoundState = state_cls(residual, n=n, dtype=dtype,
                                  index_dtype=index_dtype, profile=profile,
                                  signed=signed)
    return state


__all__ = ["KERNELS", "DTYPES", "PHASES", "F32_UNIT_ROUNDOFF",
           "F32_BOUND_SAFETY", "Shard", "RoundRunner", "numba_available",
           "resolve_kernel", "working_dtype", "localpush_max_rounds",
           "float32_error_bound", "PhaseProfile", "Frontier",
           "shard_bounds", "streaming_prune", "ScipyRoundState",
           "FusedRoundState", "NumbaRoundState", "RoundState",
           "make_round_state"]
