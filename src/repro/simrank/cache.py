"""Persistent, content-addressed cache for precomputed SimRank operators.

LocalPush precompute dominates end-to-end cost of the scalability
experiments (Fig. 5, Table III), yet the operator is a pure function of
``(graph, method, c, ε, k, backend, row_normalize)``.  This module stores
each computed :class:`repro.simrank.topk.SimRankOperator` on disk under a
content-addressed key so repeated experiment runs skip precompute
entirely.

Cache layout
------------
A cache directory holds one ``.npz`` file per operator::

    <cache-dir>/
        simrank-<key>.npz     # CSR arrays (data/indices/indptr/shape)
                              # + a JSON metadata record

``<key>`` is the SHA-256 (truncated to 32 hex chars) of a canonical JSON
payload containing the cache format version, the *graph fingerprint* (a
SHA-256 over the adjacency CSR arrays — content-addressed, so renames and
re-generations of the same graph hit) and the resolved operator
parameters.  The worker count is deliberately **excluded** from the key:
the sharded engine is bit-deterministic across worker counts, so operators
computed with different pools are interchangeable.

Invalidation and corruption
---------------------------
* **Versioned invalidation** — :data:`CACHE_FORMAT_VERSION` participates in
  the key *and* is checked against the stored metadata on load; bumping it
  orphans every existing entry, and a stale or mismatched file is evicted
  (deleted) rather than trusted.
* **Parameter verification** — the stored metadata must match the request
  exactly, guarding against key collisions and hand-edited files.
* **Corruption** — any load failure (truncated zip, missing arrays,
  malformed JSON) counts as a miss: the broken file is evicted and the
  operator is recomputed and re-stored.

Writes are atomic (temp file + ``os.replace``) so a crashed run never
leaves a half-written entry behind.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Optional

import numpy as np
import scipy.sparse as sp

from repro.graphs.graph import Graph

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.simrank.topk import SimRankOperator

#: Bump to orphan every previously written cache entry (e.g. when the
#: on-disk layout or the operator semantics change).
CACHE_FORMAT_VERSION = 1

_FILE_PREFIX = "simrank-"

#: Per-directory singleton registry so every consumer of the same cache
#: directory shares one instance — and therefore one set of hit/miss
#: counters, which the experiment tests assert on.
_CACHE_REGISTRY: Dict[Path, "OperatorCache"] = {}


def graph_fingerprint(graph: Graph) -> str:
    """Content hash of a graph's adjacency structure (SHA-256 hex digest).

    Hashes the canonical CSR arrays (``Graph`` sorts indices on
    construction), so two graphs with identical topology and weights share
    a fingerprint regardless of name, features or labels — none of which
    influence the SimRank operator.
    """
    adjacency = graph.adjacency
    digest = hashlib.sha256()
    digest.update(np.int64(adjacency.shape[0]).tobytes())
    digest.update(adjacency.indptr.astype(np.int64, copy=False).tobytes())
    digest.update(adjacency.indices.astype(np.int64, copy=False).tobytes())
    digest.update(adjacency.data.astype(np.float64, copy=False).tobytes())
    return digest.hexdigest()


def get_operator_cache(directory: str | os.PathLike) -> "OperatorCache":
    """Return the shared :class:`OperatorCache` for ``directory``.

    Memoised per resolved path: repeated calls (e.g. one per experiment
    grid cell) reuse the same instance and keep accumulating its counters.
    """
    path = Path(directory).expanduser().resolve()
    cache = _CACHE_REGISTRY.get(path)
    if cache is None:
        cache = OperatorCache(path)
        _CACHE_REGISTRY[path] = cache
    return cache


class OperatorCache:
    """On-disk operator cache with hit/miss/store/eviction counters.

    Prefer :func:`get_operator_cache` over direct construction so counter
    state is shared per directory.
    """

    def __init__(self, directory: str | os.PathLike) -> None:
        self.directory = Path(directory).expanduser()
        self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0

    # ------------------------------------------------------------------ #
    def key_for(self, graph: Graph, *, method: str, decay: float,
                epsilon: Optional[float], top_k: Optional[int],
                row_normalize: bool, backend: Optional[str]) -> str:
        """Content-addressed key for one operator configuration."""
        payload = json.dumps({
            "version": CACHE_FORMAT_VERSION,
            "graph": graph_fingerprint(graph),
            "method": method,
            "decay": decay,
            "epsilon": epsilon,
            "top_k": top_k,
            "row_normalize": row_normalize,
            "backend": backend,
        }, sort_keys=True)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:32]

    def path_for(self, key: str) -> Path:
        return self.directory / f"{_FILE_PREFIX}{key}.npz"

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob(f"{_FILE_PREFIX}*.npz"))

    def clear(self) -> int:
        """Delete every cache entry; returns the number removed."""
        removed = 0
        for path in self.directory.glob(f"{_FILE_PREFIX}*.npz"):
            path.unlink()
            removed += 1
        return removed

    # ------------------------------------------------------------------ #
    def load(self, key: str, *, expect: Optional[dict] = None
             ) -> Optional["SimRankOperator"]:
        """Load the operator stored under ``key``, or ``None`` on a miss.

        ``expect`` maps metadata field names to required values (the
        resolved request parameters); a mismatch — as well as a version
        mismatch or any deserialisation failure — evicts the file and
        counts as a miss.
        """
        from repro.simrank.topk import SimRankOperator

        path = self.path_for(key)
        if not path.exists():
            self.misses += 1
            return None
        try:
            with np.load(path, allow_pickle=False) as payload:
                meta = json.loads(str(payload["meta"]))
                if meta.get("version") != CACHE_FORMAT_VERSION:
                    raise ValueError(
                        f"cache format version {meta.get('version')} != "
                        f"{CACHE_FORMAT_VERSION}")
                for field, expected in (expect or {}).items():
                    if meta.get(field) != expected:
                        raise ValueError(
                            f"metadata mismatch for {field!r}: "
                            f"{meta.get(field)!r} != {expected!r}")
                shape = tuple(int(side) for side in payload["shape"])
                matrix = sp.csr_matrix(
                    (payload["data"], payload["indices"], payload["indptr"]),
                    shape=shape)
                matrix.check_format(full_check=True)
        except Exception:
            # Truncated, corrupted, stale-format or mismatched entry: evict
            # so the caller recomputes and overwrites with a fresh file.
            self.evictions += 1
            self.misses += 1
            path.unlink(missing_ok=True)
            return None
        self.hits += 1
        return SimRankOperator(
            matrix=matrix,
            method=str(meta["method"]),
            decay=float(meta["decay"]),
            epsilon=None if meta["epsilon"] is None else float(meta["epsilon"]),
            top_k=None if meta["top_k"] is None else int(meta["top_k"]),
            precompute_seconds=0.0,
            backend=meta.get("backend"),
            cache_hit=True,
            row_normalize=bool(meta.get("row_normalize", False)),
        )

    def store(self, key: str, operator: "SimRankOperator") -> Path:
        """Atomically persist ``operator`` under ``key``."""
        matrix = sp.csr_matrix(operator.matrix)
        meta = json.dumps({
            "version": CACHE_FORMAT_VERSION,
            "method": operator.method,
            "decay": operator.decay,
            "epsilon": operator.epsilon,
            "top_k": operator.top_k,
            "backend": operator.backend,
            "row_normalize": operator.row_normalize,
            "precompute_seconds": operator.precompute_seconds,
        })
        path = self.path_for(key)
        temp_path = path.with_name(path.name + f".tmp{os.getpid()}")
        try:
            with open(temp_path, "wb") as handle:
                np.savez_compressed(
                    handle,
                    data=matrix.data,
                    indices=matrix.indices,
                    indptr=matrix.indptr,
                    shape=np.asarray(matrix.shape, dtype=np.int64),
                    meta=np.asarray(meta),
                )
            os.replace(temp_path, path)
        finally:
            temp_path.unlink(missing_ok=True)
        self.stores += 1
        return path

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"OperatorCache({str(self.directory)!r}, hits={self.hits}, "
                f"misses={self.misses}, stores={self.stores}, "
                f"evictions={self.evictions})")


__all__ = ["OperatorCache", "get_operator_cache", "graph_fingerprint",
           "CACHE_FORMAT_VERSION"]
