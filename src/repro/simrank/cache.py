"""Persistent, content-addressed cache for precomputed SimRank operators.

LocalPush precompute dominates end-to-end cost of the scalability
experiments (Fig. 5, Table III), yet the operator is a pure function of
``(graph, method, c, ε, k, backend, row_normalize)``.  This module stores
each computed :class:`repro.simrank.topk.SimRankOperator` on disk under a
content-addressed key so repeated experiment runs skip precompute
entirely.

Cache layout
------------
A cache directory holds one ``.npz`` file per operator plus a sidecar
index::

    <cache-dir>/
        simrank-<key>.npz            # CSR arrays (data/indices/indptr/shape)
                                     # + a JSON metadata record
        simrank-cache-index.json     # per-entry parameters, sizes and
                                     # LRU clock (rebuildable from the
                                     # .npz metadata at any time)

``<key>`` is the SHA-256 (truncated to 32 hex chars) of a canonical JSON
payload containing the cache format version, the *graph fingerprint* (a
SHA-256 over the adjacency CSR arrays — content-addressed, so renames and
re-generations of the same graph hit) and the resolved operator
parameters.  The parameter fields are derived in exactly one place —
:meth:`repro.config.SimRankConfig.cache_key_fields` — and hashed here by
:meth:`OperatorCache.key_for_fields`; both the config path and the
deprecated-kwarg shims flow through that derivation, so they produce
identical keys.  The worker count **and the unified-core executor** are
deliberately excluded from the key: the engine core is bit-deterministic
across executors and pool sizes, so operators computed with any of them
are interchangeable.

Eviction policy (LRU under a byte cap)
--------------------------------------
Construct the cache with ``max_bytes`` (or pass
``cache_max_bytes=``/``--simrank-cache-max-bytes`` through the operator
pipeline) to cap the total size of stored entries.  Every store and every
hit advances a logical LRU clock persisted in the sidecar index; when a
store pushes the directory over the cap, least-recently-used entries are
deleted (counted in ``lru_evictions``) until the cap is met again.  The
just-stored entry is always retained, even if it alone exceeds the cap.

Cross-ε / cross-k reuse
-----------------------
A LocalPush operator computed at a *tighter* threshold ``ε′ ≤ ε`` is a
strictly better approximation than one computed at ``ε``, and a top-k
pruned operator with ``k′ ≥ k`` is a superset of the ``k`` one.  On an
exact-key miss, :meth:`OperatorCache.lookup` therefore scans the index
for an entry with the same graph fingerprint, method and decay whose
``(ε′, k′)`` dominates the request, loads it, and *re-prunes* it down to
the requested contract (``top_k_per_row`` for a smaller ``k``, the
``ε/10`` floor for a looser full-matrix request, re-normalisation when
rows were normalised — per-row scaling preserves score ranking, so
re-pruning a normalised operator selects the same support).  The reverse
direction never happens: a looser entry cannot serve a tighter request.
Reuse hits are counted separately (``reuse_hits``) from exact key hits
(``exact_hits``); ``hits`` remains their sum.

Delta-chained entries
---------------------
Dynamic repairs (:mod:`repro.dynamic`) store their repaired snapshots
under a key derived from the *base* graph fingerprint plus the update
batch's content hash (:meth:`OperatorCache.delta_key_for`), so a warm
base entry plus a small delta is addressable without the updated CSR.
Chained entries carry the *updated* graph's fingerprint in their
metadata and therefore also participate in the ordinary reuse scan and
row serving for requests on the updated graph — a repaired operator
satisfies the same ``(1−c)·ε`` contract as a freshly computed one.

Invalidation and corruption
---------------------------
* **Versioned invalidation** — :data:`CACHE_FORMAT_VERSION` participates in
  the key *and* is checked against the stored metadata on load; bumping it
  orphans every existing entry, and a stale or mismatched file is evicted
  (deleted) rather than trusted.
* **Parameter verification** — the stored metadata must match the request
  exactly, guarding against key collisions and hand-edited files.
* **Corruption** — any load failure (truncated zip, missing arrays,
  malformed JSON) counts as a miss: the broken file is evicted and the
  operator is recomputed and re-stored.

Writes are atomic (temp file + ``os.replace``) so a crashed run never
leaves a half-written entry behind.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.config import CACHE_KEY_FIELDS
from repro.errors import SimRankError
from repro.graphs.fingerprint import graph_fingerprint, payload_digest
from repro.graphs.graph import Graph

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.simrank.topk import SimRankOperator
    from repro.telemetry.metrics import Counter
    from repro.telemetry.runtime import Telemetry

#: Bump to orphan every previously written cache entry (e.g. when the
#: on-disk layout or the operator semantics change).  Version 2: metadata
#: gained the graph fingerprint (needed by the reuse index) and the
#: unified engine core fixed the shard partition across all executors.
CACHE_FORMAT_VERSION = 2

_FILE_PREFIX = "simrank-"
_INDEX_NAME = "simrank-cache-index.json"

#: Per-directory singleton registry so every consumer of the same cache
#: directory shares one instance — and therefore one set of hit/miss
#: counters, which the experiment tests assert on.
_CACHE_REGISTRY: Dict[Path, "OperatorCache"] = {}


def get_operator_cache(directory: str | os.PathLike,
                       max_bytes: Optional[int] = None) -> "OperatorCache":
    """Return the shared :class:`OperatorCache` for ``directory``.

    Memoised per resolved path: repeated calls (e.g. one per experiment
    grid cell) reuse the same instance and keep accumulating its counters.
    A non-``None`` ``max_bytes`` updates the shared instance's cap.
    """
    path = Path(directory).expanduser().resolve()
    cache = _CACHE_REGISTRY.get(path)
    if cache is None:
        cache = OperatorCache(path, max_bytes=max_bytes)
        _CACHE_REGISTRY[path] = cache
    elif max_bytes is not None:
        cache.max_bytes = max_bytes
    return cache


def _floor_prune(matrix: sp.csr_matrix, floor: float) -> sp.csr_matrix:
    """Drop entries below ``floor``, never the diagonal (paper's prune)."""
    from repro.graphs.sparse import csr_row_indices

    rows = csr_row_indices(matrix)
    keep = (matrix.data >= floor) | (rows == matrix.indices)
    matrix.data[~keep] = 0.0
    matrix.eliminate_zeros()
    return matrix


class OperatorCache:
    """On-disk operator cache with LRU eviction and cross-ε/k reuse.

    Prefer :func:`get_operator_cache` over direct construction so counter
    state is shared per directory.

    Counters
    --------
    ``hits`` (= ``exact_hits`` + ``reuse_hits``), ``misses``, ``stores``,
    ``evictions`` (corrupt/stale files), ``lru_evictions`` (byte-cap
    policy).  Single-source row serving (:meth:`lookup_row`) keeps its
    own ``row_hits``/``row_misses`` pair so the operator-level invariant
    ``hits == exact_hits + reuse_hits`` is unaffected by row traffic.
    """

    def __init__(self, directory: str | os.PathLike, *,
                 max_bytes: Optional[int] = None) -> None:
        self.directory = Path(directory).expanduser()
        self.directory.mkdir(parents=True, exist_ok=True)
        self.max_bytes = max_bytes  # validated by the property setter
        self.hits = 0
        self.exact_hits = 0
        self.reuse_hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0
        self.lru_evictions = 0
        self.row_hits = 0
        self.row_misses = 0
        self._events: Optional["Counter"] = None

    def attach_telemetry(self, telemetry: Optional["Telemetry"]) -> None:
        """Mirror counter events onto ``repro_cache_events_total``.

        The plain integer counters above stay authoritative (their
        values and the ``hits == exact_hits + reuse_hits`` invariant are
        pinned by tests); attaching an enabled
        :class:`repro.telemetry.Telemetry` handle additionally emits one
        labelled registry increment per event so the cache shows up in
        the Prometheus exposition.  A ``None`` or disabled handle is a
        no-op — the unattached fast path is a single ``is None`` check.
        """
        if telemetry is None or not telemetry.enabled:
            return
        self._events = telemetry.registry.counter(
            "repro_cache_events_total",
            "Operator cache events (hit/miss/store/eviction) by type.")

    def _event(self, event: str) -> None:
        if self._events is not None:
            self._events.inc(1.0, event=event)

    @property
    def max_bytes(self) -> Optional[int]:
        """Byte cap for stored entries (``None`` = unbounded).

        Validated on every assignment — late updates (the
        :func:`get_operator_cache` registry and the
        ``cache_max_bytes=`` pipeline parameter reach existing
        instances) must not smuggle in a cap that would evict the whole
        directory on the next store.
        """
        return self._max_bytes

    @max_bytes.setter
    def max_bytes(self, value: Optional[int]) -> None:
        if value is not None and value <= 0:
            raise ValueError(f"max_bytes must be positive, got {value}")
        self._max_bytes = value

    # ------------------------------------------------------------------ #
    def key_for_fields(self, graph: Graph, fields: Dict[str, object]) -> str:
        """Content-addressed key for one operator configuration.

        ``fields`` is the mapping produced by
        :meth:`repro.config.SimRankConfig.cache_key_fields` — the single
        derivation of the key tuple.  The cache only *hashes*: it never
        decides what enters the key.  A field set that drifts from
        :data:`repro.config.CACHE_KEY_FIELDS` is rejected so the two
        modules cannot silently disagree.
        """
        if set(fields) != set(CACHE_KEY_FIELDS):
            raise ValueError(
                f"cache key fields must be exactly {sorted(CACHE_KEY_FIELDS)}, "
                f"got {sorted(fields)}")
        hashed = dict(fields)
        if hashed.get("dtype") is None:
            # float64 is encoded as ``dtype: None`` by
            # ``cache_key_fields`` and *omitted* from the hashed payload,
            # so float64 keys are byte-identical to the pre-dtype key
            # format: every operator cached before the dtype field
            # existed stays warm.
            del hashed["dtype"]
        return payload_digest({
            "version": CACHE_FORMAT_VERSION,
            "graph": graph_fingerprint(graph),
            **hashed,
        })

    def key_for(self, graph: Graph, *, method: str, decay: float,
                epsilon: Optional[float], top_k: Optional[int],
                row_normalize: bool, backend: Optional[str],
                dtype: Optional[str] = None) -> str:
        """Keyword-argument form of :meth:`key_for_fields` (same key).

        ``dtype`` uses the key-field encoding: ``None`` for float64 (the
        reference precision, omitted from the hash), the dtype name
        otherwise.
        """
        return self.key_for_fields(graph, {
            "method": method,
            "decay": decay,
            "epsilon": epsilon,
            "top_k": top_k,
            "row_normalize": row_normalize,
            "backend": backend,
            "dtype": dtype,
        })

    def delta_key_for(self, base_fingerprint: str, delta_hash: str,
                      fields: Dict[str, object]) -> str:
        """Content-addressed key for a delta-chained (repaired) entry.

        Dynamic repairs (:mod:`repro.dynamic`) key their snapshots off
        the *base* graph fingerprint plus the update batch's content
        hash (:meth:`repro.graphs.delta.UpdateBatch.content_hash`)
        instead of the updated graph's fingerprint, so a process that
        holds the base graph and the delta can address the repaired
        operator without materialising the updated CSR first.  The
        parameter fields are the same
        :meth:`repro.config.SimRankConfig.cache_key_fields` mapping the
        plain key uses — rejected on drift, hashed through the shared
        :func:`repro.graphs.fingerprint.payload_digest` path.
        """
        if set(fields) != set(CACHE_KEY_FIELDS):
            raise ValueError(
                f"cache key fields must be exactly {sorted(CACHE_KEY_FIELDS)}, "
                f"got {sorted(fields)}")
        hashed = dict(fields)
        if hashed.get("dtype") is None:
            del hashed["dtype"]
        return payload_digest({
            "version": CACHE_FORMAT_VERSION,
            "base": base_fingerprint,
            "delta": delta_hash,
            **hashed,
        })

    def lookup_delta(self, base_fingerprint: str, delta_hash: str,
                     fields: Dict[str, object]
                     ) -> Optional["SimRankOperator"]:
        """Load the repaired operator chained off ``base + delta``.

        Metadata is verified against ``fields`` exactly as for plain
        exact-key hits; a hit counts as an ``exact_hit`` and bumps the
        LRU clock, a miss (or a corrupt/stale file, evicted) counts as a
        miss.
        """
        key = self.delta_key_for(base_fingerprint, delta_hash, fields)
        expect = {name: value for name, value in fields.items()
                  if name != "dtype" or value is not None}
        return self.load(key, expect=expect)

    def store_delta(self, base_fingerprint: str, delta_hash: str,
                    fields: Dict[str, object],
                    operator: "SimRankOperator", *,
                    fingerprint: Optional[str] = None) -> Path:
        """Persist a repaired operator under its delta-chained key.

        ``fingerprint`` is the *updated* graph's fingerprint — recorded
        in the entry metadata, so besides the chain addressing the entry
        also joins the ordinary reuse scan (and row serving) for any
        later request on the updated graph: a repaired operator
        satisfies the same ``(1−c)·ε`` contract as a fresh one.
        """
        key = self.delta_key_for(base_fingerprint, delta_hash, fields)
        return self.store(key, operator, fingerprint=fingerprint)

    def path_for(self, key: str) -> Path:
        return self.directory / f"{_FILE_PREFIX}{key}.npz"

    def __len__(self) -> int:
        return sum(1 for path in self.directory.glob(f"{_FILE_PREFIX}*.npz"))

    def clear(self) -> int:
        """Delete every cache entry; returns the number removed."""
        removed = 0
        for path in self.directory.glob(f"{_FILE_PREFIX}*.npz"):
            path.unlink()
            removed += 1
        self._index_path.unlink(missing_ok=True)
        return removed

    # ------------------------------------------------------------------ #
    # Sidecar index (LRU clock + reuse parameters)
    # ------------------------------------------------------------------ #
    @property
    def _index_path(self) -> Path:
        return self.directory / _INDEX_NAME

    def _load_index(self) -> dict:
        try:
            index = json.loads(self._index_path.read_text())
            if (not isinstance(index, dict)
                    or not isinstance(index.get("entries"), dict)):
                raise ValueError("malformed index")
        except Exception:
            index = {"version": CACHE_FORMAT_VERSION, "clock": 0, "entries": {}}
        return index

    def _save_index(self, index: dict) -> None:
        temp_path = self._index_path.with_name(
            self._index_path.name + f".tmp{os.getpid()}")
        try:
            temp_path.write_text(json.dumps(index, sort_keys=True))
            os.replace(temp_path, self._index_path)
        finally:
            temp_path.unlink(missing_ok=True)

    def _key_of_path(self, path: Path) -> str:
        return path.name[len(_FILE_PREFIX):-len(".npz")]

    def _sync_index(self, index: dict) -> dict:
        """Reconcile the index with the directory contents.

        Entries whose file disappeared are dropped; files the index does
        not know (written by an older revision or another process) are
        adopted by reading their embedded metadata, so LRU accounting and
        the reuse scan always see the whole directory.
        """
        entries = index["entries"]
        on_disk = {self._key_of_path(path): path
                   for path in self.directory.glob(f"{_FILE_PREFIX}*.npz")}
        for key in [key for key in entries if key not in on_disk]:
            del entries[key]
        for key, path in on_disk.items():
            if key in entries:
                continue
            try:
                with np.load(path, allow_pickle=False) as payload:
                    meta = json.loads(str(payload["meta"]))
            except Exception:
                continue  # unreadable; the exact-load path will evict it
            entries[key] = {
                "fingerprint": meta.get("fingerprint"),
                "method": meta.get("method"),
                "decay": meta.get("decay"),
                "epsilon": meta.get("epsilon"),
                "top_k": meta.get("top_k"),
                "row_normalize": bool(meta.get("row_normalize", False)),
                "backend": meta.get("backend"),
                "dtype": meta.get("dtype"),
                "bytes": path.stat().st_size,
                "last_used": 0,
            }
        return index

    def _touch(self, index: dict, key: str) -> None:
        index["clock"] = int(index.get("clock", 0)) + 1
        if key in index["entries"]:
            index["entries"][key]["last_used"] = index["clock"]

    def _drop_entry(self, key: str) -> None:
        index = self._load_index()
        if key in index["entries"]:
            del index["entries"][key]
            self._save_index(index)

    def _enforce_budget(self, index: dict, protect: str) -> None:
        """Evict LRU entries until the byte cap is met (``protect`` stays)."""
        if self.max_bytes is None:
            return
        entries = index["entries"]
        total = sum(int(entry.get("bytes", 0)) for entry in entries.values())
        while total > self.max_bytes:
            victims = [key for key in entries if key != protect]
            if not victims:
                break
            victim = min(victims,
                         key=lambda key: int(entries[key].get("last_used", 0)))
            total -= int(entries[victim].get("bytes", 0))
            self.path_for(victim).unlink(missing_ok=True)
            del entries[victim]
            self.lru_evictions += 1
            self._event("lru_eviction")

    # ------------------------------------------------------------------ #
    # Load / store
    # ------------------------------------------------------------------ #
    def _load(self, key: str, *, expect: Optional[dict] = None
              ) -> Optional["SimRankOperator"]:
        """Deserialize the entry under ``key`` without touching counters.

        Corrupt, stale-format or mismatched files are evicted (deleted and
        counted in ``evictions``); the caller decides hit/miss accounting.
        """
        from repro.simrank.topk import SimRankOperator

        path = self.path_for(key)
        if not path.exists():
            return None
        try:
            with np.load(path, allow_pickle=False) as payload:
                meta = json.loads(str(payload["meta"]))
                if meta.get("version") != CACHE_FORMAT_VERSION:
                    raise ValueError(
                        f"cache format version {meta.get('version')} != "
                        f"{CACHE_FORMAT_VERSION}")
                for field, expected in (expect or {}).items():
                    if meta.get(field) != expected:
                        raise ValueError(
                            f"metadata mismatch for {field!r}: "
                            f"{meta.get(field)!r} != {expected!r}")
                shape = tuple(int(side) for side in payload["shape"])
                matrix = sp.csr_matrix(
                    (payload["data"], payload["indices"], payload["indptr"]),
                    shape=shape)
                matrix.check_format(full_check=True)
        except Exception:
            # Truncated, corrupted, stale-format or mismatched entry: evict
            # so the caller recomputes and overwrites with a fresh file.
            self.evictions += 1
            self._event("eviction")
            path.unlink(missing_ok=True)
            self._drop_entry(key)
            return None
        return SimRankOperator(
            matrix=matrix,
            method=str(meta["method"]),
            decay=float(meta["decay"]),
            epsilon=None if meta["epsilon"] is None else float(meta["epsilon"]),
            top_k=None if meta["top_k"] is None else int(meta["top_k"]),
            precompute_seconds=0.0,
            backend=meta.get("backend"),
            cache_hit=True,
            row_normalize=bool(meta.get("row_normalize", False)),
        )

    def load(self, key: str, *, expect: Optional[dict] = None
             ) -> Optional["SimRankOperator"]:
        """Load the operator stored under ``key``, or ``None`` on a miss.

        ``expect`` maps metadata field names to required values (the
        resolved request parameters); a mismatch — as well as a version
        mismatch or any deserialisation failure — evicts the file and
        counts as a miss.  Exact-key hits bump the LRU clock.
        """
        operator = self._load(key, expect=expect)
        if operator is None:
            self.misses += 1
            self._event("miss")
            return None
        self.hits += 1
        self.exact_hits += 1
        self._event("exact_hit")
        index = self._load_index()
        self._touch(index, key)
        self._save_index(index)
        return operator

    # ------------------------------------------------------------------ #
    # Cross-ε / cross-k reuse
    # ------------------------------------------------------------------ #
    @staticmethod
    def _can_serve(entry: dict, *, fingerprint: str, method: str,
                   decay: float, epsilon: float, top_k: Optional[int],
                   row_normalize: bool, dtype: Optional[str] = None) -> bool:
        """Whether a stored entry dominates the requested contract.

        Domination is directional by construction: a tighter ``ε′ ≤ ε``
        and a larger ``k′ ≥ k`` can be re-pruned down to the request; the
        reverse never qualifies.  The normalisation flag must match the
        request (the keyed contract — raw and normalised operators never
        substitute for each other); re-pruning a normalised entry to a
        smaller ``k`` is sound because per-row scaling preserves score
        ranking.  A normalised *full-matrix* entry cannot be
        floor-re-pruned (its raw magnitudes are gone), so it only serves
        a request at the same ``ε``.
        """
        if entry.get("fingerprint") != fingerprint:
            return False
        if entry.get("method") != "localpush" or method != "localpush":
            return False
        if entry.get("decay") != decay:
            return False
        if bool(entry.get("row_normalize", False)) != row_normalize:
            return False
        # Precision is part of the contract: a float32 entry never
        # serves a float64 request or vice versa.  Entries written
        # before the dtype field existed carry no marker and are float64
        # by construction (``entry.get`` → ``None`` ≡ float64).
        if entry.get("dtype") != dtype:
            return False
        candidate_epsilon = entry.get("epsilon")
        if candidate_epsilon is None or candidate_epsilon > epsilon:
            return False
        candidate_k = entry.get("top_k")
        if top_k is None:
            if candidate_k is not None:
                return False
            return not row_normalize or candidate_epsilon == epsilon
        return candidate_k is None or candidate_k >= top_k

    def _reprune(self, candidate: "SimRankOperator", *, epsilon: float,
                 top_k: Optional[int], row_normalize: bool) -> sp.csr_matrix:
        """Re-prune a dominating entry down to the requested contract."""
        from repro.graphs.sparse import sparse_row_normalize, top_k_per_row

        matrix = candidate.matrix
        if top_k is not None:
            if candidate.top_k is None or candidate.top_k > top_k:
                matrix = top_k_per_row(matrix, top_k, keep_diagonal=True)
                if row_normalize:
                    # Per-row scaling preserved the ranking, so the pruned
                    # support is exact; restore the rows-sum-to-one
                    # contract over it.
                    matrix = sparse_row_normalize(matrix)
        elif (not row_normalize and candidate.epsilon is not None
              and candidate.epsilon < epsilon):
            matrix = _floor_prune(matrix, epsilon / 10.0)
        matrix.sort_indices()
        return matrix

    def lookup(self, graph: Graph, *, method: str, decay: float,
               epsilon: Optional[float], top_k: Optional[int],
               row_normalize: bool, backend: Optional[str],
               dtype: Optional[str] = None,
               fingerprint: Optional[str] = None
               ) -> Optional["SimRankOperator"]:
        """Serve a request from the cache, by exact key or by reuse.

        The exact key is tried first (an ``exact_hit``).  On a miss, if
        the request is a LocalPush operator, the index is scanned for an
        entry computed at a tighter ``ε′ ≤ ε`` with ``k′ ≥ k`` on the
        same graph/decay; the closest dominating entry (largest ``ε′``,
        then smallest sufficient ``k′``) is re-pruned to the requested
        contract and served as a ``reuse_hit``.  Anything else is a miss.
        """
        key = self.key_for(graph, method=method, decay=decay, epsilon=epsilon,
                           top_k=top_k, row_normalize=row_normalize,
                           backend=backend, dtype=dtype)
        expect: Dict[str, object] = {
            "method": method, "decay": decay, "epsilon": epsilon,
            "top_k": top_k, "backend": backend,
            "row_normalize": row_normalize}
        if dtype is not None:
            # float64 requests skip the check so pre-dtype entries (no
            # marker in their metadata) keep serving them.
            expect["dtype"] = dtype
        exact = self._load(key, expect=expect)
        if exact is not None:
            self.hits += 1
            self.exact_hits += 1
            self._event("exact_hit")
            index = self._load_index()
            self._touch(index, key)
            self._save_index(index)
            return exact

        if method == "localpush" and epsilon is not None:
            index = self._sync_index(self._load_index())
            fingerprint = fingerprint or graph_fingerprint(graph)
            candidates = [
                (candidate_key, entry)
                for candidate_key, entry in index["entries"].items()
                if self._can_serve(entry, fingerprint=fingerprint,
                                   method=method, decay=decay,
                                   epsilon=epsilon, top_k=top_k,
                                   row_normalize=row_normalize,
                                   dtype=dtype)
            ]
            # Closest dominating entry first: largest ε′ (least
            # over-computation), then smallest sufficient k′ (least to
            # load and re-prune), then most recently used.
            candidates.sort(key=lambda item: (
                -float(item[1]["epsilon"]),
                float("inf") if item[1]["top_k"] is None else item[1]["top_k"],
                -int(item[1].get("last_used", 0))))
            for candidate_key, entry in candidates:
                candidate = self._load(candidate_key)
                if candidate is None:
                    continue  # corrupt on disk; evicted, try the next
                matrix = self._reprune(candidate, epsilon=epsilon,
                                       top_k=top_k,
                                       row_normalize=row_normalize)
                self.hits += 1
                self.reuse_hits += 1
                self._event("reuse_hit")
                self._touch(index, candidate_key)
                self._save_index(index)
                from repro.simrank.topk import SimRankOperator

                return SimRankOperator(
                    matrix=matrix,
                    method=method,
                    decay=decay,
                    epsilon=epsilon,
                    top_k=top_k,
                    precompute_seconds=0.0,
                    backend=candidate.backend,
                    cache_hit=True,
                    row_normalize=row_normalize,
                    reuse_source_epsilon=candidate.epsilon,
                    reuse_source_top_k=candidate.top_k,
                )

        self.misses += 1
        self._event("miss")
        return None

    def lookup_row(self, graph: Graph, source: int, *, decay: float,
                   epsilon: float, top_k: Optional[int],
                   row_normalize: bool, dtype: Optional[str] = None,
                   fingerprint: Optional[str] = None
                   ) -> Optional[Tuple[sp.csr_matrix, float]]:
        """Serve one row of a LocalPush operator from any dominating entry.

        A cached all-pairs entry answers any single-source request
        without recompute: the index is scanned with the same dominance
        relation as :meth:`lookup` (same graph fingerprint, decay and
        normalisation flag; ``ε′ ≤ ε``; ``k′ ≥ k``), row ``source`` of
        the closest dominating entry is sliced out and re-pruned to the
        requested contract with the exact :meth:`_reprune` semantics
        (``top_k_per_row(..., keep_diagonal=True)`` / ``ε/10`` floor /
        re-normalisation), applied to the single row.

        Returns ``(row, entry_epsilon)`` — the ``1×n`` CSR row and the
        ``ε′`` the stored entry was computed at (the error bound the
        answer actually satisfies) — or ``None`` on a miss.  Counted in
        ``row_hits``/``row_misses``, never in the operator counters.
        """
        import dataclasses

        n = graph.num_nodes
        if not 0 <= int(source) < n:
            raise SimRankError(
                f"source node {source} out of range for a graph "
                f"with {n} nodes")
        index = self._sync_index(self._load_index())
        fingerprint = fingerprint or graph_fingerprint(graph)
        candidates = [
            (candidate_key, entry)
            for candidate_key, entry in index["entries"].items()
            if self._can_serve(entry, fingerprint=fingerprint,
                               method="localpush", decay=decay,
                               epsilon=epsilon, top_k=top_k,
                               row_normalize=row_normalize, dtype=dtype)
        ]
        candidates.sort(key=lambda item: (
            -float(item[1]["epsilon"]),
            float("inf") if item[1]["top_k"] is None else item[1]["top_k"],
            -int(item[1].get("last_used", 0))))
        for candidate_key, entry in candidates:
            candidate = self._load(candidate_key)
            if candidate is None:
                continue  # corrupt on disk; evicted, try the next
            # Embed the sliced row back at its original index so the
            # shared re-prune semantics (keep_diagonal targets column
            # ``source``) apply unchanged; every re-prune step is
            # row-independent, so this equals slicing a fully re-pruned
            # operator at O(row) cost instead of O(nnz).
            sliced = sp.csr_matrix(candidate.matrix).getrow(int(source))
            indptr = np.zeros(n + 1, dtype=sliced.indptr.dtype)
            indptr[int(source) + 1:] = sliced.nnz
            embedded = sp.csr_matrix(
                (sliced.data, sliced.indices, indptr), shape=(n, n))
            matrix = self._reprune(
                dataclasses.replace(candidate, matrix=embedded),
                epsilon=epsilon, top_k=top_k, row_normalize=row_normalize)
            self.row_hits += 1
            self._event("row_hit")
            self._touch(index, candidate_key)
            self._save_index(index)
            return matrix.getrow(int(source)), float(entry["epsilon"])
        self.row_misses += 1
        self._event("row_miss")
        return None

    # ------------------------------------------------------------------ #
    def store(self, key: str, operator: "SimRankOperator", *,
              fingerprint: Optional[str] = None) -> Path:
        """Atomically persist ``operator`` under ``key``.

        ``fingerprint`` (the graph fingerprint) is recorded in the entry
        metadata so the reuse scan can match it; without it the entry
        still serves exact-key hits but never reuse.  Storing may trigger
        LRU eviction of other entries when a byte cap is configured.
        """
        matrix = sp.csr_matrix(operator.matrix)
        # Key-field encoding: float64 (the reference precision) is
        # recorded as None, so pre-dtype entries and float64 entries are
        # indistinguishable — which is correct, they are the same thing.
        dtype = "float32" if matrix.dtype == np.float32 else None
        meta = json.dumps({
            "version": CACHE_FORMAT_VERSION,
            "fingerprint": fingerprint,
            "method": operator.method,
            "decay": operator.decay,
            "epsilon": operator.epsilon,
            "top_k": operator.top_k,
            "backend": operator.backend,
            "row_normalize": operator.row_normalize,
            "dtype": dtype,
            "precompute_seconds": operator.precompute_seconds,
        })
        path = self.path_for(key)
        temp_path = path.with_name(path.name + f".tmp{os.getpid()}")
        try:
            with open(temp_path, "wb") as handle:
                np.savez_compressed(
                    handle,
                    data=matrix.data,
                    indices=matrix.indices,
                    indptr=matrix.indptr,
                    shape=np.asarray(matrix.shape, dtype=np.int64),
                    meta=np.asarray(meta),
                )
            os.replace(temp_path, path)
        finally:
            temp_path.unlink(missing_ok=True)
        self.stores += 1
        self._event("store")

        index = self._sync_index(self._load_index())
        index["entries"][key] = {
            "fingerprint": fingerprint,
            "method": operator.method,
            "decay": operator.decay,
            "epsilon": operator.epsilon,
            "top_k": operator.top_k,
            "row_normalize": operator.row_normalize,
            "backend": operator.backend,
            "dtype": dtype,
            "bytes": path.stat().st_size,
            "last_used": 0,
        }
        self._touch(index, key)
        self._enforce_budget(index, protect=key)
        self._save_index(index)
        return path

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"OperatorCache({str(self.directory)!r}, hits={self.hits} "
                f"(exact={self.exact_hits}, reuse={self.reuse_hits}), "
                f"misses={self.misses}, stores={self.stores}, "
                f"rows={self.row_hits}/{self.row_hits + self.row_misses}, "
                f"evictions={self.evictions}, "
                f"lru_evictions={self.lru_evictions}, "
                f"max_bytes={self.max_bytes})")


__all__ = ["OperatorCache", "get_operator_cache", "graph_fingerprint",
           "CACHE_FORMAT_VERSION"]
