"""Pairwise random-walk quantities used in the paper's theory section.

These utilities exist to *verify* the paper's claims rather than to run the
model:

* :func:`pairwise_meeting_probability` computes
  ``↔P(u, v | t^{2ℓ}) = Σ_w p(w | u, ℓ) · p(w | v, ℓ)`` (Definition III.1).
* :func:`pairwise_walk_series` sums ``Σ_ℓ c^ℓ ↔P(u, v | t^{2ℓ})`` and, per
  Theorem III.2, equals the linearized SimRank score.
* :func:`homophily_probability` evaluates the closed form
  ``H_p^ℓ = (2p² − 2p + 1)^ℓ`` of Corollary III.3 for the probability that
  the two endpoints of a length-``2ℓ`` tour share a label under
  heterophily extent ``p``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimRankError
from repro.graphs.graph import Graph
from repro.graphs.normalize import row_normalize


def walk_distribution(graph: Graph, node: int, length: int) -> np.ndarray:
    """Distribution of an unbiased ``length``-step random walk from ``node``."""
    if length < 0:
        raise SimRankError(f"length must be non-negative, got {length}")
    transition = row_normalize(graph.adjacency)
    state = np.zeros(graph.num_nodes)
    state[node] = 1.0
    for _ in range(length):
        state = transition.T @ state
    return state


def pairwise_meeting_probability(graph: Graph, u: int, v: int, length: int) -> float:
    """``↔P(u, v | t^{2ℓ})`` — both walks of length ``ℓ`` end at the same node."""
    p_u = walk_distribution(graph, u, length)
    p_v = walk_distribution(graph, v, length)
    return float(np.dot(p_u, p_v))


def pairwise_walk_series(graph: Graph, u: int, v: int, *, decay: float = 0.6,
                         max_length: int = 15) -> float:
    """``Σ_{ℓ=1}^{L} c^ℓ ↔P(u, v | t^{2ℓ})`` (Theorem III.2 right-hand side)."""
    if not 0.0 < decay < 1.0:
        raise SimRankError(f"decay must be in (0, 1), got {decay}")
    total = 1.0 if u == v else 0.0
    for length in range(1, max_length + 1):
        total += decay**length * pairwise_meeting_probability(graph, u, v, length)
    return total


def homophily_probability(p: float, length: int) -> float:
    """Closed form ``H_p^ℓ = (2p² − 2p + 1)^ℓ`` from Corollary III.3.

    ``p`` is the heterophily extent (probability that a neighbour carries a
    different label) and ``length`` is the half tour length ``ℓ``.
    """
    if not 0.0 <= p <= 1.0:
        raise SimRankError(f"heterophily extent p must be in [0, 1], got {p}")
    if length < 0:
        raise SimRankError(f"length must be non-negative, got {length}")
    return float((2.0 * p * p - 2.0 * p + 1.0) ** length)


def simulate_tour_homophily(p: float, length: int, *, num_samples: int = 20000,
                            seed: int = 0) -> float:
    """Monte-Carlo estimate of the Corollary III.3 recursion.

    The corollary models the endpoints of a length-``2ℓ`` tour as homophilic
    when, at every level of the tour, the two sides either both keep or both
    flip the label (probability ``p² + (1 − p)²`` per level, independently
    across levels).  This simulation draws per-level flips for both sides
    and reports the fraction of samples satisfying that level-wise agreement,
    which converges to the closed form ``(2p² − 2p + 1)^ℓ``.
    """
    rng = np.random.default_rng(seed)
    if length == 0:
        return 1.0
    flips_left = rng.random((num_samples, length)) < p
    flips_right = rng.random((num_samples, length)) < p
    agree_all_levels = np.all(flips_left == flips_right, axis=1)
    return float(np.mean(agree_all_levels))


__all__ = [
    "walk_distribution",
    "pairwise_meeting_probability",
    "pairwise_walk_series",
    "homophily_probability",
    "simulate_tour_homophily",
]
