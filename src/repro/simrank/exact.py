"""Dense reference SimRank computations for small graphs.

Both functions return dense ``(n, n)`` arrays and are intended for graphs of
up to a few thousand nodes: they are the ground truth against which the
LocalPush approximation (Algorithm 1) and the SIGMA aggregation operator are
validated.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.config import DEFAULT_DECAY
from repro.errors import SimRankError
from repro.graphs.graph import Graph
from repro.graphs.normalize import column_normalize


def _check_decay(decay: float) -> float:
    if not 0.0 < decay < 1.0:
        raise SimRankError(f"decay factor c must be in (0, 1), got {decay}")
    return float(decay)


def exact_simrank(graph: Graph, *, decay: float = DEFAULT_DECAY,
                  num_iterations: int = 20, tolerance: float = 1e-9) -> np.ndarray:
    """Classic SimRank (Eq. (2) of the paper) by power iteration.

    Iterates ``S ← c · Wᵀ S W`` (with ``W = A D⁻¹`` column-normalised) and
    resets the diagonal to one after every step.  The iteration error decays
    as ``c^k``, so 20 iterations are ample for ``c = 0.6``.

    Parameters
    ----------
    graph:
        The input graph.
    decay:
        SimRank decay factor ``c``.
    num_iterations:
        Maximum number of power iterations.
    tolerance:
        Early-exit threshold on the max-norm change between iterations.
    """
    decay = _check_decay(decay)
    if num_iterations < 1:
        raise SimRankError(f"num_iterations must be >= 1, got {num_iterations}")
    n = graph.num_nodes
    walk = column_normalize(graph.adjacency)  # W(u', u) = 1/|N(u)| for u' in N(u)
    scores = np.eye(n)
    walk_t = walk.T.tocsr()
    for _ in range(num_iterations):
        left = walk_t @ scores          # Wᵀ S
        updated = decay * (walk_t @ left.T).T  # (Wᵀ (Wᵀ Sᵀ))ᵀ = Wᵀ S W
        np.fill_diagonal(updated, 1.0)
        delta = np.max(np.abs(updated - scores))
        scores = updated
        if delta < tolerance:
            break
    return scores


def linearized_simrank(graph: Graph, *, decay: float = DEFAULT_DECAY,
                       num_iterations: int | None = None,
                       tolerance: float = 1e-6,
                       include_self: bool = True) -> np.ndarray:
    """Linearized SimRank: the pairwise-random-walk series of Theorem III.2.

    Computes ``S' = Σ_{ℓ=0}^{L} c^ℓ (W^ℓ)ᵀ W^ℓ`` where ``W = A D⁻¹`` holds
    single-step random-walk probabilities in its columns.  The ``ℓ = 0``
    (identity) term is included when ``include_self`` is true; dropping it
    yields exactly ``Σ_{ℓ≥1} c^ℓ ·↔P(u, v | t^{2ℓ})``.

    This series is the fixed point approximated by LocalPush (Algorithm 1)
    and the operator the SIGMA model aggregates with.

    Parameters
    ----------
    num_iterations:
        Number of series terms ``L``.  When ``None`` it is chosen so the
        truncation error ``c^{L+1} / (1 - c)`` falls below ``tolerance``.
    """
    decay = _check_decay(decay)
    n = graph.num_nodes
    walk = column_normalize(graph.adjacency)
    if num_iterations is None:
        num_iterations = max(1, int(np.ceil(np.log(tolerance * (1 - decay)) / np.log(decay))))
    scores = np.eye(n) if include_self else np.zeros((n, n))
    walk_power = np.eye(n)
    factor = 1.0
    for _ in range(num_iterations):
        # walk_power holds W^ℓ; its columns are ℓ-step walk distributions.
        walk_power = walk @ walk_power
        factor *= decay
        scores = scores + factor * (walk_power.T @ walk_power)
    return scores


__all__ = ["exact_simrank", "linearized_simrank", "DEFAULT_DECAY"]
