"""LocalPush approximation of SimRank (Algorithm 1 of the paper).

The algorithm maintains a residual matrix ``R`` (initialised to the
identity) and an estimate ``Ŝ`` (initialised to zero).  While some pair has
residual above ``(1 - c)·ε`` it moves that residual into the estimate and
pushes ``c``-scaled fractions of it to all neighbour pairs, scaled by the
receiving pair's degrees.  The fixed point of this process is the linearized
SimRank series ``Σ_ℓ c^ℓ (W^ℓ)ᵀ W^ℓ`` of Theorem III.2, and stopping at the
``(1 - c)·ε`` threshold yields ``‖Ŝ − S‖_max < ε`` (Lemma III.5).

Entries of the estimate below ``ε / 10`` are pruned, as in the paper, so the
result stays sparse with roughly ``O(n·d²/ε)`` entries rather than ``O(n²)``.

(engine, executor) selection
----------------------------
Two engines implement the push loop, and the batched one is further
parameterized by an *executor* strategy:

* the **dict engine** (below) — a per-pair queue over Python dicts, a
  direct transcription of Algorithm 1.  It is the correctness oracle for
  the equivalence tests, but the Python-level loop costs ``O(d²)``
  bytecode per push.
* the **unified core** (:func:`repro.simrank.engine.localpush_engine`) —
  frontier-batched rounds ``R ← R + c·Wᵀ F W`` with deterministic
  frontier sharding, optional streaming top-k pruning, and a pluggable
  executor: ``"serial"`` (in-thread), ``"thread"``
  (``ThreadPoolExecutor``) or ``"process"`` (process pool over
  shared-memory walk matrices).  All executors and worker counts
  produce bit-identical matrices.

The legacy ``backend=`` names are labels over this plan space and remain
accepted everywhere: ``"vectorized"`` ≡ ``(core, serial)``,
``"sharded"`` ≡ ``(core, thread)``, and ``backend="auto"`` resolves by
node count via :func:`resolve_backend` (``"dict"`` below
:data:`AUTO_BACKEND_MIN_NODES`, ``"sharded"`` from
:data:`AUTO_SHARDED_MIN_NODES` upward, ``"vectorized"`` in between).
Passing ``executor=`` explicitly forces the unified core with that
executor; :func:`resolve_execution` implements the combined resolution.

Both backends guarantee a strictly positive diagonal: SimRank defines
``S(u, u) = 1``, so even when ``ε`` is so large that the push threshold
``(1 - c)·ε ≥ 1`` suppresses every push, the initial diagonal residual is
folded back into the estimate rather than silently dropped.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, Literal, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.errors import SimRankError
from repro.graphs.graph import Graph
from repro.simrank.exact import DEFAULT_DECAY
from repro.utils.timer import Timer

Backend = Literal["dict", "vectorized", "sharded", "auto"]

ExecutorName = Literal["serial", "thread", "process", "auto"]

#: Node count above which ``backend="auto"`` switches to the vectorized
#: engine; below it the per-round sparse-matrix setup dominates and the
#: dict loop is just as fast.
AUTO_BACKEND_MIN_NODES = 256

#: Node count above which ``backend="auto"`` switches from the vectorized
#: to the sharded engine: push rounds become large enough that splitting
#: them across a worker pool (and streaming top-k pruning to bound memory)
#: pays for the shard setup.  Pinned by the backend-selection unit tests.
AUTO_SHARDED_MIN_NODES = 4096


def resolve_backend(backend: Backend, num_nodes: int) -> str:
    """Resolve ``"auto"`` to a concrete LocalPush engine for ``num_nodes``.

    The policy is a two-threshold ladder: ``"dict"`` below
    :data:`AUTO_BACKEND_MIN_NODES`, ``"vectorized"`` from there up to
    :data:`AUTO_SHARDED_MIN_NODES`, and ``"sharded"`` above.  Explicit
    backend names pass through unchanged.
    """
    if backend not in ("dict", "vectorized", "sharded", "auto"):
        raise SimRankError(f"unknown LocalPush backend {backend!r}")
    if backend != "auto":
        return backend
    if num_nodes >= AUTO_SHARDED_MIN_NODES:
        return "sharded"
    if num_nodes >= AUTO_BACKEND_MIN_NODES:
        return "vectorized"
    return "dict"


def resolve_execution(backend: Backend = "auto",
                      executor: Optional[ExecutorName] = None,
                      num_nodes: int = 0, *,
                      dtype: str = "float64") -> Tuple[str, Optional[str]]:
    """Resolve a ``(backend, executor)`` request to a concrete plan.

    Returns ``(backend_name, executor_name)`` where ``backend_name`` is
    the legacy engine-family label (``"dict"``, ``"vectorized"`` or
    ``"sharded"`` — used for result metadata and operator-cache keys) and
    ``executor_name`` is the unified-core executor (``"serial"``,
    ``"thread"`` or ``"process"``), or ``None`` for the dict engine.

    * With ``executor`` unset (or ``"auto"``), the legacy ladder applies:
      ``"dict"`` ↦ the reference engine, ``"vectorized"`` ↦
      ``(core, serial)``, ``"sharded"`` ↦ ``(core, thread)``, and
      ``"auto"`` resolves by node count first.
    * An explicit executor forces the unified core with that strategy.
      The backend label never depends on the executor — it is the named
      backend, or (under ``"auto"``) the node-count ladder's core family
      — so the operator-cache key, which includes the label, stays
      identical across executors (all core executors are bit-identical;
      the label is provenance, not semantics).
    * ``backend="dict"`` has no pluggable executor; combining it with an
      explicit executor is an error.
    * The dict reference engine is float64-only.  Under
      ``dtype="float32"`` the ``"auto"`` ladder skips its dict rung and
      resolves to ``(vectorized, serial)`` instead; naming
      ``backend="dict"`` explicitly with a non-float64 dtype is an
      error.
    """
    if backend not in ("dict", "vectorized", "sharded", "auto"):
        raise SimRankError(f"unknown LocalPush backend {backend!r}")
    if executor not in (None, "auto", "serial", "thread", "process"):
        raise SimRankError(f"unknown LocalPush executor {executor!r}")
    requested = None if executor in (None, "auto") else executor
    if backend == "dict":
        if requested is not None:
            raise SimRankError(
                "backend='dict' is the per-pair reference engine and has no "
                f"pluggable executor; got executor={requested!r}")
        if dtype != "float64":
            raise SimRankError(
                "backend='dict' is the float64 reference engine; "
                f"got dtype={dtype!r}")
        return "dict", None
    if requested is not None:
        if backend == "auto":
            ladder = resolve_backend("auto", num_nodes)
            backend = "sharded" if ladder == "sharded" else "vectorized"
        return backend, requested
    resolved = resolve_backend(backend, num_nodes)
    if resolved == "dict":
        if dtype != "float64":
            return "vectorized", "serial"
        return "dict", None
    if resolved == "vectorized":
        return "vectorized", "serial"
    return "sharded", "thread"


@dataclass
class LocalPushResult:
    """Output of :func:`localpush_simrank`.

    Attributes
    ----------
    matrix:
        Sparse ``(n, n)`` approximate SimRank matrix ``Ŝ``.
    num_pushes:
        Number of residual-push operations performed.
    num_residual_entries:
        Number of residual entries that remained below threshold at
        termination (an indicator of the frontier size).
    elapsed_seconds:
        Wall-clock time of the push loop.
    epsilon:
        The error threshold the run was configured with.
    decay:
        The decay factor ``c``.
    backend:
        Engine-family label of the plan that produced the result
        (``"dict"``, ``"vectorized"`` ≡ core/serial, or ``"sharded"`` ≡
        core/pooled).
    executor:
        Unified-core executor used (``"serial"``, ``"thread"`` or
        ``"process"``); ``None`` for the dict reference engine.
    num_rounds:
        Number of frontier rounds (unified core only; ``None`` for the
        per-pair reference engine).
    num_workers:
        Worker-pool size used (thread/process executors only).
    num_shards:
        Largest per-round shard count used (unified core only).
    kernel:
        Resolved round-arithmetic kernel of the unified core
        (``"scipy"``, ``"fused"`` or ``"numba"`` — never ``"auto"``);
        ``None`` for the dict reference engine.
    dtype:
        Working precision of the run (``"float64"`` or ``"float32"``).
    """

    matrix: sp.csr_matrix
    num_pushes: int
    num_residual_entries: int
    elapsed_seconds: float
    epsilon: float
    decay: float
    backend: str = "dict"
    executor: Optional[str] = None
    num_rounds: Optional[int] = None
    num_workers: Optional[int] = None
    num_shards: Optional[int] = None
    kernel: Optional[str] = None
    dtype: str = "float64"


def localpush_simrank(graph: Graph, *, decay: float = DEFAULT_DECAY,
                      epsilon: float = 0.1, prune: bool = True,
                      absorb_residual: bool = False,
                      max_pushes: int | None = None,
                      backend: Backend = "auto",
                      executor: Optional[ExecutorName] = None,
                      num_workers: int | None = None,
                      stream_top_k: int | None = None,
                      kernel: str = "auto",
                      dtype: str = "float64") -> LocalPushResult:
    """Run Algorithm 1 (LocalPush) and return the sparse approximation.

    Parameters
    ----------
    graph:
        Input graph.  Isolated nodes receive only their self-similarity.
    decay:
        SimRank decay factor ``c`` (paper default 0.6).
    epsilon:
        Max-norm error threshold ``ε``; the push loop stops once every
        residual is below ``(1 - c)·ε``.
    prune:
        Whether to drop estimate entries below ``ε / 10`` (line 6 of
        Algorithm 1).  Disable to validate the error guarantee exactly.
    absorb_residual:
        When true, leftover residual mass below the push threshold is added
        into the estimate before pruning.  This is a strict improvement of
        the approximation (each residual is a lower bound on the remaining
        contribution to its own entry) and keeps informative small scores
        that the plain algorithm would discard — the SIGMA aggregation
        operator uses this variant before its top-k pruning.
    max_pushes:
        Optional safety cap on the number of pushes; exceeding it raises
        :class:`SimRankError` (it indicates a mis-configured ε).  The
        vectorized backend counts absorbed frontier entries, the batched
        analogue of a per-pair push.
    backend:
        Legacy engine-family name: ``"dict"`` (per-pair reference loop),
        ``"vectorized"`` ≡ unified core with the serial executor,
        ``"sharded"`` ≡ unified core with a pooled executor, or
        ``"auto"`` (resolved by :func:`resolve_backend` on the node
        count).  All satisfy the same ``‖Ŝ − S‖_max < ε`` bound; see the
        module docstring.
    executor:
        Unified-core executor: ``"serial"``, ``"thread"`` or
        ``"process"`` (see :mod:`repro.simrank.engine`).  Passing one
        explicitly forces the unified core; the default (``None`` /
        ``"auto"``) follows the backend ladder.  Every executor and
        worker count produces a bit-identical matrix.
    num_workers:
        Worker-pool size for the thread/process executors; ignored by
        the serial executor and the dict engine.  Results are
        bit-identical across worker counts.
    stream_top_k:
        Prune the returned matrix to the ``k`` largest entries per row
        with ``top_k_per_row(..., keep_diagonal=True)`` semantics.  The
        unified core streams the prune into its push loop (bounded
        memory); the dict engine applies it post hoc — the result is the
        same either way, so the semantics do not depend on which engine
        the plan resolves to.
    kernel:
        Unified-core round arithmetic: ``"scipy"`` (historical CSR-object
        path), ``"fused"`` (raw-array kernel with reused workspaces),
        ``"numba"`` (JIT merge loop; silently falls back to ``"fused"``
        when numba is not importable) or ``"auto"`` (≡ ``"fused"``).
        Every kernel is bit-identical per dtype, so the choice is purely
        a speed knob (cache-key exempt); the dict engine ignores it.
    dtype:
        ``"float64"`` (default, the reference precision) or
        ``"float32"`` — an opt-in low-memory mode of the unified core
        with an adjusted error bound (see
        :func:`repro.simrank.kernels.float32_error_bound`).  The dict
        reference engine is float64-only: ``backend="auto"`` skips its
        dict rung under float32, and an explicit ``backend="dict"``
        with float32 is an error.
    """
    if not 0.0 < decay < 1.0:
        raise SimRankError(f"decay factor c must be in (0, 1), got {decay}")
    if epsilon <= 0.0:
        raise SimRankError(f"epsilon must be positive, got {epsilon}")
    if stream_top_k is not None and stream_top_k < 1:
        raise SimRankError(f"stream_top_k must be >= 1, got {stream_top_k}")
    backend_name, executor_name = resolve_execution(backend, executor,
                                                    graph.num_nodes,
                                                    dtype=dtype)
    if executor_name is not None:
        from repro.simrank.engine import localpush_engine

        return localpush_engine(
            graph, decay=decay, epsilon=epsilon, prune=prune,
            absorb_residual=absorb_residual, max_pushes=max_pushes,
            executor=executor_name, num_workers=num_workers,
            stream_top_k=stream_top_k, backend_label=backend_name,
            kernel=kernel, dtype=dtype)

    n = graph.num_nodes
    adjacency = graph.adjacency
    indptr, indices, weights = adjacency.indptr, adjacency.indices, adjacency.data
    # Weighted degrees (column sums == row sums for a symmetric adjacency),
    # matching the walk matrix W = A D⁻¹ of the dense references and the
    # vectorized backend; on 0/1 graphs this is the plain neighbour count.
    degrees = np.asarray(adjacency.sum(axis=0)).ravel()
    threshold = (1.0 - decay) * epsilon

    estimate: Dict[Tuple[int, int], float] = {}
    residual: Dict[Tuple[int, int], float] = {}
    queue: deque[Tuple[int, int]] = deque()
    queued: set[Tuple[int, int]] = set()

    for node in range(n):
        pair = (node, node)
        residual[pair] = 1.0
        if 1.0 > threshold:
            queue.append(pair)
            queued.add(pair)

    num_pushes = 0
    timer = Timer()
    timer.start()
    while queue:
        pair = queue.popleft()
        queued.discard(pair)
        value = residual.get(pair, 0.0)
        if value <= threshold:
            continue
        u, v = pair
        estimate[pair] = estimate.get(pair, 0.0) + value
        residual[pair] = 0.0
        num_pushes += 1
        if max_pushes is not None and num_pushes > max_pushes:
            raise SimRankError(
                f"LocalPush exceeded max_pushes={max_pushes}; "
                "epsilon is likely too small for this graph"
            )
        u_neighbors = indices[indptr[u]:indptr[u + 1]]
        v_neighbors = indices[indptr[v]:indptr[v + 1]]
        if u_neighbors.size == 0 or v_neighbors.size == 0:
            continue
        u_weights = weights[indptr[u]:indptr[u + 1]]
        v_weights = weights[indptr[v]:indptr[v + 1]]
        scaled = decay * value
        for u_next, u_weight in zip(u_neighbors, u_weights):
            walk_u = u_weight / degrees[u_next]      # W[u, u_next]
            for v_next, v_weight in zip(v_neighbors, v_weights):
                amount = scaled * walk_u * v_weight / degrees[v_next]
                next_pair = (int(u_next), int(v_next))
                new_value = residual.get(next_pair, 0.0) + amount
                residual[next_pair] = new_value
                if new_value > threshold and next_pair not in queued:
                    queue.append(next_pair)
                    queued.add(next_pair)
    elapsed = timer.stop()

    if absorb_residual:
        for pair, value in residual.items():
            if value > 0.0:
                estimate[pair] = estimate.get(pair, 0.0) + value

    # SimRank defines S(u, u) = 1, so every node must keep a positive
    # diagonal even when the threshold (1-c)·ε ≥ 1 suppresses all pushes:
    # fold the untouched diagonal residual back into the estimate.
    for node in range(n):
        pair = (node, node)
        if estimate.get(pair, 0.0) <= 0.0:
            value = residual.get(pair, 0.0)
            if value > 0.0:
                estimate[pair] = estimate.get(pair, 0.0) + value

    if prune:
        floor = epsilon / 10.0
        estimate = {pair: value for pair, value in estimate.items()
                    if value >= floor or pair[0] == pair[1]}

    matrix = _pairs_to_csr(estimate, n)
    if stream_top_k is not None:
        from repro.graphs.sparse import top_k_per_row

        matrix = top_k_per_row(matrix, stream_top_k, keep_diagonal=True)
    leftover = sum(1 for value in residual.values() if value > 0.0)
    return LocalPushResult(
        matrix=matrix,
        num_pushes=num_pushes,
        num_residual_entries=leftover,
        elapsed_seconds=elapsed,
        epsilon=epsilon,
        decay=decay,
    )


def finalize_estimate(estimate: sp.csr_matrix, residual: sp.csr_matrix, *,
                      epsilon: float, prune: bool) -> sp.csr_matrix:
    """Shared post-loop finalisation of the batched engines' estimates.

    Restores any missing diagonal from the untouched residual mass
    (SimRank defines ``S(u, u) = 1``, so every node keeps a positive
    diagonal even when the threshold ``(1-c)·ε ≥ 1`` suppressed all
    pushes) and applies the paper's ``ε / 10`` floor prune, never dropping
    the diagonal.  Kept in one place so the vectorized and sharded
    backends cannot drift apart in these semantics.
    """
    from repro.graphs.sparse import csr_row_indices

    diagonal = estimate.diagonal()
    missing = diagonal <= 0.0
    if missing.any():
        residual_diagonal = residual.diagonal()
        # The typed zero keeps float32 estimates float32 (a bare Python
        # 0.0 would promote the fill — and then the sum — to float64 on
        # pre-NEP-50 numpy).
        fill = np.where(missing, residual_diagonal,
                        residual_diagonal.dtype.type(0.0))
        estimate = (estimate + sp.diags(fill, format="csr")).tocsr()
    if prune:
        floor = epsilon / 10.0
        rows = csr_row_indices(estimate)
        keep = (estimate.data >= floor) | (rows == estimate.indices)
        estimate.data[~keep] = 0.0
        estimate.eliminate_zeros()
    estimate.sort_indices()
    return estimate


def _pairs_to_csr(entries: Dict[Tuple[int, int], float], n: int) -> sp.csr_matrix:
    if not entries:
        return sp.csr_matrix((n, n))
    rows = np.fromiter((pair[0] for pair in entries), dtype=np.int64, count=len(entries))
    cols = np.fromiter((pair[1] for pair in entries), dtype=np.int64, count=len(entries))
    data = np.fromiter(entries.values(), dtype=np.float64, count=len(entries))
    matrix = sp.coo_matrix((data, (rows, cols)), shape=(n, n)).tocsr()
    matrix.sort_indices()
    return matrix


__all__ = ["localpush_simrank", "LocalPushResult", "Backend",
           "ExecutorName", "resolve_backend", "resolve_execution",
           "finalize_estimate", "AUTO_BACKEND_MIN_NODES",
           "AUTO_SHARDED_MIN_NODES"]
