"""Wall-clock timing helpers used by the training and experiment harnesses.

The paper reports a *learning time* split into precomputation, aggregation
and total training (Table VII).  :class:`TimingBreakdown` mirrors that split
so experiments can report the same rows.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator


class Timer:
    """A restartable wall-clock timer.

    Examples
    --------
    >>> timer = Timer()
    >>> with timer:
    ...     _ = sum(range(1000))
    >>> timer.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._start: float | None = None

    def start(self) -> None:
        if self._start is not None:
            raise RuntimeError("Timer already running")
        self._start = time.perf_counter()

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError("Timer was not started")
        delta = time.perf_counter() - self._start
        self.elapsed += delta
        self._start = None
        return delta

    def reset(self) -> None:
        self.elapsed = 0.0
        self._start = None

    def __enter__(self) -> "Timer":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


@dataclass
class TimingBreakdown:
    """Accumulates named timing buckets (seconds).

    The canonical buckets used throughout the library are ``precompute``
    (SimRank / PPR matrix construction), ``aggregation`` (the global
    aggregation performed during forward/backward passes) and ``training``
    (everything inside the epoch loop, aggregation included).
    """

    buckets: Dict[str, float] = field(default_factory=dict)

    def add(self, name: str, seconds: float) -> None:
        self.buckets[name] = self.buckets.get(name, 0.0) + float(seconds)

    def get(self, name: str) -> float:
        return self.buckets.get(name, 0.0)

    @contextmanager
    def measure(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add(name, time.perf_counter() - start)

    @property
    def precompute(self) -> float:
        return self.get("precompute")

    @property
    def aggregation(self) -> float:
        return self.get("aggregation")

    @property
    def training(self) -> float:
        return self.get("training")

    @property
    def learning(self) -> float:
        """Total learning time as reported by the paper: precompute + training."""
        return self.precompute + self.training

    def merged_with(self, other: "TimingBreakdown") -> "TimingBreakdown":
        merged = TimingBreakdown(dict(self.buckets))
        for name, seconds in other.buckets.items():
            merged.add(name, seconds)
        return merged

    def as_dict(self) -> Dict[str, float]:
        return dict(self.buckets)


__all__ = ["Timer", "TimingBreakdown"]
