"""Small argument-validation helpers shared across the library."""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp


def check_positive(name: str, value: float, *, strict: bool = True) -> float:
    """Validate that ``value`` is positive (strictly by default)."""
    value = float(value)
    if strict and value <= 0:
        raise ValueError(f"{name} must be > 0, got {value}")
    if not strict and value < 0:
        raise ValueError(f"{name} must be >= 0, got {value}")
    return value


def check_fraction(name: str, value: float, *, inclusive: bool = True) -> float:
    """Validate that ``value`` lies in ``[0, 1]`` (or ``(0, 1)``)."""
    value = float(value)
    if inclusive:
        if not 0.0 <= value <= 1.0:
            raise ValueError(f"{name} must be in [0, 1], got {value}")
    else:
        if not 0.0 < value < 1.0:
            raise ValueError(f"{name} must be in (0, 1), got {value}")
    return value


def check_square(name: str, matrix: sp.spmatrix | np.ndarray) -> None:
    """Validate that ``matrix`` is square."""
    rows, cols = matrix.shape
    if rows != cols:
        raise ValueError(f"{name} must be square, got shape {matrix.shape}")


def check_probability_matrix(name: str, matrix: np.ndarray, *, axis: int = 1,
                             atol: float = 1e-6) -> None:
    """Validate that rows (or columns) of ``matrix`` sum to one."""
    sums = np.asarray(matrix).sum(axis=axis)
    if not np.allclose(sums, 1.0, atol=atol):
        raise ValueError(
            f"{name} rows must sum to 1 along axis {axis}; "
            f"min={sums.min():.6f} max={sums.max():.6f}"
        )


__all__ = [
    "check_positive",
    "check_fraction",
    "check_square",
    "check_probability_matrix",
]
