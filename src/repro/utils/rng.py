"""Deterministic random number handling.

Every stochastic component in the library accepts either an integer seed,
``None`` or an already-constructed :class:`numpy.random.Generator`.  Using
:func:`ensure_rng` at API boundaries keeps experiments reproducible while
letting callers share a generator across components when they want coupled
randomness.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

RngLike = Union[None, int, np.random.Generator]


def ensure_rng(seed: RngLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` for fresh OS entropy, an ``int`` for a deterministic
        generator, or an existing generator which is returned unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        return np.random.default_rng()
    if isinstance(seed, (int, np.integer)):
        return np.random.default_rng(int(seed))
    raise TypeError(
        f"seed must be None, an int or a numpy Generator, got {type(seed)!r}"
    )


def spawn_rngs(seed: RngLike, count: int) -> list[np.random.Generator]:
    """Create ``count`` independent generators derived from ``seed``.

    The generators are produced with :class:`numpy.random.SeedSequence`
    spawning so repeated experiment runs with the same master seed produce
    identical per-repeat streams.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        # Derive children deterministically from the generator's state.
        children: Sequence[int] = seed.integers(0, 2**32 - 1, size=count)
        return [np.random.default_rng(int(s)) for s in children]
    sequence = np.random.SeedSequence(seed)
    return [np.random.default_rng(s) for s in sequence.spawn(count)]


def seed_from(rng: np.random.Generator) -> int:
    """Draw a fresh integer seed from ``rng`` (useful for sub-components)."""
    return int(rng.integers(0, 2**31 - 1))


__all__ = ["RngLike", "ensure_rng", "spawn_rngs", "seed_from"]
