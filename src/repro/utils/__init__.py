"""Shared utilities: deterministic RNG handling, timers and validation."""

from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.timer import Timer, TimingBreakdown
from repro.utils.validation import (
    check_fraction,
    check_positive,
    check_probability_matrix,
    check_square,
)

__all__ = [
    "ensure_rng",
    "spawn_rngs",
    "Timer",
    "TimingBreakdown",
    "check_fraction",
    "check_positive",
    "check_probability_matrix",
    "check_square",
]
