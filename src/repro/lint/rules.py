"""The project-specific rules of :mod:`repro.lint`.

Each rule encodes one invariant the codebase otherwise enforces only by
review; the rule IDs, the invariants they protect and the pragma syntax
are catalogued in the package docstring (:mod:`repro.lint`).  Rules scope
themselves by *path shape* (``repro/config.py``, ``repro/experiments/``)
so fixture trees in the linter's own tests behave exactly like the real
tree.

All rules are purely syntactic (AST + import-alias resolution): they
never import the code under check, so they run on broken or
partially-refactored trees — the whole point of a refactor gate.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.lint import _ast_utils as A
from repro.lint.core import Finding, Project, Rule, SourceFile, register

# --------------------------------------------------------------------- #
# Shared scoping tables
# --------------------------------------------------------------------- #

#: Infrastructure modules of ``repro/experiments/`` — everything else in
#: that package is an experiment module (spec builder + reduction).
EXPERIMENT_INFRA = ("__init__.py", "common.py", "engine.py", "registry.py",
                    "runner.py", "store.py")

#: Modules that exist only as deprecated shims (PR 3); importing them
#: anywhere else reintroduces a dependency on a dead code path.
DEPRECATED_SHIM_MODULES = ("repro.simrank.localpush_vec",
                           "repro.simrank.sharded")

#: Files allowed to reference the shim modules: the shims themselves and
#: the package ``__init__`` that re-exports them for call compatibility.
SHIM_HOST_FILES = ("repro/simrank/localpush_vec.py",
                   "repro/simrank/sharded.py",
                   "repro/simrank/__init__.py")

#: The pre-config keyword-relay arguments (PR 4).  Passing one at a call
#: site is deprecated everywhere except inside the forwarding shims,
#: which declare a same-named parameter.
DEPRECATED_CALL_KWARGS = ("simrank_backend", "simrank_executor",
                          "simrank_workers", "simrank_cache_dir")

#: ``numpy.random`` module-level (global-state) functions.  The
#: ``default_rng`` / ``Generator`` / ``SeedSequence`` object API is the
#: sanctioned source of randomness.
NUMPY_GLOBAL_RANDOM = frozenset({
    "seed", "rand", "randn", "randint", "random", "random_sample", "ranf",
    "sample", "choice", "shuffle", "permutation", "normal", "uniform",
    "standard_normal", "binomial", "poisson", "beta", "gamma", "bytes",
    "get_state", "set_state",
})

#: The public import surface ``examples/`` and ``benchmarks/`` may use:
#: the top-level facade plus the package roots documented in ROADMAP
#: "Public API".  Deeper dotted paths are internals.
PUBLIC_SURFACE = frozenset({
    "repro", "repro.api", "repro.config", "repro.errors",
    "repro.experiments", "repro.datasets", "repro.graphs",
    "repro.serve", "repro.dynamic", "repro.telemetry",
})

#: Module prefixes an experiment *spec builder* may draw names from: the
#: declarative layer only.  A builder that needs the operator or model
#: layer is doing cell-runner work in the wrong place.
BUILDER_SURFACE_PREFIXES = ("repro.api", "repro.config", "repro.errors",
                            "repro.experiments", "repro.training.config",
                            "repro.datasets")


def _is_experiment_module(source: SourceFile) -> bool:
    segments = source.path.split("/")
    return (len(segments) >= 2 and segments[-2] == "experiments"
            and "repro" in segments
            and segments[-1] not in EXPERIMENT_INFRA)


def _experiment_registrations(source: SourceFile
                              ) -> List[Tuple[ast.Call, Optional[str]]]:
    """Every ``@experiment("name", ...)`` decorator call in the module.

    Returns ``(call_node, registered_name)`` pairs; the name is ``None``
    when it is not a string literal.
    """
    registrations: List[Tuple[ast.Call, Optional[str]]] = []
    if source.tree is None:
        return registrations
    for node in ast.walk(source.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for decorator in node.decorator_list:
            if not isinstance(decorator, ast.Call):
                continue
            if A.decorator_name(decorator).split(".")[-1] != "experiment":
                continue
            name: Optional[str] = None
            if decorator.args and isinstance(decorator.args[0], ast.Constant) \
                    and isinstance(decorator.args[0].value, str):
                name = decorator.args[0].value
            registrations.append((decorator, name))
    return registrations


def _registration_kwarg(call: ast.Call, keyword: str) -> Optional[ast.expr]:
    for kw in call.keywords:
        if kw.arg == keyword:
            return kw.value
    return None


def _module_function(tree: ast.AST, name: str) -> Optional[ast.AST]:
    if not isinstance(tree, ast.Module):
        return None
    for node in tree.body:
        if isinstance(node, A.FunctionNode) and node.name == name:
            return node
    return None


# --------------------------------------------------------------------- #
# R1 — cache-key completeness
# --------------------------------------------------------------------- #
@register
class CacheKeyCompleteness(Rule):
    """Every ``SimRankConfig`` field is keyed or explicitly exempted.

    The operator cache hashes exactly what
    ``SimRankConfig.cache_key_fields`` returns; a field added to the
    dataclass but not to the key (or to ``CACHE_KEY_EXEMPT``, with a
    justification) silently serves stale operators across configs — the
    exact failure class the single-derivation design of PR 4 exists to
    prevent.
    """

    id = "R1"
    name = "cache-key-completeness"
    description = ("every SimRankConfig field appears in cache_key_fields() "
                   "or in CACHE_KEY_EXEMPT")

    def check_file(self, source: SourceFile, project: Project
                   ) -> Iterator[Finding]:
        if not source.matches("repro/config.py") or source.tree is None:
            return
        config_class = A.class_def(source.tree, "SimRankConfig")
        if config_class is None:
            return
        fields = A.dataclass_fields(config_class)
        field_names = {name for name, _ in fields}

        exempt_node = A.module_assignment(source.tree, "CACHE_KEY_EXEMPT")
        exempt = A.string_elements(exempt_node) if exempt_node is not None else None
        if exempt is None:
            yield self.finding(
                source, config_class,
                "config module defines no CACHE_KEY_EXEMPT set; every "
                "SimRankConfig field must be keyed or explicitly exempted")
            exempt = []

        keyed = self._cache_key_dict_keys(config_class)
        if keyed is None:
            yield self.finding(
                source, config_class,
                "SimRankConfig.cache_key_fields must return a literal dict "
                "of key fields (the single cache-key derivation)")
            return

        for name, lineno in fields:
            if name not in keyed and name not in exempt:
                yield self.finding(
                    source, lineno,
                    f"SimRankConfig field '{name}' is neither returned by "
                    f"cache_key_fields() nor listed in CACHE_KEY_EXEMPT — "
                    f"cache entries would collide across '{name}' values")
        for name in sorted(set(keyed) & set(exempt)):
            yield self.finding(
                source, config_class,
                f"'{name}' is both cache-keyed and CACHE_KEY_EXEMPT; "
                f"remove it from one of the two")
        for name in sorted(set(exempt) - field_names):
            yield self.finding(
                source, config_class,
                f"CACHE_KEY_EXEMPT names '{name}', which is not a "
                f"SimRankConfig field (stale exemption)")

        declared_node = A.module_assignment(source.tree, "CACHE_KEY_FIELDS")
        declared = (A.string_elements(declared_node)
                    if declared_node is not None else None)
        if declared is not None and set(declared) != set(keyed):
            yield self.finding(
                source, declared_node,
                f"CACHE_KEY_FIELDS {sorted(declared)} does not match the "
                f"keys returned by cache_key_fields() {sorted(keyed)}")

    @staticmethod
    def _cache_key_dict_keys(config_class: ast.ClassDef
                             ) -> Optional[List[str]]:
        for node in config_class.body:
            if isinstance(node, A.FunctionNode) and node.name == "cache_key_fields":
                for child in ast.walk(node):
                    if isinstance(child, ast.Return) and isinstance(
                            child.value, ast.Dict):
                        keys: List[str] = []
                        for key in child.value.keys:
                            if not (isinstance(key, ast.Constant)
                                    and isinstance(key.value, str)):
                                return None
                            keys.append(key.value)
                        return keys
        return None


# --------------------------------------------------------------------- #
# R2 — frozen-config discipline
# --------------------------------------------------------------------- #
FROZEN_CONFIG_CLASSES = ("SimRankConfig", "ServeConfig", "DynamicConfig",
                         "TelemetryConfig", "RunSpec", "ExperimentSpec",
                         "ExperimentCell", "TrainConfig")


@register
class FrozenConfigDiscipline(Rule):
    """No mutation of the frozen config objects outside their modules.

    ``object.__setattr__`` on anything but ``self`` bypasses the frozen
    contract that makes configs safe to share, hash and cache-key; a
    plain attribute assignment on a value built from a config
    constructor would raise at runtime — the rule catches it before the
    code path is ever exercised.
    """

    id = "R2"
    name = "frozen-config-discipline"
    description = ("no attribute assignment / object.__setattr__ on config "
                   "objects outside their defining modules")

    def check_file(self, source: SourceFile, project: Project
                   ) -> Iterator[Finding]:
        if source.tree is None:
            return
        A.attach_parents(source.tree)
        defined_here = {
            node.name for node in ast.walk(source.tree)
            if isinstance(node, ast.ClassDef)}
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Call):
                yield from self._check_setattr(source, node)
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                yield from self._check_assignment(source, node, defined_here)

    def _check_setattr(self, source: SourceFile, node: ast.Call
                       ) -> Iterator[Finding]:
        if A.dotted_name(node.func) != "object.__setattr__":
            return
        if node.args and isinstance(node.args[0], ast.Name) \
                and node.args[0].id == "self":
            return  # the frozen dataclass's own __post_init__ idiom
        yield self.finding(
            source, node,
            "object.__setattr__ on a non-self target bypasses the frozen "
            "config contract; build a new object with with_overrides()")

    def _check_assignment(self, source: SourceFile, node: ast.AST,
                          defined_here: Set[str]) -> Iterator[Finding]:
        targets = (node.targets if isinstance(node, ast.Assign)
                   else [node.target])
        for target in targets:
            if not isinstance(target, ast.Attribute):
                continue
            root = target.value
            while isinstance(root, ast.Attribute):
                root = root.value
            if not isinstance(root, ast.Name) or root.id == "self":
                continue
            config_class = self._local_config_type(root, source)
            if config_class is None or config_class in defined_here:
                continue
            yield self.finding(
                source, node,
                f"attribute assignment on a {config_class} instance "
                f"('{root.id}'): configs are frozen — use "
                f"with_overrides() to derive a modified copy")

    @staticmethod
    def _local_config_type(name_node: ast.Name, source: SourceFile
                           ) -> Optional[str]:
        """The frozen-config class ``name_node`` was locally built from.

        Cheap flow-insensitive inference: the enclosing function (or the
        module body) assigned ``name = SimRankConfig(...)`` — or
        annotated ``name: SimRankConfig`` — somewhere.
        """
        scope = A.enclosing(name_node, *A.FunctionNode) or source.tree
        if scope is None:
            return None
        for node in ast.walk(scope):
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                callee = (A.dotted_name(node.value.func) or "").split(".")[-1]
                if callee in FROZEN_CONFIG_CLASSES and any(
                        isinstance(t, ast.Name) and t.id == name_node.id
                        for t in node.targets):
                    return callee
            elif isinstance(node, ast.AnnAssign) and isinstance(
                    node.target, ast.Name) and node.target.id == name_node.id:
                annotation = ast.unparse(node.annotation)
                for candidate in FROZEN_CONFIG_CLASSES:
                    if annotation.split(".")[-1] == candidate:
                        return candidate
        return None


# --------------------------------------------------------------------- #
# R3 — determinism in the bit-identical blast radius
# --------------------------------------------------------------------- #
#: Files whose entire contents sit inside the bit-identical-executor
#: guarantee (every executor × worker count must produce the same bytes).
DETERMINISM_SCOPED_FILES = ("repro/simrank/engine.py",
                            "repro/simrank/kernels.py",
                            "repro/experiments/engine.py",
                            "repro/serve/service.py",
                            "repro/dynamic/operator.py",
                            "repro/graphs/delta.py",
                            "repro/graphs/fingerprint.py",
                            # Telemetry instruments the scoped layers
                            # above, so it lives under the same clock
                            # discipline: monotonic reads only.
                            "repro/telemetry/tracing.py",
                            "repro/telemetry/metrics.py",
                            "repro/telemetry/runtime.py")


@register
class Determinism(Rule):
    """No global-state randomness / wall-clock ordering / set iteration
    where results are guaranteed bit-identical.

    ``repro/simrank/engine.py``, ``repro/experiments/engine.py`` and
    every registered cell runner promise identical output for every
    executor and worker count; global RNG state, ``time.time()`` and the
    hash-order iteration of a ``set`` all break that promise in ways a
    unit test only catches by luck.
    """

    id = "R3"
    name = "determinism"
    description = ("no np.random globals, random.* module functions, "
                   "time.time() or bare set iteration in the bit-identical "
                   "engines and registered cell runners")

    def check_file(self, source: SourceFile, project: Project
                   ) -> Iterator[Finding]:
        if source.tree is None:
            return
        if source.matches(*DETERMINISM_SCOPED_FILES):
            yield from self._check_scope(source, source.tree)
        elif _is_experiment_module(source):
            for call, _ in _experiment_registrations(source):
                runner = _registration_kwarg(call, "cell")
                if isinstance(runner, ast.Name):
                    function = _module_function(source.tree, runner.id)
                    if function is not None:
                        yield from self._check_scope(source, function)

    def _check_scope(self, source: SourceFile, scope: ast.AST
                     ) -> Iterator[Finding]:
        aliases = A.import_aliases(source.tree)  # type: ignore[arg-type]
        for node in ast.walk(scope):
            if isinstance(node, ast.Call):
                yield from self._check_call(source, node, aliases)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                if self._is_set_expression(node.iter, aliases):
                    yield self.finding(
                        source, node,
                        "iteration over a set has hash-dependent order; "
                        "sort it (sorted(...)) before iterating")

    def _check_call(self, source: SourceFile, node: ast.Call,
                    aliases: Dict[str, str]) -> Iterator[Finding]:
        resolved = A.resolve_call_name(node.func, aliases) or ""
        parts = resolved.split(".")
        if parts[0] in ("numpy", "np") and len(parts) >= 3 \
                and parts[1] == "random" and parts[-1] in NUMPY_GLOBAL_RANDOM:
            yield self.finding(
                source, node,
                f"numpy global-state RNG call '{resolved}': thread it "
                f"through an explicit numpy.random.Generator instead")
        elif parts[0] == "random" and len(parts) == 2:
            yield self.finding(
                source, node,
                f"'{resolved}' uses the process-global random module state; "
                f"use an explicit numpy Generator")
        elif resolved in ("time.time", "time.time_ns"):
            yield self.finding(
                source, node,
                "wall-clock time in a bit-identical code path; timestamps "
                "belong in record metadata outside the engines "
                "(use Timer for durations)")
        elif parts[-1] in ("list", "tuple") and len(node.args) == 1 \
                and self._is_set_expression(node.args[0], aliases):
            yield self.finding(
                source, node,
                "materialising a set into a sequence has hash-dependent "
                "order; use sorted(...) for a deterministic order")

    @staticmethod
    def _is_set_expression(node: ast.expr, aliases: Dict[str, str]) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            resolved = A.resolve_call_name(node.func, aliases)
            return resolved in ("set", "frozenset")
        if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.BitOr, ast.BitAnd, ast.Sub)):
            # set algebra: s1 | s2, s1 & s2, s1 - s2 on set literals
            return (Determinism._is_set_expression(node.left, aliases)
                    or Determinism._is_set_expression(node.right, aliases))
        return False


# --------------------------------------------------------------------- #
# R4 — deprecation containment
# --------------------------------------------------------------------- #
@register
class DeprecationContainment(Rule):
    """Deprecated shims are referenced only from shims (and must warn).

    The PR 3/4/5 shims (``localpush_vec``, ``sharded``, the
    ``simrank_*=`` keyword relay, the experiment ``run()`` functions)
    exist solely for call compatibility; a new in-repo reference would
    resurrect a deprecated path that the next PR is entitled to delete.
    """

    id = "R4"
    name = "deprecation-containment"
    description = ("deprecated shim modules/kwargs referenced only from "
                   "shim code, and every shim emits a DeprecationWarning")

    def check_file(self, source: SourceFile, project: Project
                   ) -> Iterator[Finding]:
        if source.tree is None:
            return
        A.attach_parents(source.tree)
        if not source.matches(*SHIM_HOST_FILES):
            for module, lineno in A.imported_modules(source.tree):
                if module in DEPRECATED_SHIM_MODULES:
                    yield self.finding(
                        source, lineno,
                        f"import of deprecated shim module '{module}'; "
                        f"use repro.simrank.engine / SimRankConfig instead")
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call_kwargs(source, node)
        if _is_experiment_module(source):
            run_shim = _module_function(source.tree, "run")
            if run_shim is not None and not self._shim_warns(run_shim):
                yield self.finding(
                    source, run_shim,
                    "experiment-module run() is a deprecated shim and must "
                    "emit a DeprecationWarning pointing at run_experiment()")

    def _check_call_kwargs(self, source: SourceFile, node: ast.Call
                           ) -> Iterator[Finding]:
        passed = [kw.arg for kw in node.keywords
                  if kw.arg in DEPRECATED_CALL_KWARGS]
        if not passed:
            return
        enclosing = A.enclosing(node, *A.FunctionNode)
        declared: Set[str] = set()
        if enclosing is not None:
            arguments = enclosing.args  # type: ignore[attr-defined]
            for arg in (arguments.args + arguments.kwonlyargs
                        + arguments.posonlyargs):
                declared.add(arg.arg)
        for name in passed:
            if name in declared:
                continue  # forwarding inside the shim that declares it
            yield self.finding(
                source, node,
                f"deprecated keyword '{name}=' at a call site outside its "
                f"forwarding shim; pass a SimRankConfig instead")

    @staticmethod
    def _shim_warns(function: ast.AST) -> bool:
        if A.warns_deprecation(function):
            return True
        for node in ast.walk(function):
            if isinstance(node, ast.Call):
                callee = (A.dotted_name(node.func) or "").split(".")[-1]
                if callee.startswith("merge_") and callee.endswith("_kwargs"):
                    return True
        return False


# --------------------------------------------------------------------- #
# R5 — registry consistency
# --------------------------------------------------------------------- #
@register
class RegistryConsistency(Rule):
    """The experiment and model registries agree with the modules.

    Every ``@experiment`` registration must carry a resolvable spec
    builder and be reachable from the lazy-import table
    ``EXPERIMENT_MODULES`` (and vice versa); every model in
    ``models/registry.py`` must resolve to an imported class and have a
    defaults entry.  A mismatch is a name that imports fine but explodes
    (or silently vanishes) at dispatch time.
    """

    id = "R5"
    name = "registry-consistency"
    description = ("@experiment registrations ↔ EXPERIMENT_MODULES table "
                   "and models _REGISTRY ↔ imports/_DEFAULTS stay in sync")

    def check_project(self, project: Project) -> Iterator[Finding]:
        yield from self._check_experiments(project)
        yield from self._check_models(project)

    # -- experiments -------------------------------------------------- #
    def _check_experiments(self, project: Project) -> Iterator[Finding]:
        registry_files = project.find("repro/experiments/registry.py")
        if not registry_files or registry_files[0].tree is None:
            return
        registry = registry_files[0]
        table_node = A.module_assignment(registry.tree, "EXPERIMENT_MODULES")
        table = (A.str_dict_literal(table_node)
                 if table_node is not None else None)
        if table is None:
            yield self.finding(
                registry, table_node or 1,
                "EXPERIMENT_MODULES must be a literal {name: module} dict "
                "(the lazy-import table the registry dispatches through)")
            return
        module_of: Dict[str, str] = {}
        for name, value in table.items():
            if isinstance(value, ast.Constant) and isinstance(value.value, str):
                module_of[name] = value.value

        registered: Dict[str, str] = {}
        for source in project:
            if not _is_experiment_module(source) or source.tree is None:
                continue
            expected_module = "repro.experiments." + source.path.rsplit(
                "/", 1)[-1][:-3]
            names_here: List[str] = []
            for call, name in _experiment_registrations(source):
                if name is None:
                    yield self.finding(
                        source, call,
                        "@experiment name must be a string literal so the "
                        "registry table can be checked statically")
                    continue
                names_here.append(name)
                registered[name] = expected_module
                builder = _registration_kwarg(call, "spec")
                if builder is None:
                    yield self.finding(
                        source, call,
                        f"@experiment('{name}') has no spec= builder; every "
                        f"experiment must be constructible from its spec")
                elif isinstance(builder, ast.Name) and _module_function(
                        source.tree, builder.id) is None:
                    yield self.finding(
                        source, call,
                        f"@experiment('{name}') spec builder "
                        f"'{builder.id}' is not a module-level function "
                        f"of {expected_module}")
                runner = _registration_kwarg(call, "cell")
                if isinstance(runner, ast.Name) and _module_function(
                        source.tree, runner.id) is None \
                        and runner.id not in A.import_aliases(source.tree):
                    # An *imported* runner is legitimate: fig2 registers
                    # table2's cell runner so both experiments share one
                    # ArtifactStore key (the store keys on runner qualname).
                    yield self.finding(
                        source, call,
                        f"@experiment('{name}') cell runner '{runner.id}' "
                        f"is neither defined in nor imported by "
                        f"{expected_module}")
                if name not in module_of:
                    yield self.finding(
                        source, call,
                        f"experiment '{name}' is registered here but missing "
                        f"from EXPERIMENT_MODULES — unreachable by name")
                elif module_of[name] != expected_module:
                    yield self.finding(
                        source, call,
                        f"EXPERIMENT_MODULES maps '{name}' to "
                        f"{module_of[name]!r}, but it is registered in "
                        f"{expected_module}")
            if not names_here:
                yield self.finding(
                    source, 1,
                    "experiment module registers nothing with @experiment — "
                    "either register it or move it to the infra list")

        scanned = {
            "repro.experiments." + source.path.rsplit("/", 1)[-1][:-3]
            for source in project if _is_experiment_module(source)}
        for name, module in sorted(module_of.items()):
            if module in scanned and name not in registered:
                yield self.finding(
                    registry, table_node,
                    f"EXPERIMENT_MODULES lists '{name}' → {module}, but "
                    f"that module registers no @experiment('{name}')")

    # -- models ------------------------------------------------------- #
    def _check_models(self, project: Project) -> Iterator[Finding]:
        registry_files = project.find("repro/models/registry.py")
        if not registry_files or registry_files[0].tree is None:
            return
        registry = registry_files[0]
        aliases = A.import_aliases(registry.tree)
        table_node = A.module_assignment(registry.tree, "_REGISTRY")
        table = (A.str_dict_literal(table_node)
                 if table_node is not None else None)
        if table is None:
            yield self.finding(
                registry, table_node or 1,
                "models _REGISTRY must be a literal {name: factory} dict")
            return
        for name, value in table.items():
            factory = A.dotted_name(value)
            if factory is None or factory.split(".")[0] not in aliases:
                yield self.finding(
                    registry, value,
                    f"model '{name}' maps to {ast.unparse(value)!r}, which "
                    f"is not an imported name — it would NameError at "
                    f"first use")
        defaults_node = A.module_assignment(registry.tree, "_DEFAULTS")
        defaults = (A.str_dict_literal(defaults_node)
                    if defaults_node is not None else None)
        if defaults is None:
            return
        for name in sorted(set(table) - set(defaults)):
            yield self.finding(
                registry, defaults_node,
                f"model '{name}' has no _DEFAULTS entry — "
                f"default_hyperparameters('{name}') would KeyError")
        for name in sorted(set(defaults) - set(table)):
            yield self.finding(
                registry, defaults_node,
                f"_DEFAULTS names unregistered model '{name}' "
                f"(stale entry)")


# --------------------------------------------------------------------- #
# R6 — config-addressability of grid keys
# --------------------------------------------------------------------- #
@register
class ConfigAddressability(Rule):
    """Prefixed grid keys name real fields on their target dataclass.

    ``train.<f>`` / ``simrank.<f>`` grid keys are resolved by
    ``ExperimentSpec._expand`` through ``with_overrides``, and
    ``overrides.<p>`` ends up as a model ``__init__`` keyword — a typo
    survives import and spec construction and only explodes (or worse,
    silently no-ops) deep inside a sweep.
    """

    id = "R6"
    name = "config-addressability"
    description = ("grid-key prefixes overrides./train./simrank. name real "
                   "fields of the target dataclasses")

    def check_project(self, project: Project) -> Iterator[Finding]:
        simrank_fields = self._fields_of(project, "repro/config.py",
                                         "SimRankConfig")
        train_fields = self._fields_of(project, "repro/training/config.py",
                                       "TrainConfig")
        model_params = self._model_init_params(project)
        for source in project:
            if not _is_experiment_module(source) or source.tree is None:
                continue
            for node in ast.walk(source.tree):
                if not isinstance(node, ast.Dict):
                    continue
                for key in node.keys:
                    if not (isinstance(key, ast.Constant)
                            and isinstance(key.value, str)):
                        continue
                    prefix, _, rest = key.value.partition(".")
                    if not rest:
                        continue
                    if prefix == "simrank" and simrank_fields is not None \
                            and rest not in simrank_fields:
                        yield self.finding(
                            source, key,
                            f"grid key 'simrank.{rest}': SimRankConfig has "
                            f"no field '{rest}'")
                    elif prefix == "train" and train_fields is not None \
                            and rest not in train_fields:
                        yield self.finding(
                            source, key,
                            f"grid key 'train.{rest}': TrainConfig has no "
                            f"field '{rest}'")
                    elif prefix == "overrides" and model_params is not None \
                            and rest not in model_params:
                        yield self.finding(
                            source, key,
                            f"grid key 'overrides.{rest}': no model "
                            f"__init__ accepts a '{rest}' parameter")

    @staticmethod
    def _fields_of(project: Project, suffix: str,
                   class_name: str) -> Optional[Set[str]]:
        for source in project.find(suffix):
            if source.tree is None:
                continue
            node = A.class_def(source.tree, class_name)
            if node is not None:
                return {name for name, _ in A.dataclass_fields(node)}
        return None

    @staticmethod
    def _model_init_params(project: Project) -> Optional[Set[str]]:
        params: Set[str] = set()
        found = False
        for source in project:
            if not source.under("models") or not source.under("repro") \
                    or source.tree is None:
                continue
            for node in ast.walk(source.tree):
                if not (isinstance(node, A.FunctionNode)
                        and node.name == "__init__"):
                    continue
                found = True
                arguments = node.args
                for arg in (arguments.args + arguments.kwonlyargs
                            + arguments.posonlyargs):
                    if arg.arg not in ("self", "graph", "rng"):
                        params.add(arg.arg)
        return params if found else None


# --------------------------------------------------------------------- #
# R7 — mutable defaults / bare except
# --------------------------------------------------------------------- #
@register
class MutableDefaultsBareExcept(Rule):
    """No mutable default arguments and no bare ``except:`` in repro.

    A mutable default is shared across calls (the classic aliasing bug);
    a bare ``except:`` swallows ``KeyboardInterrupt``/``SystemExit`` and
    hides the typed repro.errors taxonomy the API promises.
    """

    id = "R7"
    name = "mutable-defaults-bare-except"
    description = "no mutable default args or bare except: under repro/"

    MUTABLE_CALLS = ("list", "dict", "set")

    def check_file(self, source: SourceFile, project: Project
                   ) -> Iterator[Finding]:
        if source.tree is None or not source.under("repro"):
            return
        for node in ast.walk(source.tree):
            if isinstance(node, A.FunctionNode):
                arguments = node.args
                for default in list(arguments.defaults) + [
                        d for d in arguments.kw_defaults if d is not None]:
                    if self._is_mutable(default):
                        yield self.finding(
                            source, default,
                            f"mutable default argument "
                            f"({ast.unparse(default)}) in "
                            f"{node.name}(): shared across calls — use "
                            f"None and materialise inside")
            elif isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.finding(
                    source, node,
                    "bare 'except:' swallows KeyboardInterrupt/SystemExit; "
                    "catch the narrowest repro.errors type that applies")

    def _is_mutable(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.DictComp, ast.SetComp)):
            return True
        return (isinstance(node, ast.Call)
                and A.dotted_name(node.func) in self.MUTABLE_CALLS
                and not node.args and not node.keywords)


# --------------------------------------------------------------------- #
# R8 — API-surface import hygiene
# --------------------------------------------------------------------- #
@register
class ApiSurfaceImports(Rule):
    """Examples, benchmarks and spec builders stay on the public surface.

    The ROADMAP "refactor freely" policy only holds while everything
    outside ``src/repro`` (and the declarative spec builders inside it)
    consumes the supported surface — one stray
    ``from repro.simrank.engine import ...`` turns an internal module
    into load-bearing API.
    """

    id = "R8"
    name = "api-surface-imports"
    description = ("examples/, benchmarks/ and experiment spec builders "
                   "import only the supported public surface")

    def check_file(self, source: SourceFile, project: Project
                   ) -> Iterator[Finding]:
        if source.tree is None:
            return
        if source.under("examples", "benchmarks"):
            for module, lineno in A.imported_modules(source.tree):
                if module.split(".")[0] != "repro":
                    continue
                if module not in PUBLIC_SURFACE:
                    yield self.finding(
                        source, lineno,
                        f"import of internal module '{module}'; the "
                        f"supported surface is: "
                        f"{', '.join(sorted(PUBLIC_SURFACE))}")
        elif _is_experiment_module(source):
            yield from self._check_spec_builders(source)

    def _check_spec_builders(self, source: SourceFile) -> Iterator[Finding]:
        aliases = A.import_aliases(source.tree)  # type: ignore[arg-type]
        for call, name in _experiment_registrations(source):
            builder = _registration_kwarg(call, "spec")
            if not isinstance(builder, ast.Name):
                continue
            function = _module_function(source.tree, builder.id)
            if function is None:
                continue  # R5 reports the missing builder
            for node in ast.walk(function):
                if not (isinstance(node, ast.Name)
                        and isinstance(node.ctx, ast.Load)):
                    continue
                origin = aliases.get(node.id)
                if origin is None or origin.split(".")[0] != "repro":
                    continue
                module = origin.rsplit(".", 1)[0] if "." in origin else origin
                if module == "repro" or any(
                        module == prefix or module.startswith(prefix + ".")
                        for prefix in BUILDER_SURFACE_PREFIXES):
                    continue
                yield self.finding(
                    source, node,
                    f"spec builder '{builder.id}' of experiment "
                    f"'{name or '?'}' uses '{node.id}' from internal module "
                    f"'{module}'; spec builders are declarative — only "
                    f"{', '.join(BUILDER_SURFACE_PREFIXES)} may appear")


__all__ = [
    "CacheKeyCompleteness", "FrozenConfigDiscipline", "Determinism",
    "DeprecationContainment", "RegistryConsistency", "ConfigAddressability",
    "MutableDefaultsBareExcept", "ApiSurfaceImports",
    "EXPERIMENT_INFRA", "DEPRECATED_SHIM_MODULES", "DEPRECATED_CALL_KWARGS",
    "NUMPY_GLOBAL_RANDOM", "PUBLIC_SURFACE", "BUILDER_SURFACE_PREFIXES",
    "DETERMINISM_SCOPED_FILES", "FROZEN_CONFIG_CLASSES",
]
