"""Framework of the :mod:`repro.lint` static-analysis pass.

The framework is deliberately small: a *project* is the set of parsed
source files under the scanned paths, a *rule* is an object that inspects
the project (or one file at a time) and yields findings, and the *runner*
collects every rule's findings and filters them through the pragma
exemptions found in the source.  Rules never import the code they check —
everything is derived from the AST, so the linter works on broken or
partially-refactored trees and on fixture snippets in tests.

Pragmas
-------
Two comment forms suppress findings (rule IDs are comma-separated;
``all`` matches every rule):

``# repro-lint: disable=R3`` (trailing on a code line)
    Suppresses the listed rules' findings *reported at that line*.
``# repro-lint: disable-file=R8`` (a standalone comment line)
    Suppresses the listed rules for the whole file.  Used where a file's
    purpose is exactly what the rule forbids (e.g. the LocalPush
    micro-benchmark imports engine internals by design).

Every pragma should carry a justification comment next to it; the rule
IDs and the invariants they protect are catalogued in the package
docstring (:mod:`repro.lint`).
"""

from __future__ import annotations

import ast
import dataclasses
import json
import re
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

#: Severity levels, ordered.  ``error`` findings fail the run (exit 1 /
#: CI red); ``warning`` findings are reported but only fail under
#: ``--strict``.
SEVERITIES = ("warning", "error")

_PRAGMA_RE = re.compile(
    r"#\s*repro-lint\s*:\s*(disable(?:-file)?)\s*=\s*([A-Za-z0-9_,\s]+)")


@dataclasses.dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    severity: str
    path: str
    line: int
    message: str

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable record (the ``--format=json`` schema)."""
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }

    def render(self) -> str:
        """Human-readable one-liner (``path:line: [RULE] message``)."""
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


class SourceFile:
    """One parsed source file plus its pragma tables.

    ``path`` is the repo-relative posix path used for rule scoping and
    reporting; ``tree`` is ``None`` when the file does not parse (the
    runner reports a parse failure instead of running rules on it).
    """

    def __init__(self, path: str, text: str) -> None:
        self.path = path
        self.text = text
        self.syntax_error: Optional[SyntaxError] = None
        try:
            self.tree: Optional[ast.AST] = ast.parse(text)
        except SyntaxError as error:
            self.tree = None
            self.syntax_error = error
        self._line_pragmas: Dict[int, Set[str]] = {}
        self._file_pragmas: Set[str] = set()
        for lineno, line in enumerate(text.splitlines(), start=1):
            match = _PRAGMA_RE.search(line)
            if match is None:
                continue
            rules = {part.strip().upper()
                     for part in match.group(2).split(",") if part.strip()}
            if match.group(1) == "disable-file":
                self._file_pragmas |= rules
            else:
                self._line_pragmas.setdefault(lineno, set()).update(rules)

    # ------------------------------------------------------------------ #
    def suppressed(self, rule: str, line: int) -> bool:
        """Whether a ``rule`` finding at ``line`` is pragma-exempted."""
        rule = rule.upper()
        if rule in self._file_pragmas or "ALL" in self._file_pragmas:
            return True
        at_line = self._line_pragmas.get(line, set())
        return rule in at_line or "ALL" in at_line

    def matches(self, *suffixes: str) -> bool:
        """Whether the file path ends with any of the given suffixes.

        Rules scope themselves by *path shape* (``repro/simrank/engine.py``)
        rather than absolute location, so fixture trees in tests scope
        exactly like the real tree.
        """
        return any(self.path.endswith(suffix) for suffix in suffixes)

    def under(self, *parts: str) -> bool:
        """Whether any path segment equals one of ``parts``."""
        segments = self.path.split("/")
        return any(part in segments for part in parts)


class Project:
    """The scanned file set a lint run works on."""

    def __init__(self, root: Path, files: Sequence[SourceFile]) -> None:
        self.root = root
        self.files = list(files)

    def find(self, *suffixes: str) -> List[SourceFile]:
        """All scanned files whose path ends with one of ``suffixes``."""
        return [source for source in self.files if source.matches(*suffixes)]

    def __iter__(self) -> Iterator[SourceFile]:
        return iter(self.files)


class Rule:
    """Base class of one lint rule.

    Subclasses set :attr:`id` (``"R1"``), :attr:`name` (a short slug used
    in reports), :attr:`description` (the invariant the rule protects)
    and optionally :attr:`severity`; they override :meth:`check_file`
    and/or :meth:`check_project`.  Findings are created through
    :meth:`finding` so the rule ID and severity are attached uniformly.
    """

    id: str = ""
    name: str = ""
    description: str = ""
    severity: str = "error"

    def check_file(self, source: SourceFile, project: Project
                   ) -> Iterator[Finding]:
        """Per-file findings (default: none)."""
        return iter(())

    def check_project(self, project: Project) -> Iterator[Finding]:
        """Cross-file findings (default: none)."""
        return iter(())

    def finding(self, source: SourceFile, node_or_line: object,
                message: str) -> Finding:
        line = getattr(node_or_line, "lineno", node_or_line)
        return Finding(rule=self.id, severity=self.severity,
                       path=source.path, line=int(line), message=message)


#: Rule registry: ID → rule instance, populated by :func:`register`.
_RULES: Dict[str, Rule] = {}


def register(rule_cls: type) -> type:
    """Class decorator adding one rule (instantiated once) to the registry."""
    rule = rule_cls()
    if not rule.id or not rule.name:
        raise ValueError(f"rule {rule_cls.__name__} must set id and name")
    if rule.severity not in SEVERITIES:
        raise ValueError(f"rule {rule.id} has invalid severity "
                         f"{rule.severity!r}; expected one of {SEVERITIES}")
    if rule.id in _RULES:
        raise ValueError(f"duplicate rule id {rule.id}")
    _RULES[rule.id] = rule
    return rule_cls


def all_rules() -> List[Rule]:
    """Every registered rule, sorted by numeric ID."""
    _load_rules()
    return [_RULES[key] for key in sorted(
        _RULES, key=lambda rule_id: (len(rule_id), rule_id))]


def get_rules(ids: Optional[Iterable[str]] = None) -> List[Rule]:
    """The rules selected by ``ids`` (all registered rules when ``None``)."""
    rules = all_rules()
    if ids is None:
        return rules
    wanted = {rule_id.upper() for rule_id in ids}
    unknown = wanted - {rule.id for rule in rules}
    if unknown:
        raise KeyError(f"unknown rule id(s): {', '.join(sorted(unknown))}; "
                       f"available: {', '.join(rule.id for rule in rules)}")
    return [rule for rule in rules if rule.id in wanted]


def _load_rules() -> None:
    """Import the rule modules (idempotent; they self-register)."""
    from repro.lint import rules  # noqa: F401  (import side effect)


# --------------------------------------------------------------------- #
# Project loading
# --------------------------------------------------------------------- #
def load_project(paths: Sequence[str | Path],
                 root: Optional[str | Path] = None) -> Project:
    """Collect every ``*.py`` file under ``paths`` into a :class:`Project`.

    ``root`` (default: the common parent of ``paths``, or the current
    directory) anchors the repo-relative paths rules scope on; passing
    the repository root keeps ``examples/``-style classification stable
    no matter where the linter is invoked from.
    """
    resolved = [Path(path).resolve() for path in paths]
    if root is None:
        base = Path.cwd().resolve()
        if not all(_is_relative_to(path, base) for path in resolved):
            base = Path(_common_parent(resolved))
    else:
        base = Path(root).resolve()
    files: List[SourceFile] = []
    seen: Set[Path] = set()
    for path in resolved:
        candidates = [path] if path.is_file() else sorted(path.rglob("*.py"))
        for candidate in candidates:
            if candidate in seen or candidate.suffix != ".py":
                continue
            seen.add(candidate)
            relative = (candidate.relative_to(base).as_posix()
                        if _is_relative_to(candidate, base)
                        else candidate.as_posix())
            files.append(SourceFile(relative, candidate.read_text()))
    return Project(base, files)


def _is_relative_to(path: Path, base: Path) -> bool:
    try:
        path.relative_to(base)
        return True
    except ValueError:
        return False


def _common_parent(paths: Sequence[Path]) -> str:
    import os

    if len(paths) == 1:
        only = paths[0]
        return str(only if only.is_dir() else only.parent)
    return os.path.commonpath([str(path) for path in paths])


# --------------------------------------------------------------------- #
# Running
# --------------------------------------------------------------------- #
def run_rules(project: Project,
              rules: Optional[Sequence[Rule]] = None) -> List[Finding]:
    """Run ``rules`` over ``project`` and return pragma-filtered findings.

    Unparseable files yield one ``PARSE`` error finding each instead of
    aborting the run; findings are sorted by (path, line, rule).
    """
    selected = list(rules) if rules is not None else all_rules()
    findings: List[Finding] = []
    for source in project:
        if source.syntax_error is not None:
            findings.append(Finding(
                rule="PARSE", severity="error", path=source.path,
                line=source.syntax_error.lineno or 1,
                message=f"file does not parse: {source.syntax_error.msg}"))
            continue
        for rule in selected:
            for finding in rule.check_file(source, project):
                if not source.suppressed(finding.rule, finding.line):
                    findings.append(finding)
    by_path = {source.path: source for source in project}
    for rule in selected:
        for finding in rule.check_project(project):
            source = by_path.get(finding.path)
            if source is None or not source.suppressed(finding.rule,
                                                       finding.line):
                findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def lint_paths(paths: Sequence[str | Path], *,
               rule_ids: Optional[Iterable[str]] = None,
               root: Optional[str | Path] = None) -> List[Finding]:
    """Convenience wrapper: load ``paths`` and run the selected rules."""
    return run_rules(load_project(paths, root=root), get_rules(rule_ids))


def report_json(findings: Sequence[Finding]) -> str:
    """The machine-readable report (the CI artifact format).

    Schema: ``{"version": 1, "findings": [Finding.to_dict()...],
    "counts": {"error": n, "warning": m}}``.
    """
    counts = {severity: 0 for severity in SEVERITIES}
    for finding in findings:
        counts[finding.severity] = counts.get(finding.severity, 0) + 1
    return json.dumps({
        "version": 1,
        "findings": [finding.to_dict() for finding in findings],
        "counts": counts,
    }, indent=2, sort_keys=True)


def report_human(findings: Sequence[Finding],
                 checked_files: int) -> str:
    """The terminal report: one line per finding plus a summary."""
    lines = [finding.render() for finding in findings]
    errors = sum(1 for finding in findings if finding.severity == "error")
    warnings = len(findings) - errors
    lines.append(
        f"repro-lint: {checked_files} file(s) checked, "
        f"{errors} error(s), {warnings} warning(s)")
    return "\n".join(lines)


__all__ = ["Finding", "SourceFile", "Project", "Rule", "register",
           "all_rules", "get_rules", "load_project", "run_rules",
           "lint_paths", "report_json", "report_human", "SEVERITIES"]
