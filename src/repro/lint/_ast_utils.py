"""Shared AST inspection helpers for the lint rules.

Everything here is purely syntactic — no imports of the checked code —
so the rules work on fixture snippets and on trees that do not import.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

FunctionNode = (ast.FunctionDef, ast.AsyncFunctionDef)


def attach_parents(tree: ast.AST) -> None:
    """Annotate every node with a ``_lint_parent`` backlink (idempotent)."""
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            child._lint_parent = node  # type: ignore[attr-defined]


def parent_of(node: ast.AST) -> Optional[ast.AST]:
    return getattr(node, "_lint_parent", None)


def enclosing(node: ast.AST, *types: type) -> Optional[ast.AST]:
    """The nearest ancestor of one of ``types`` (``None`` at module level)."""
    current = parent_of(node)
    while current is not None:
        if isinstance(current, types):
            return current
        current = parent_of(current)
    return None


def decorator_name(node: ast.expr) -> str:
    """Dotted name of a decorator expression (call decorators unwrapped)."""
    if isinstance(node, ast.Call):
        node = node.func
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return ".".join(reversed(parts))


def is_dataclass(node: ast.ClassDef) -> bool:
    return any(decorator_name(dec).split(".")[-1] == "dataclass"
               for dec in node.decorator_list)


def is_frozen_dataclass(node: ast.ClassDef) -> bool:
    for dec in node.decorator_list:
        if decorator_name(dec).split(".")[-1] != "dataclass":
            continue
        if isinstance(dec, ast.Call):
            for keyword in dec.keywords:
                if (keyword.arg == "frozen"
                        and isinstance(keyword.value, ast.Constant)
                        and keyword.value.value is True):
                    return True
    return False


def class_def(tree: ast.AST, name: str) -> Optional[ast.ClassDef]:
    """The top-level class definition named ``name``, if present."""
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == name:
            return node
    return None


def dataclass_fields(node: ast.ClassDef) -> List[Tuple[str, int]]:
    """``(name, lineno)`` of each dataclass field (ClassVars excluded)."""
    fields: List[Tuple[str, int]] = []
    for statement in node.body:
        if not isinstance(statement, ast.AnnAssign):
            continue
        if not isinstance(statement.target, ast.Name):
            continue
        annotation = ast.unparse(statement.annotation)
        if "ClassVar" in annotation.split("["):
            continue
        if annotation.startswith("ClassVar"):
            continue
        fields.append((statement.target.id, statement.lineno))
    return fields


def string_elements(node: ast.expr) -> Optional[List[str]]:
    """The string items of a tuple/list/set/frozenset literal, else None."""
    if isinstance(node, ast.Call) and decorator_name(node.func) in (
            "frozenset", "set", "tuple", "list") and node.args:
        return string_elements(node.args[0])
    if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        items: List[str] = []
        for element in node.elts:
            if not (isinstance(element, ast.Constant)
                    and isinstance(element.value, str)):
                return None
            items.append(element.value)
        return items
    return None


def module_assignment(tree: ast.AST, name: str) -> Optional[ast.expr]:
    """The value of the last module-level ``name = ...`` assignment."""
    value: Optional[ast.expr] = None
    body = tree.body if isinstance(tree, ast.Module) else []
    for statement in body:
        if isinstance(statement, ast.Assign):
            for target in statement.targets:
                if isinstance(target, ast.Name) and target.id == name:
                    value = statement.value
        elif isinstance(statement, ast.AnnAssign):
            if (isinstance(statement.target, ast.Name)
                    and statement.target.id == name
                    and statement.value is not None):
                value = statement.value
    return value


def str_dict_literal(node: ast.expr) -> Optional[Dict[str, ast.expr]]:
    """A ``{str: value}`` mapping from a dict literal, else ``None``."""
    if not isinstance(node, ast.Dict):
        return None
    mapping: Dict[str, ast.expr] = {}
    for key, value in zip(node.keys, node.values):
        if not (isinstance(key, ast.Constant) and isinstance(key.value, str)):
            return None
        mapping[key.value] = value
    return mapping


def imported_modules(tree: ast.AST) -> List[Tuple[str, int]]:
    """Every imported module path with its line (``from x import y`` → x)."""
    imports: List[Tuple[str, int]] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                imports.append((alias.name, node.lineno))
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            imports.append((node.module, node.lineno))
    return imports


def import_aliases(tree: ast.AST) -> Dict[str, str]:
    """Local name → dotted origin for every import in the module.

    ``import numpy as np`` → ``{"np": "numpy"}``; ``from x import y as z``
    → ``{"z": "x.y"}``.
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                aliases[local] = alias.name if alias.asname else alias.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                aliases[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return aliases


def dotted_name(node: ast.expr) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def resolve_call_name(node: ast.expr, aliases: Dict[str, str]) -> Optional[str]:
    """Fully resolved dotted name of a call target through import aliases."""
    name = dotted_name(node)
    if name is None:
        return None
    head, _, rest = name.partition(".")
    origin = aliases.get(head, head)
    return f"{origin}.{rest}" if rest else origin


def warns_deprecation(function: ast.AST) -> bool:
    """Whether the function body contains a DeprecationWarning ``warn``."""
    for node in ast.walk(function):
        if not isinstance(node, ast.Call):
            continue
        callee = dotted_name(node.func) or ""
        if not callee.endswith("warn"):
            continue
        mentions = [ast.unparse(arg) for arg in node.args]
        mentions += [ast.unparse(kw.value) for kw in node.keywords]
        if any("DeprecationWarning" in text for text in mentions):
            return True
    return False


def functions(tree: ast.AST) -> Iterator[ast.AST]:
    for node in ast.walk(tree):
        if isinstance(node, FunctionNode):
            yield node


__all__ = [
    "FunctionNode", "attach_parents", "parent_of", "enclosing",
    "decorator_name", "is_dataclass", "is_frozen_dataclass", "class_def",
    "dataclass_fields", "string_elements", "module_assignment",
    "str_dict_literal", "imported_modules", "import_aliases", "dotted_name",
    "resolve_call_name", "warns_deprecation", "functions",
]
