"""Command line of the invariant checker (``repro-lint``).

``repro-lint [paths ...]`` scans the given files/directories (default:
``src benchmarks examples`` relative to the current directory, i.e. the
repository layout) with every registered rule and reports findings in
human or JSON form.  Exit status: 0 clean, 1 findings at the failing
severity (errors; warnings too under ``--strict``), 2 usage error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.lint.core import (all_rules, get_rules, load_project,
                             report_human, report_json, run_rules)

DEFAULT_PATHS = ("src", "benchmarks", "examples")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="AST-based invariant checker for the repro codebase.")
    parser.add_argument(
        "paths", nargs="*",
        help="files or directories to scan (default: the repo layout "
             f"{' '.join(DEFAULT_PATHS)}, skipping missing ones)")
    parser.add_argument(
        "--format", choices=("human", "json"), default="human",
        help="report format (json is the CI artifact schema)")
    parser.add_argument(
        "--rules", default=None, metavar="IDS",
        help="comma-separated rule IDs to run (default: all)")
    parser.add_argument(
        "--root", default=None, metavar="DIR",
        help="repository root anchoring the reported relative paths")
    parser.add_argument(
        "--strict", action="store_true",
        help="treat warning-severity findings as failing")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit")
    parser.add_argument(
        "--output", default=None, metavar="FILE",
        help="write the report to FILE instead of stdout")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.id:4s} {rule.name} [{rule.severity}] — "
                  f"{rule.description}")
        return 0

    paths: List[str] = list(args.paths)
    if not paths:
        paths = [path for path in DEFAULT_PATHS if Path(path).exists()]
        if not paths:
            parser.error("no paths given and none of the default "
                         f"paths ({', '.join(DEFAULT_PATHS)}) exist here")
    else:
        missing = [path for path in paths if not Path(path).exists()]
        if missing:
            parser.error(f"no such path(s): {', '.join(missing)}")

    try:
        rule_ids = (None if args.rules is None
                    else [r for r in args.rules.split(",") if r.strip()])
        rules = get_rules(rule_ids)
    except KeyError as error:
        parser.error(str(error.args[0]))

    project = load_project(paths, root=args.root)
    findings = run_rules(project, rules)

    if args.format == "json":
        report = report_json(findings)
    else:
        report = report_human(findings, checked_files=len(project.files))
    if args.output:
        Path(args.output).write_text(report + "\n")
        # The file holds the machine-readable record; the log still gets
        # the human summary so CI failures are readable in place.
        print(report_human(findings, checked_files=len(project.files)))
    else:
        print(report)

    failing = [finding for finding in findings
               if finding.severity == "error" or args.strict]
    return 1 if failing else 0


if __name__ == "__main__":  # pragma: no cover - module CLI
    sys.exit(main())
