"""repro.lint — the project's AST-based invariant checker.

PRs 1–5 built the system's correctness story on *conventions*: one
cache-key derivation, bit-identical executors, frozen configs,
call-compatible deprecation shims, declarative experiment specs.  This
package checks those conventions mechanically so the ROADMAP's
"refactor freely" policy stays safe — a refactor that would silently
break a cache key, reintroduce nondeterminism or resurrect a deprecated
path fails ``repro-lint`` (and therefore tier-1, via
``tests/test_lint_clean.py``, and CI's ``static-analysis`` job) before
it can land.

Running it
----------
::

    python -m repro.lint [paths ...]      # default: src benchmarks examples
    repro-lint --format=json src/         # machine-readable (CI artifact)
    repro-lint --rules R1,R3 --strict     # subset; warnings fail too

Exit status 0 = clean, 1 = findings at the failing severity, 2 = usage
error.  The linter never imports the code it checks — everything is
AST-derived, so it runs on broken or partially-refactored trees.

Rule catalogue
--------------
``R1`` cache-key-completeness
    Every ``SimRankConfig`` field appears in ``cache_key_fields()`` or
    in the justified ``CACHE_KEY_EXEMPT`` set (``repro/config.py``).
    Protects: one operator-cache key derivation; a field added without a
    keying decision would silently serve stale operators across configs.
``R2`` frozen-config-discipline
    No attribute assignment and no non-``self`` ``object.__setattr__``
    on ``SimRankConfig`` / ``RunSpec`` / ``ExperimentSpec`` (or the other
    frozen configs) outside their defining modules.  Protects: configs
    stay immutable, shareable and safe to hash into cache keys.
``R3`` determinism
    No ``np.random.*`` global-state calls, ``random.*`` module
    functions, ``time.time()`` or bare set iteration in
    ``repro/simrank/engine.py``, ``repro/experiments/engine.py``,
    ``repro/serve/service.py`` or any registered experiment cell
    runner.  Protects: the bit-identical executor guarantee (every
    executor × worker count, same bytes) and the serving layer's
    batched-equals-solo answer guarantee.
``R4`` deprecation-containment
    The deprecated shims (``localpush_vec``, ``sharded``, the
    ``simrank_*=`` keyword relay, experiment-module ``run()``) are
    referenced only from shim code, and every shim emits a
    ``DeprecationWarning``.  Protects: deprecated paths stay deletable.
``R5`` registry-consistency
    ``@experiment`` registrations ↔ the ``EXPERIMENT_MODULES``
    lazy-import table stay bijective, every registration has a
    resolvable spec builder / cell runner, and the model registry's
    ``_REGISTRY`` / ``_DEFAULTS`` agree with the imports.  Protects:
    dispatch-by-name never NameErrors or silently drops an experiment.
``R6`` config-addressability
    Grid keys ``overrides.<p>`` / ``train.<f>`` / ``simrank.<f>`` in
    experiment modules name real fields of the target dataclasses.
    Protects: a typo'd sweep knob fails the linter, not hour two of the
    sweep.
``R7`` mutable-defaults-bare-except
    No mutable default arguments, no bare ``except:`` under ``repro/``.
``R8`` api-surface-imports
    ``examples/``, ``benchmarks/`` and the experiment spec builders
    import only the supported public surface (``repro``, ``repro.api``,
    ``repro.config``, ``repro.errors``, ``repro.experiments``,
    ``repro.datasets``, ``repro.graphs``, ``repro.serve``).  Protects:
    internals stay refactorable.

Pragmas
-------
Findings are suppressed with a justification comment at the exemption
site (rule IDs comma-separated; ``all`` matches every rule):

``# repro-lint: disable=R3`` — trailing on a line
    Suppresses the listed rules' findings reported *at that line*.
``# repro-lint: disable-file=R8`` — standalone comment line
    Suppresses the listed rules for the whole file; for files whose
    purpose is exactly what the rule forbids (e.g. the LocalPush
    micro-benchmark imports engine internals by design).
"""

from repro.lint.core import (
    Finding,
    Project,
    Rule,
    SourceFile,
    all_rules,
    get_rules,
    lint_paths,
    load_project,
    register,
    report_human,
    report_json,
    run_rules,
)

__all__ = [
    "Finding", "Project", "Rule", "SourceFile", "all_rules", "get_rules",
    "lint_paths", "load_project", "register", "report_human", "report_json",
    "run_rules",
]
