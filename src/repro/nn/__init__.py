"""Minimal neural-network substrate built on numpy.

The paper's models are ordinarily implemented in PyTorch; this package
provides the pieces they need — linear layers, activations, dropout,
normalisation, losses and optimisers — with explicit ``forward``/``backward``
methods so the whole library runs on numpy + scipy only.  Every model in
:mod:`repro.models` (SIGMA and all baselines) is built from these modules,
which keeps cross-model accuracy and runtime comparisons apples-to-apples.
"""

from repro.nn.module import Module, Parameter
from repro.nn.linear import Linear
from repro.nn.activations import GELU, LeakyReLU, ReLU, Tanh
from repro.nn.dropout import Dropout
from repro.nn.normalization import BatchNorm1d, LayerNorm
from repro.nn.sequential import Sequential
from repro.nn.mlp import MLP
from repro.nn.losses import l2_regularization, softmax, softmax_cross_entropy
from repro.nn.optim import SGD, Adam, Optimizer
from repro.nn.init import glorot_uniform, he_normal, zeros

__all__ = [
    "Module",
    "Parameter",
    "Linear",
    "ReLU",
    "LeakyReLU",
    "Tanh",
    "GELU",
    "Dropout",
    "LayerNorm",
    "BatchNorm1d",
    "Sequential",
    "MLP",
    "softmax",
    "softmax_cross_entropy",
    "l2_regularization",
    "Optimizer",
    "SGD",
    "Adam",
    "glorot_uniform",
    "he_normal",
    "zeros",
]
