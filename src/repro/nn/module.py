"""Parameter and Module base classes.

The design mirrors a tiny subset of ``torch.nn``: a :class:`Module` owns
:class:`Parameter` objects (and child modules), caches whatever its
``forward`` needs for ``backward``, and accumulates gradients into
``Parameter.grad``.  There is no autograd tape — every module implements its
own backward pass, which keeps the numerics transparent and testable with
finite differences.
"""

from __future__ import annotations

from typing import Dict, Iterator, List

import numpy as np


class Parameter:
    """A trainable tensor with an accumulated gradient."""

    __slots__ = ("value", "grad", "name")

    def __init__(self, value: np.ndarray, name: str = "param") -> None:
        self.value = np.asarray(value, dtype=np.float64)
        self.grad = np.zeros_like(self.value)
        self.name = name

    @property
    def shape(self) -> tuple:
        return self.value.shape

    @property
    def size(self) -> int:
        return int(self.value.size)

    def zero_grad(self) -> None:
        self.grad.fill(0.0)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Parameter(name={self.name!r}, shape={self.value.shape})"


class Module:
    """Base class for all layers and models.

    Subclasses implement ``forward`` (caching anything ``backward`` needs on
    ``self``) and ``backward`` (returning the gradient with respect to the
    forward input and accumulating parameter gradients).
    """

    def __init__(self) -> None:
        self.training = True

    # ------------------------------------------------------------------ #
    # Parameter management
    # ------------------------------------------------------------------ #
    def parameters(self) -> List[Parameter]:
        """All parameters of this module and its children, depth first."""
        found: List[Parameter] = []
        seen: set[int] = set()
        for value in self.__dict__.values():
            self._collect(value, found, seen)
        return found

    def _collect(self, value: object, found: List[Parameter], seen: set[int]) -> None:
        if isinstance(value, Parameter):
            if id(value) not in seen:
                seen.add(id(value))
                found.append(value)
        elif isinstance(value, Module):
            for param in value.parameters():
                if id(param) not in seen:
                    seen.add(id(param))
                    found.append(param)
        elif isinstance(value, (list, tuple)):
            for item in value:
                self._collect(item, found, seen)
        elif isinstance(value, dict):
            for item in value.values():
                self._collect(item, found, seen)

    def named_parameters(self) -> Dict[str, Parameter]:
        return {param.name: param for param in self.parameters()}

    def num_parameters(self) -> int:
        return sum(param.size for param in self.parameters())

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    # ------------------------------------------------------------------ #
    # Train / eval switching
    # ------------------------------------------------------------------ #
    def children(self) -> Iterator["Module"]:
        for value in self.__dict__.values():
            yield from self._child_modules(value)

    def _child_modules(self, value: object) -> Iterator["Module"]:
        if isinstance(value, Module):
            yield value
        elif isinstance(value, (list, tuple)):
            for item in value:
                yield from self._child_modules(item)
        elif isinstance(value, dict):
            for item in value.values():
                yield from self._child_modules(item)

    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for child in self.children():
            child.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    # ------------------------------------------------------------------ #
    # Forward / backward interface
    # ------------------------------------------------------------------ #
    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError

    def backward(self, grad_output):  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


__all__ = ["Parameter", "Module"]
