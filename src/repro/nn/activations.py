"""Element-wise activation modules."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.module import Module


class ReLU(Module):
    """Rectified linear unit."""

    def __init__(self) -> None:
        super().__init__()
        self._mask: Optional[np.ndarray] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        self._mask = inputs > 0
        return np.where(self._mask, inputs, 0.0)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return grad_output * self._mask


class LeakyReLU(Module):
    """Leaky ReLU with configurable negative slope (GAT uses 0.2)."""

    def __init__(self, negative_slope: float = 0.2) -> None:
        super().__init__()
        self.negative_slope = float(negative_slope)
        self._mask: Optional[np.ndarray] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        self._mask = inputs > 0
        return np.where(self._mask, inputs, self.negative_slope * inputs)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return np.where(self._mask, grad_output, self.negative_slope * grad_output)


class Tanh(Module):
    """Hyperbolic tangent."""

    def __init__(self) -> None:
        super().__init__()
        self._output: Optional[np.ndarray] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        self._output = np.tanh(inputs)
        return self._output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._output is None:
            raise RuntimeError("backward called before forward")
        return grad_output * (1.0 - self._output**2)


class GELU(Module):
    """Gaussian error linear unit (tanh approximation)."""

    _COEFF = np.sqrt(2.0 / np.pi)

    def __init__(self) -> None:
        super().__init__()
        self._input: Optional[np.ndarray] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        self._input = inputs
        inner = self._COEFF * (inputs + 0.044715 * inputs**3)
        return 0.5 * inputs * (1.0 + np.tanh(inner))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input is None:
            raise RuntimeError("backward called before forward")
        x = self._input
        inner = self._COEFF * (x + 0.044715 * x**3)
        tanh_inner = np.tanh(inner)
        sech2 = 1.0 - tanh_inner**2
        d_inner = self._COEFF * (1.0 + 3 * 0.044715 * x**2)
        grad = 0.5 * (1.0 + tanh_inner) + 0.5 * x * sech2 * d_inner
        return grad_output * grad


__all__ = ["ReLU", "LeakyReLU", "Tanh", "GELU"]
