"""Normalisation layers (LayerNorm, BatchNorm1d).

LINKX and GloGNN apply normalisation between their MLP blocks; the SIGMA
architecture keeps the option available through these layers.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.module import Module, Parameter


class LayerNorm(Module):
    """Normalises each row to zero mean / unit variance with learnable affine."""

    def __init__(self, num_features: int, *, eps: float = 1e-5, name: str = "layernorm") -> None:
        super().__init__()
        self.num_features = num_features
        self.eps = float(eps)
        self.gamma = Parameter(np.ones(num_features), name=f"{name}.gamma")
        self.beta = Parameter(np.zeros(num_features), name=f"{name}.beta")
        self._cache: Optional[tuple] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        mean = inputs.mean(axis=1, keepdims=True)
        var = inputs.var(axis=1, keepdims=True)
        inv_std = 1.0 / np.sqrt(var + self.eps)
        normalized = (inputs - mean) * inv_std
        self._cache = (normalized, inv_std)
        return normalized * self.gamma.value + self.beta.value

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        normalized, inv_std = self._cache
        self.gamma.grad += (grad_output * normalized).sum(axis=0)
        self.beta.grad += grad_output.sum(axis=0)
        grad_norm = grad_output * self.gamma.value
        d = normalized.shape[1]
        # Standard layer-norm backward over the feature axis.
        grad_input = (
            grad_norm
            - grad_norm.mean(axis=1, keepdims=True)
            - normalized * (grad_norm * normalized).mean(axis=1, keepdims=True)
        ) * inv_std
        return grad_input


class BatchNorm1d(Module):
    """Batch normalisation over the node axis (full-batch training)."""

    def __init__(self, num_features: int, *, eps: float = 1e-5, momentum: float = 0.1,
                 name: str = "batchnorm") -> None:
        super().__init__()
        self.num_features = num_features
        self.eps = float(eps)
        self.momentum = float(momentum)
        self.gamma = Parameter(np.ones(num_features), name=f"{name}.gamma")
        self.beta = Parameter(np.zeros(num_features), name=f"{name}.beta")
        self.running_mean = np.zeros(num_features)
        self.running_var = np.ones(num_features)
        self._cache: Optional[tuple] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        if self.training:
            mean = inputs.mean(axis=0)
            var = inputs.var(axis=0)
            self.running_mean = (1 - self.momentum) * self.running_mean + self.momentum * mean
            self.running_var = (1 - self.momentum) * self.running_var + self.momentum * var
        else:
            mean, var = self.running_mean, self.running_var
        inv_std = 1.0 / np.sqrt(var + self.eps)
        normalized = (inputs - mean) * inv_std
        self._cache = (normalized, inv_std, inputs.shape[0])
        return normalized * self.gamma.value + self.beta.value

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        normalized, inv_std, batch = self._cache
        self.gamma.grad += (grad_output * normalized).sum(axis=0)
        self.beta.grad += grad_output.sum(axis=0)
        grad_norm = grad_output * self.gamma.value
        if not self.training:
            return grad_norm * inv_std
        grad_input = (
            grad_norm
            - grad_norm.mean(axis=0)
            - normalized * (grad_norm * normalized).mean(axis=0)
        ) * inv_std
        return grad_input


__all__ = ["LayerNorm", "BatchNorm1d"]
