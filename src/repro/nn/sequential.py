"""Sequential container."""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from repro.nn.module import Module


class Sequential(Module):
    """Runs child modules in order; backward runs them in reverse."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self.modules: List[Module] = list(modules)

    def append(self, module: Module) -> "Sequential":
        self.modules.append(module)
        return self

    def forward(self, inputs) -> np.ndarray:
        output = inputs
        for module in self.modules:
            output = module(output)
        return output

    def backward(self, grad_output):
        grad = grad_output
        for module in reversed(self.modules):
            grad = module.backward(grad)
            if grad is None:
                # A module with constant input (e.g. Linear over a sparse
                # adjacency) terminates the chain.
                break
        return grad

    def __len__(self) -> int:
        return len(self.modules)

    def __iter__(self) -> Iterable[Module]:
        return iter(self.modules)

    def __getitem__(self, index: int) -> Module:
        return self.modules[index]


__all__ = ["Sequential"]
