"""Dense affine layer supporting dense or sparse inputs.

Accepting a ``scipy.sparse`` input matters for the LINKX-style adjacency
embedding ``MLP_A(A)``: the paper stresses that ``A·W`` is computed with a
sparse-dense product without densifying ``A``, keeping the cost at ``O(m·f)``.
When the forward input is sparse no input gradient is produced (the
adjacency matrix is a constant), mirroring that usage.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np
import scipy.sparse as sp

from repro.nn.init import glorot_uniform, zeros
from repro.nn.module import Module, Parameter
from repro.utils.rng import RngLike

ArrayOrSparse = Union[np.ndarray, sp.spmatrix]


class Linear(Module):
    """``y = x @ W + b`` with Glorot-initialised weights."""

    def __init__(self, in_features: int, out_features: int, *, bias: bool = True,
                 rng: RngLike = None, name: str = "linear") -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("in_features and out_features must be positive")
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(glorot_uniform(in_features, out_features, rng=rng),
                                name=f"{name}.weight")
        self.bias: Optional[Parameter] = None
        if bias:
            self.bias = Parameter(zeros(out_features), name=f"{name}.bias")
        self._input: Optional[ArrayOrSparse] = None

    def forward(self, inputs: ArrayOrSparse) -> np.ndarray:
        if inputs.shape[1] != self.in_features:
            raise ValueError(
                f"expected input with {self.in_features} features, got {inputs.shape[1]}"
            )
        self._input = inputs
        output = inputs @ self.weight.value
        if sp.issparse(output):  # defensive: sparse @ dense returns ndarray already
            output = np.asarray(output.todense())
        if self.bias is not None:
            output = output + self.bias.value
        return output

    def backward(self, grad_output: np.ndarray) -> Optional[np.ndarray]:
        if self._input is None:
            raise RuntimeError("backward called before forward")
        inputs = self._input
        if sp.issparse(inputs):
            self.weight.grad += np.asarray(inputs.T @ grad_output)
            grad_input: Optional[np.ndarray] = None
        else:
            self.weight.grad += inputs.T @ grad_output
            grad_input = grad_output @ self.weight.value.T
        if self.bias is not None:
            self.bias.grad += grad_output.sum(axis=0)
        return grad_input


__all__ = ["Linear"]
