"""Weight initialisers."""

from __future__ import annotations

import numpy as np

from repro.utils.rng import RngLike, ensure_rng


def glorot_uniform(fan_in: int, fan_out: int, *, rng: RngLike = None) -> np.ndarray:
    """Glorot / Xavier uniform initialisation for a ``(fan_in, fan_out)`` matrix."""
    generator = ensure_rng(rng)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return generator.uniform(-limit, limit, size=(fan_in, fan_out))


def he_normal(fan_in: int, fan_out: int, *, rng: RngLike = None) -> np.ndarray:
    """He (Kaiming) normal initialisation, suited to ReLU networks."""
    generator = ensure_rng(rng)
    scale = np.sqrt(2.0 / fan_in)
    return generator.normal(0.0, scale, size=(fan_in, fan_out))


def zeros(*shape: int) -> np.ndarray:
    """All-zeros array, used for biases."""
    return np.zeros(shape, dtype=np.float64)


__all__ = ["glorot_uniform", "he_normal", "zeros"]
