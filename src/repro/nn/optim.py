"""Gradient-descent optimisers (SGD with momentum, Adam)."""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.nn.module import Parameter


class Optimizer:
    """Base optimiser: holds parameters and applies updates from their grads."""

    def __init__(self, parameters: Sequence[Parameter], *, lr: float,
                 weight_decay: float = 0.0) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        if weight_decay < 0:
            raise ValueError(f"weight_decay must be non-negative, got {weight_decay}")
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        self.lr = float(lr)
        self.weight_decay = float(weight_decay)

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, parameters: Sequence[Parameter], *, lr: float = 0.01,
                 momentum: float = 0.0, weight_decay: float = 0.0) -> None:
        super().__init__(parameters, lr=lr, weight_decay=weight_decay)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = float(momentum)
        self._velocity = [np.zeros_like(p.value) for p in self.parameters]

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.value
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                update = velocity
            else:
                update = grad
            param.value -= self.lr * update


class Adam(Optimizer):
    """Adam with decoupled weight decay (AdamW-style)."""

    def __init__(self, parameters: Sequence[Parameter], *, lr: float = 0.01,
                 betas: tuple[float, float] = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0) -> None:
        super().__init__(parameters, lr=lr, weight_decay=weight_decay)
        beta1, beta2 = betas
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.beta1, self.beta2 = float(beta1), float(beta2)
        self.eps = float(eps)
        self._step = 0
        self._m = [np.zeros_like(p.value) for p in self.parameters]
        self._v = [np.zeros_like(p.value) for p in self.parameters]

    def step(self) -> None:
        self._step += 1
        bias1 = 1.0 - self.beta1**self._step
        bias2 = 1.0 - self.beta2**self._step
        for param, m, v in zip(self.parameters, self._m, self._v):
            grad = param.grad
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            if self.weight_decay:
                param.value -= self.lr * self.weight_decay * param.value
            param.value -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


__all__ = ["Optimizer", "SGD", "Adam"]
