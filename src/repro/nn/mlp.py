"""Multi-layer perceptron convenience module.

Used as the building block of LINKX-style models: ``MLP_A`` embeds the
adjacency matrix, ``MLP_X`` embeds the features and ``MLP_H`` joins them
(paper Eq. (4)).
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np
import scipy.sparse as sp

from repro.nn.activations import ReLU
from repro.nn.dropout import Dropout
from repro.nn.linear import Linear
from repro.nn.module import Module
from repro.nn.sequential import Sequential
from repro.utils.rng import RngLike, ensure_rng


class MLP(Module):
    """A stack of ``Linear → ReLU → Dropout`` blocks with a linear head.

    Parameters
    ----------
    in_features, hidden_features, out_features:
        Layer widths.  ``num_layers = 1`` produces a single linear layer
        mapping ``in_features → out_features``.
    num_layers:
        Total number of linear layers.
    dropout:
        Dropout probability applied after every hidden activation.
    input_dropout:
        Optional dropout applied to the input itself (common for feature
        matrices); skipped automatically when the input is sparse.
    """

    def __init__(self, in_features: int, hidden_features: int, out_features: int,
                 *, num_layers: int = 2, dropout: float = 0.5,
                 input_dropout: float = 0.0, rng: RngLike = None,
                 name: str = "mlp") -> None:
        super().__init__()
        if num_layers < 1:
            raise ValueError(f"num_layers must be >= 1, got {num_layers}")
        generator = ensure_rng(rng)
        self.in_features = in_features
        self.out_features = out_features
        self.input_dropout = Dropout(input_dropout, rng=generator) if input_dropout > 0 else None
        blocks = []
        if num_layers == 1:
            blocks.append(Linear(in_features, out_features, rng=generator, name=f"{name}.0"))
        else:
            blocks.append(Linear(in_features, hidden_features, rng=generator, name=f"{name}.0"))
            blocks.append(ReLU())
            blocks.append(Dropout(dropout, rng=generator))
            for layer in range(1, num_layers - 1):
                blocks.append(Linear(hidden_features, hidden_features, rng=generator,
                                     name=f"{name}.{layer}"))
                blocks.append(ReLU())
                blocks.append(Dropout(dropout, rng=generator))
            blocks.append(Linear(hidden_features, out_features, rng=generator,
                                 name=f"{name}.{num_layers - 1}"))
        self.body = Sequential(*blocks)
        self._input_was_sparse = False

    def forward(self, inputs: Union[np.ndarray, sp.spmatrix]) -> np.ndarray:
        self._input_was_sparse = sp.issparse(inputs)
        if self.input_dropout is not None and not self._input_was_sparse:
            inputs = self.input_dropout(inputs)
        return self.body(inputs)

    def backward(self, grad_output: np.ndarray) -> Optional[np.ndarray]:
        grad = self.body.backward(grad_output)
        if grad is None:
            return None
        if self.input_dropout is not None and not self._input_was_sparse:
            grad = self.input_dropout.backward(grad)
        return grad


__all__ = ["MLP"]
