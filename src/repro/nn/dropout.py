"""Inverted dropout."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.module import Module
from repro.utils.rng import RngLike, ensure_rng


class Dropout(Module):
    """Randomly zeroes activations with probability ``p`` during training.

    Uses the inverted-dropout convention (surviving activations are scaled
    by ``1 / (1 - p)``) so evaluation is a no-op.
    """

    def __init__(self, p: float = 0.5, *, rng: RngLike = None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = float(p)
        self._rng = ensure_rng(rng)
        self._mask: Optional[np.ndarray] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        if not self.training or self.p == 0.0:
            self._mask = None
            return inputs
        keep = 1.0 - self.p
        self._mask = (self._rng.random(inputs.shape) < keep) / keep
        return inputs * self._mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_output
        return grad_output * self._mask


__all__ = ["Dropout"]
