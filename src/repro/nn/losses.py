"""Loss functions for full-batch node classification."""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

import numpy as np

from repro.nn.module import Parameter


def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    shifted = logits - logits.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=axis, keepdims=True)


def softmax_cross_entropy(logits: np.ndarray, labels: np.ndarray,
                          mask: Optional[np.ndarray] = None
                          ) -> Tuple[float, np.ndarray]:
    """Mean cross-entropy over (optionally masked) nodes and its gradient.

    Parameters
    ----------
    logits:
        ``(n, num_classes)`` raw scores.
    labels:
        ``(n,)`` integer class labels.
    mask:
        Either a boolean mask of length ``n`` or an integer index array
        selecting the nodes that contribute to the loss (the training set in
        transductive node classification).  The returned gradient has the
        full ``(n, num_classes)`` shape with zeros outside the mask.

    Returns
    -------
    (loss, grad):
        The scalar loss and ``d loss / d logits``.
    """
    labels = np.asarray(labels, dtype=np.int64).ravel()
    n, num_classes = logits.shape
    if labels.shape[0] != n:
        raise ValueError(f"labels must have length {n}, got {labels.shape[0]}")
    if (labels < 0).any() or (labels >= num_classes).any():
        raise ValueError("labels out of range for the given logits")

    if mask is None:
        indices = np.arange(n)
    else:
        mask = np.asarray(mask)
        indices = np.flatnonzero(mask) if mask.dtype == bool else mask.astype(np.int64)
    if indices.size == 0:
        raise ValueError("loss mask selects no nodes")

    probs = softmax(logits[indices], axis=1)
    picked = probs[np.arange(indices.size), labels[indices]]
    loss = float(-np.mean(np.log(np.clip(picked, 1e-12, None))))

    grad = np.zeros_like(logits)
    local = probs.copy()
    local[np.arange(indices.size), labels[indices]] -= 1.0
    grad[indices] = local / indices.size
    return loss, grad


def l2_regularization(parameters: Iterable[Parameter], weight_decay: float
                      ) -> Tuple[float, None]:
    """Explicit L2 penalty (the optimisers also support decoupled decay).

    Adds ``weight_decay * p`` to every parameter's gradient and returns the
    penalty value ``0.5 * weight_decay * Σ‖p‖²``.
    """
    if weight_decay < 0:
        raise ValueError(f"weight_decay must be non-negative, got {weight_decay}")
    total = 0.0
    if weight_decay == 0:
        return 0.0, None
    for param in parameters:
        total += 0.5 * weight_decay * float(np.sum(param.value**2))
        param.grad += weight_decay * param.value
    return total, None


__all__ = ["softmax", "softmax_cross_entropy", "l2_regularization"]
