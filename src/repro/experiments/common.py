"""Shared utilities for the experiment modules."""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

import numpy as np

from repro.datasets.dataset import Dataset
from repro.models.registry import create_model
from repro.training.config import TrainConfig
from repro.training.trainer import Trainer

# Training configuration mirroring the paper's protocol: derived from the
# library-wide TrainConfig defaults so the shared numbers (learning rate,
# epoch budget, optimizer, min_epochs) live in exactly one place.  The two
# overridden values are *intentional* paper-protocol divergences from the
# library defaults — weight decay 1e-3 (vs 5e-4) and patience 60 (vs 50)
# per the Table VI experiment sweep — pinned by the divergence test in
# tests/test_experiments.py.
DEFAULT_EXPERIMENT_CONFIG = TrainConfig().with_overrides(
    weight_decay=1e-3,
    patience=60,
    track_test_history=False,
)

# Reduced configuration used by the pytest-benchmark harness and smoke
# tests: the paper protocol with a shorter epoch budget.
QUICK_EXPERIMENT_CONFIG = DEFAULT_EXPERIMENT_CONFIG.with_overrides(
    max_epochs=60,
    patience=25,
)

# Small validation-based search grids, standing in for the paper's Table VI
# hyper-parameter search.  Only the parameters that matter for the comparison
# (the feature factor δ and SIGMA's MLP_H depth) are swept to keep runtimes
# laptop-friendly.
TUNING_GRIDS: Dict[str, List[Dict[str, object]]] = {
    "sigma": [
        {"delta": delta, "final_layers": layers}
        for delta in (0.3, 0.5, 0.7)
        for layers in (1, 2)
    ],
    "glognn": [{"delta": delta} for delta in (0.3, 0.5, 0.7)],
    "linkx": [{}],
}


def tune_hyperparameters(model_name: str, dataset: Dataset, *,
                         grid: Optional[Sequence[Mapping[str, object]]] = None,
                         config: Optional[TrainConfig] = None,
                         base_overrides: Optional[Mapping[str, object]] = None,
                         seed: int = 0) -> Dict[str, object]:
    """Pick the grid entry with the best validation accuracy on split 0.

    A lightweight stand-in for the paper's hyper-parameter search (Table VI):
    each candidate is trained once on the first split and judged by
    validation accuracy.  Returns the winning override dict (possibly empty).
    """
    candidates = list(grid if grid is not None else TUNING_GRIDS.get(model_name, [{}]))
    if not candidates:
        return dict(base_overrides or {})
    if len(candidates) == 1:
        merged = dict(base_overrides or {})
        merged.update(candidates[0])
        return merged
    config = config or QUICK_EXPERIMENT_CONFIG
    best_score = -1.0
    best: Mapping[str, object] = candidates[0]
    for candidate in candidates:
        overrides = dict(base_overrides or {})
        overrides.update(candidate)
        model = create_model(model_name, dataset.graph, rng=seed, **overrides)
        result = Trainer(model, config).fit(dataset.split(0))
        if result.best_val_accuracy > best_score:
            best_score = result.best_val_accuracy
            best = candidate
    merged = dict(base_overrides or {})
    merged.update(best)
    return merged


def format_table(rows: Iterable[Mapping[str, object]],
                 columns: Optional[Sequence[str]] = None,
                 *, float_format: str = "{:.2f}") -> str:
    """Render rows of dictionaries as a fixed-width ASCII table."""
    rows = [dict(row) for row in rows]
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())

    def render(value: object) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    rendered = [[render(row.get(col, "")) for col in columns] for row in rows]
    widths = [max(len(col), *(len(line[i]) for line in rendered))
              for i, col in enumerate(columns)]
    header = "  ".join(col.ljust(width) for col, width in zip(columns, widths))
    separator = "  ".join("-" * width for width in widths)
    body = "\n".join("  ".join(cell.ljust(width) for cell, width in zip(line, widths))
                     for line in rendered)
    return "\n".join([header, separator, body])


def mean_and_std(values: Sequence[float]) -> tuple[float, float]:
    """Mean and standard deviation, as reported in the paper's tables."""
    array = np.asarray(list(values), dtype=np.float64)
    if array.size == 0:
        return 0.0, 0.0
    return float(array.mean()), float(array.std())


__all__ = [
    "DEFAULT_EXPERIMENT_CONFIG",
    "QUICK_EXPERIMENT_CONFIG",
    "TUNING_GRIDS",
    "tune_hyperparameters",
    "format_table",
    "mean_and_std",
]
