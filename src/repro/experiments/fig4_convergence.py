"""Experiment E5 — Fig. 4: convergence (test accuracy vs training time).

For each large dataset, trains the leading baselines and SIGMA while
recording cumulative wall-clock time and test accuracy per epoch, producing
the series plotted in the paper's Fig. 4.  The quantitative summary reports
the time each model needs to reach 95% of its own final accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.datasets.registry import load_dataset
from repro.experiments.common import DEFAULT_EXPERIMENT_CONFIG, format_table
from repro.models.registry import create_model
from repro.training.config import TrainConfig
from repro.training.trainer import Trainer

DEFAULT_DATASETS = ("genius", "penn94", "arxiv-year", "pokec")
DEFAULT_MODELS = ("mixhop", "gcnii", "linkx", "glognn", "sigma")


@dataclass
class ConvergenceCurve:
    """One model's (time, test-accuracy) trajectory on one dataset."""

    model: str
    dataset: str
    times: np.ndarray
    accuracies: np.ndarray

    @property
    def final_accuracy(self) -> float:
        return float(self.accuracies[-1]) if self.accuracies.size else 0.0

    def time_to_fraction(self, fraction: float = 0.95) -> float:
        """Seconds needed to reach ``fraction`` of the final accuracy."""
        if self.accuracies.size == 0:
            return float("nan")
        target = fraction * self.accuracies.max()
        reached = np.flatnonzero(self.accuracies >= target)
        if reached.size == 0:
            return float(self.times[-1])
        return float(self.times[reached[0]])


@dataclass
class Fig4Result:
    curves: List[ConvergenceCurve] = field(default_factory=list)

    def rows(self) -> List[Dict[str, object]]:
        return [{
            "dataset": curve.dataset,
            "model": curve.model,
            "final_accuracy": round(100 * curve.final_accuracy, 2),
            "time_to_95pct": round(curve.time_to_fraction(0.95), 3),
            "total_time": round(float(curve.times[-1]) if curve.times.size else 0.0, 3),
        } for curve in self.curves]

    def curve(self, model: str, dataset: str) -> ConvergenceCurve:
        for entry in self.curves:
            if entry.model == model and entry.dataset == dataset:
                return entry
        raise KeyError(f"no curve for {model} on {dataset}")


def run(datasets: Sequence[str] = DEFAULT_DATASETS,
        models: Sequence[str] = DEFAULT_MODELS, *,
        scale_factor: float = 1.0, config: Optional[TrainConfig] = None,
        seed: int = 0) -> Fig4Result:
    """Record per-epoch accuracy/time curves for each (model, dataset)."""
    base = config or DEFAULT_EXPERIMENT_CONFIG
    config = base.with_overrides(track_test_history=True)
    result = Fig4Result()
    for dataset_name in datasets:
        dataset = load_dataset(dataset_name, seed=seed, scale_factor=scale_factor)
        for model_name in models:
            model = create_model(model_name, dataset.graph, rng=seed)
            trained = Trainer(model, config).fit(dataset.split(0))
            times = np.array([record.elapsed_seconds for record in trained.history])
            accuracies = np.array([record.test_accuracy for record in trained.history])
            result.curves.append(ConvergenceCurve(model=model_name, dataset=dataset_name,
                                                  times=times, accuracies=accuracies))
    return result


def main() -> None:  # pragma: no cover - CLI entry point
    result = run()
    print("Fig. 4 — convergence efficiency (time to 95% of final accuracy)")
    print(format_table(result.rows()))


if __name__ == "__main__":  # pragma: no cover
    main()
