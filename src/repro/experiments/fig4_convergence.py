"""Experiment E5 — Fig. 4: convergence (test accuracy vs training time).

For each large dataset, trains the leading baselines and SIGMA while
recording cumulative wall-clock time and test accuracy per epoch, producing
the series plotted in the paper's Fig. 4.  The quantitative summary reports
the time each model needs to reach 95% of its own final accuracy.

Declaratively: a (dataset × model) grid whose custom cell runner trains on
split 0 with ``track_test_history`` and records the per-epoch trajectory
(:func:`repro.api.run` only surfaces the aggregated summary).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.config import ExperimentCell, ExperimentSpec, RunSpec, grid_product
from repro.datasets.registry import load_dataset
from repro.experiments.common import DEFAULT_EXPERIMENT_CONFIG, format_table
from repro.experiments.engine import legacy_run, run_experiment
from repro.experiments.registry import experiment
from repro.training.config import TrainConfig

DEFAULT_DATASETS = ("genius", "penn94", "arxiv-year", "pokec")
DEFAULT_MODELS = ("mixhop", "gcnii", "linkx", "glognn", "sigma")

TITLE = "Fig. 4 — convergence efficiency (accuracy vs training time)"


@dataclass
class ConvergenceCurve:
    """One model's (time, test-accuracy) trajectory on one dataset."""

    model: str
    dataset: str
    times: np.ndarray
    accuracies: np.ndarray

    @property
    def final_accuracy(self) -> float:
        return float(self.accuracies[-1]) if self.accuracies.size else 0.0

    def time_to_fraction(self, fraction: float = 0.95) -> float:
        """Seconds needed to reach ``fraction`` of the final accuracy."""
        if self.accuracies.size == 0:
            return float("nan")
        target = fraction * self.accuracies.max()
        reached = np.flatnonzero(self.accuracies >= target)
        if reached.size == 0:
            return float(self.times[-1])
        return float(self.times[reached[0]])


@dataclass
class Fig4Result:
    curves: List[ConvergenceCurve] = field(default_factory=list)

    def rows(self) -> List[Dict[str, object]]:
        return [{
            "dataset": curve.dataset,
            "model": curve.model,
            "final_accuracy": round(100 * curve.final_accuracy, 2),
            "time_to_95pct": round(curve.time_to_fraction(0.95), 3),
            "total_time": round(float(curve.times[-1]) if curve.times.size else 0.0, 3),
        } for curve in self.curves]

    def curve(self, model: str, dataset: str) -> ConvergenceCurve:
        for entry in self.curves:
            if entry.model == model and entry.dataset == dataset:
                return entry
        raise KeyError(f"no curve for {model} on {dataset}")


def convergence_cell(cell: ExperimentCell) -> Dict[str, object]:
    """Train one (model, dataset) pair recording its per-epoch history."""
    from repro.api import build_model
    from repro.training.trainer import Trainer

    spec = cell.spec
    dataset = load_dataset(spec.dataset, seed=spec.seed,
                           scale_factor=spec.scale_factor)
    model = build_model(spec.model, dataset.graph, rng=spec.seed,
                        **spec.overrides)
    # The curve IS the per-epoch history: force tracking even when a train
    # override (e.g. the --quick transform) replaced the builder's config.
    train = spec.train.with_overrides(track_test_history=True)
    trained = Trainer(model, train).fit(dataset.split(0))
    return {
        "model": spec.model,
        "dataset": spec.dataset,
        "times": [float(record.elapsed_seconds) for record in trained.history],
        "accuracies": [float(record.test_accuracy) for record in trained.history],
    }


def spec(datasets: Sequence[str] = DEFAULT_DATASETS,
         models: Sequence[str] = DEFAULT_MODELS, *,
         scale_factor: float = 1.0, config: Optional[TrainConfig] = None,
         seed: int = 0) -> ExperimentSpec:
    """Per-epoch accuracy/time curves for each (model, dataset)."""
    datasets, models = list(datasets), list(models)
    train = (config or DEFAULT_EXPERIMENT_CONFIG).with_overrides(
        track_test_history=True)
    base = RunSpec(model=models[0], dataset=datasets[0], train=train,
                   seed=seed, scale_factor=scale_factor)
    return ExperimentSpec(
        name="fig4", title=TITLE, base=base,
        grid=grid_product({"dataset": datasets, "model": models}))


@experiment("fig4", title=TITLE, spec=spec, cell=convergence_cell)
def _reduce(spec: ExperimentSpec, cells) -> Fig4Result:
    result = Fig4Result()
    for outcome in cells:
        result.curves.append(ConvergenceCurve(
            model=outcome.spec.model,
            dataset=outcome.spec.dataset,
            times=np.asarray(outcome.record["times"], dtype=np.float64),
            accuracies=np.asarray(outcome.record["accuracies"], dtype=np.float64),
        ))
    return result


#: Deprecated shim — the historical ``run()`` arguments are the builder's.
run = legacy_run("fig4")


def main() -> None:  # pragma: no cover - CLI entry point
    result = run_experiment("fig4", print_result=False)
    print("Fig. 4 — convergence efficiency (time to 95% of final accuracy)")
    print(format_table(result.rows()))


if __name__ == "__main__":  # pragma: no cover
    main()
