"""Experiment harness: one module per table/figure of the paper.

Every experiment module exposes

* ``run(...)`` — returns a structured result object (rows, series, …);
* ``main()``  — runs at default scale and prints the paper-style artefact.

``python -m repro.experiments.runner --list`` shows all experiments;
``repro-experiment table5`` (console script) runs one of them.
"""

from repro.experiments.common import (
    DEFAULT_EXPERIMENT_CONFIG,
    QUICK_EXPERIMENT_CONFIG,
    format_table,
    tune_hyperparameters,
)

__all__ = [
    "DEFAULT_EXPERIMENT_CONFIG",
    "QUICK_EXPERIMENT_CONFIG",
    "format_table",
    "tune_hyperparameters",
]
