"""Declarative experiment harness: specs, registry, sweep engine, store.

Every table and figure of the paper is a **registered experiment**: a
frozen :class:`repro.config.ExperimentSpec` describing a *grid of
RunSpec cells* plus a reduction folding the per-cell records into the
paper artefact.  The pieces:

* :class:`repro.config.ExperimentSpec` — the declarative description
  (base ``RunSpec``, grid entries addressing ``model``/``dataset``/
  ``overrides.*``/``train.*``/``simrank.*`` or declared parameters,
  reduction knobs).  Smoke scaling is a spec transform:
  ``spec.with_base(scale_factor=0.25)`` / ``spec.with_train(...)``.
* :mod:`repro.experiments.registry` — the ``@experiment`` decorator
  binding name, spec builder, optional cell runner and reduction; it
  replaces the old string→module table and the signature-inspection
  dispatch (an unsupported knob is a hard ``ExperimentError``, never
  silently dropped).
* :mod:`repro.experiments.engine` — the sweep engine: expands the grid,
  resumes finished cells from the store, runs the rest under
  ``executor="serial" | "thread" | "process"`` (identical results for
  every executor and worker count) and reduces.
* :mod:`repro.experiments.store` — the resumable
  :class:`~repro.experiments.store.ArtifactStore`: per-cell records
  keyed by the cell's config hash (sidecar-manifest design like the
  operator cache) plus one versioned run-artefact file per experiment
  with the resolved spec embedded.

Entry points: :func:`run_experiment` / :func:`execute` in Python,
``repro-experiment <id>`` (or ``python -m repro.cli experiment <id>``)
on the command line — ``--list``, ``--describe``, ``--scale-factor``,
``--quick``, ``--executor``, ``--store``/``--resume``/``--force``.

The pre-registry ``module.run(**legacy)`` functions remain as deprecated
shims: one ``DeprecationWarning`` per call, identical results (they
delegate to the registry), covered by the repo-wide
``error::DeprecationWarning:repro`` filter that keeps in-repo callers
off the deprecated paths.
"""

from repro.config import ExperimentCell, ExperimentSpec, grid_product
from repro.experiments.common import (
    DEFAULT_EXPERIMENT_CONFIG,
    QUICK_EXPERIMENT_CONFIG,
    format_table,
    tune_hyperparameters,
)
from repro.experiments.engine import (
    CellOutcome,
    ExperimentRun,
    execute,
    run_experiment,
)
from repro.experiments.registry import (
    EXPERIMENT_MODULES,
    ExperimentDefinition,
    build_spec,
    experiment,
    get_experiment,
    list_experiments,
)
from repro.experiments.store import ArtifactStore, get_artifact_store

__all__ = [
    "DEFAULT_EXPERIMENT_CONFIG",
    "QUICK_EXPERIMENT_CONFIG",
    "format_table",
    "tune_hyperparameters",
    "ExperimentCell",
    "ExperimentSpec",
    "grid_product",
    "CellOutcome",
    "ExperimentRun",
    "execute",
    "run_experiment",
    "EXPERIMENT_MODULES",
    "ExperimentDefinition",
    "build_spec",
    "experiment",
    "get_experiment",
    "list_experiments",
    "ArtifactStore",
    "get_artifact_store",
]
