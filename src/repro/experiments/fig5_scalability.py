"""Experiment E6 — Fig. 5: scalability of SIGMA and GloGNN with graph size.

The paper scales pokec down/up over a geometric grid of edge counts and
plots learning time (and SIGMA's precomputation time) against edge count on
a log axis, observing near-linear scaling for both methods and a growing
speed-up of SIGMA over GloGNN.  This experiment does the same with the
synthetic pokec generator, varying the node count so the edge count follows
a geometric grid.

Declaratively: a (size level × model) grid; the cell runner generates the
synthetic graph at ``base.scale_factor / shrink**level``, so the shared
``scale_factor`` transform (``repro-experiment fig5 --scale-factor 0.5``)
rescales the whole grid — the flag can no longer be silently dropped the
way the pre-registry dispatch did for this module.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Optional, Sequence

from repro.config import (
    SIGMA_DEFAULT_SIMRANK,
    UNSET,
    ExperimentCell,
    ExperimentSpec,
    RunSpec,
    SimRankConfig,
    merge_experiment_simrank_kwargs,
)
from repro.datasets.dataset import Dataset
from repro.datasets.registry import get_spec
from repro.datasets.splits import stratified_splits
from repro.datasets.synthetic import generate_synthetic_graph
from repro.experiments.common import QUICK_EXPERIMENT_CONFIG, format_table
from repro.experiments.engine import run_experiment
from repro.experiments.registry import experiment
from repro.training.config import TrainConfig

TITLE = "Fig. 5 — scalability of SIGMA and GloGNN with graph size"


@dataclass
class ScalabilityPoint:
    """Timing of one model at one graph size."""

    model: str
    num_nodes: int
    num_edges: int
    precompute_seconds: float
    learning_seconds: float


@dataclass
class Fig5Result:
    points: List[ScalabilityPoint] = field(default_factory=list)

    def rows(self) -> List[Dict[str, object]]:
        return [{
            "model": point.model,
            "nodes": point.num_nodes,
            "edges": point.num_edges,
            "precompute": round(point.precompute_seconds, 3),
            "learn": round(point.learning_seconds, 3),
        } for point in self.points]

    def series(self, model: str) -> List[tuple[int, float]]:
        return [(point.num_edges, point.learning_seconds)
                for point in self.points if point.model == model]

    def speedup_trend(self) -> List[tuple[int, float]]:
        """Per-size speed-up of SIGMA over GloGNN (edges, ratio)."""
        sigma = {p.num_edges: p.learning_seconds for p in self.points if p.model == "sigma"}
        glognn = {p.num_edges: p.learning_seconds for p in self.points if p.model == "glognn"}
        shared = sorted(set(sigma) & set(glognn))
        return [(edges, glognn[edges] / sigma[edges]) for edges in shared if sigma[edges] > 0]


@lru_cache(maxsize=4)
def _sized_dataset(base_dataset: str, scale: float, seed: int) -> Dataset:
    """One size level's synthetic dataset, shared by every model cell.

    Generation is deterministic in ``(dataset, scale, seed)``, so the memo
    only removes the duplicate work of the per-model cells at one level —
    results are identical with or without it (cells stay pure).
    """
    graph_config = get_spec(base_dataset).build_config(scale)
    graph = generate_synthetic_graph(graph_config, seed=seed)
    splits = stratified_splits(graph.labels, num_splits=1, seed=seed + 1)
    return Dataset(graph=graph, splits=splits,
                   name=f"{base_dataset}@{scale:.3f}")


def scalability_cell(cell: ExperimentCell) -> Dict[str, object]:
    """Generate the level's graph, train one model, record the timings."""
    from repro.api import build_model
    from repro.training.trainer import Trainer

    spec = cell.spec
    scale = spec.scale_factor / (float(cell.params["shrink"])
                                 ** int(cell.params["level"]))
    dataset = _sized_dataset(spec.dataset, scale, spec.seed)
    graph = dataset.graph
    # spec.simrank is already None on the baseline cells (the grid
    # expansion drops the base config for non-SIGMA models).
    model = build_model(spec.model, graph, rng=spec.seed, simrank=spec.simrank)
    trained = Trainer(model, spec.train).fit(dataset.split(0))
    return {
        "model": spec.model,
        "num_nodes": int(graph.num_nodes),
        "num_edges": int(graph.num_edges),
        "precompute_seconds": float(trained.timing.precompute),
        "learning_seconds": float(trained.learning_time),
    }


def spec(*, base_dataset: str = "pokec", num_sizes: int = 4, shrink: float = 2.0,
         models: Sequence[str] = ("sigma", "glognn"),
         config: Optional[TrainConfig] = None, seed: int = 0,
         base_scale: float = 1.0,
         simrank: Optional[SimRankConfig] = None) -> ExperimentSpec:
    """Learning time across a geometric grid of graph sizes.

    The largest size is the base dataset at ``base_scale`` (the spec's
    shared ``scale_factor``); each subsequent level divides the node
    count by ``shrink``.  ``simrank`` configures the SIGMA cells'
    LocalPush precompute — the precompute column of this figure is
    exactly what the unified core accelerates.
    """
    base = RunSpec(model="sigma", dataset=base_dataset,
                   train=config or QUICK_EXPERIMENT_CONFIG, simrank=simrank,
                   seed=seed, scale_factor=base_scale)
    entries = [{"level": level, "model": model}
               for level in range(num_sizes) for model in models]
    return ExperimentSpec(name="fig5", title=TITLE, base=base,
                          grid=tuple(entries),
                          params={"level": 0, "shrink": shrink})


@experiment("fig5", title=TITLE, spec=spec, cell=scalability_cell)
def _reduce(spec: ExperimentSpec, cells) -> Fig5Result:
    result = Fig5Result()
    for outcome in cells:
        result.points.append(ScalabilityPoint(
            model=str(outcome.record["model"]),
            num_nodes=int(outcome.record["num_nodes"]),
            num_edges=int(outcome.record["num_edges"]),
            precompute_seconds=float(outcome.record["precompute_seconds"]),
            learning_seconds=float(outcome.record["learning_seconds"]),
        ))
    return result


def run(*args, simrank: Optional[SimRankConfig] = None,
        simrank_backend: object = UNSET, simrank_executor: object = UNSET,
        simrank_workers: object = UNSET, simrank_cache_dir: object = UNSET,
        **kwargs) -> Fig5Result:
    """Deprecated shim: run the registered ``fig5`` experiment."""
    import warnings

    warnings.warn(
        "fig5_scalability.run() is deprecated; use "
        "repro.experiments.run_experiment('fig5', ...) or the "
        "'repro-experiment fig5' CLI instead",
        DeprecationWarning, stacklevel=2)
    # Legacy keywords fold into the model-default config so the shim
    # reproduces the old behaviour (top-k 32 etc.) exactly.
    simrank = merge_experiment_simrank_kwargs(
        simrank, simrank_backend=simrank_backend,
        simrank_executor=simrank_executor, simrank_workers=simrank_workers,
        simrank_cache_dir=simrank_cache_dir, default=SIGMA_DEFAULT_SIMRANK)
    return run_experiment("fig5", *args, print_result=False, simrank=simrank,
                          **kwargs)


def main() -> None:  # pragma: no cover - CLI entry point
    result = run_experiment("fig5", print_result=False)
    print("Fig. 5 — scalability of SIGMA and GloGNN across graph sizes")
    print(format_table(result.rows()))
    for edges, ratio in result.speedup_trend():
        print(f"edges={edges}: SIGMA speed-up over GloGNN = {ratio:.2f}x")


if __name__ == "__main__":  # pragma: no cover
    main()
