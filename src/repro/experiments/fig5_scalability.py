"""Experiment E6 — Fig. 5: scalability of SIGMA and GloGNN with graph size.

The paper scales pokec down/up over a geometric grid of edge counts and
plots learning time (and SIGMA's precomputation time) against edge count on
a log axis, observing near-linear scaling for both methods and a growing
speed-up of SIGMA over GloGNN.  This experiment does the same with the
synthetic pokec generator, varying the node count so the edge count follows
a geometric grid.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.api import build_model
from repro.config import (
    SIGMA_DEFAULT_SIMRANK,
    SIMRANK_MODELS,
    UNSET,
    SimRankConfig,
    merge_experiment_simrank_kwargs,
)
from repro.datasets.dataset import Dataset
from repro.datasets.registry import get_spec
from repro.datasets.splits import stratified_splits
from repro.datasets.synthetic import generate_synthetic_graph
from repro.experiments.common import QUICK_EXPERIMENT_CONFIG, format_table
from repro.training.config import TrainConfig
from repro.training.trainer import Trainer


@dataclass
class ScalabilityPoint:
    """Timing of one model at one graph size."""

    model: str
    num_nodes: int
    num_edges: int
    precompute_seconds: float
    learning_seconds: float


@dataclass
class Fig5Result:
    points: List[ScalabilityPoint] = field(default_factory=list)

    def rows(self) -> List[Dict[str, object]]:
        return [{
            "model": point.model,
            "nodes": point.num_nodes,
            "edges": point.num_edges,
            "precompute": round(point.precompute_seconds, 3),
            "learn": round(point.learning_seconds, 3),
        } for point in self.points]

    def series(self, model: str) -> List[tuple[int, float]]:
        return [(point.num_edges, point.learning_seconds)
                for point in self.points if point.model == model]

    def speedup_trend(self) -> List[tuple[int, float]]:
        """Per-size speed-up of SIGMA over GloGNN (edges, ratio)."""
        sigma = {p.num_edges: p.learning_seconds for p in self.points if p.model == "sigma"}
        glognn = {p.num_edges: p.learning_seconds for p in self.points if p.model == "glognn"}
        shared = sorted(set(sigma) & set(glognn))
        return [(edges, glognn[edges] / sigma[edges]) for edges in shared if sigma[edges] > 0]


def run(*, base_dataset: str = "pokec", num_sizes: int = 4, shrink: float = 2.0,
        models: Sequence[str] = ("sigma", "glognn"),
        config: Optional[TrainConfig] = None, seed: int = 0,
        base_scale: float = 1.0,
        simrank: Optional[SimRankConfig] = None,
        simrank_backend: object = UNSET,
        simrank_executor: object = UNSET,
        simrank_workers: object = UNSET,
        simrank_cache_dir: object = UNSET) -> Fig5Result:
    """Measure learning time across a geometric grid of graph sizes.

    The largest size is the base dataset at ``base_scale``; each subsequent
    size divides the node count by ``shrink`` (edges shrink roughly
    proportionally, matching the paper's geometric grid of edge counts).
    ``simrank`` configures the SIGMA variants' LocalPush precompute — the
    precompute column of this figure is exactly what the unified core
    accelerates — including the ``(backend, executor, workers)`` plan and
    the persistent operator cache (a warm ``cache_dir`` makes repeated
    runs skip precompute entirely; the column then measures the cache
    load).  The pre-config keywords (``simrank_backend=`` …) remain as
    deprecated shims.
    """
    # Legacy keywords fold into the model-default config so the shim
    # reproduces the old behaviour (top-k 32 etc.) exactly.
    simrank = merge_experiment_simrank_kwargs(
        simrank, simrank_backend=simrank_backend,
        simrank_executor=simrank_executor, simrank_workers=simrank_workers,
        simrank_cache_dir=simrank_cache_dir, default=SIGMA_DEFAULT_SIMRANK)
    config = config or QUICK_EXPERIMENT_CONFIG
    spec = get_spec(base_dataset)
    result = Fig5Result()
    for level in range(num_sizes):
        scale = base_scale / (shrink**level)
        graph_config = spec.build_config(scale)
        graph = generate_synthetic_graph(graph_config, seed=seed)
        splits = stratified_splits(graph.labels, num_splits=1, seed=seed + 1)
        dataset = Dataset(graph=graph, splits=splits, name=f"{base_dataset}@{scale:.3f}")
        for model_name in models:
            operator_config = simrank if model_name in SIMRANK_MODELS else None
            model = build_model(model_name, graph, rng=seed,
                                simrank=operator_config)
            trained = Trainer(model, config).fit(dataset.split(0))
            result.points.append(ScalabilityPoint(
                model=model_name,
                num_nodes=graph.num_nodes,
                num_edges=graph.num_edges,
                precompute_seconds=trained.timing.precompute,
                learning_seconds=trained.learning_time,
            ))
    return result


def main() -> None:  # pragma: no cover - CLI entry point
    result = run()
    print("Fig. 5 — scalability of SIGMA and GloGNN across graph sizes")
    print(format_table(result.rows()))
    for edges, ratio in result.speedup_trend():
        print(f"edges={edges}: SIGMA speed-up over GloGNN = {ratio:.2f}x")


if __name__ == "__main__":  # pragma: no cover
    main()
