"""Experiment E1 — Fig. 1(b)/(c): PPR vs SimRank aggregation maps.

The paper visualises, for a centre node of the Texas graph, how much
aggregation weight PPR (local) and SimRank (global) place on every other
node, coloured by label.  The quantitative counterpart computed here is the
*label mass*: the fraction of total (off-self) aggregation weight assigned
to nodes with the same label as the centre node.  SimRank should place a
substantially larger fraction on same-label nodes than PPR under heterophily.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.datasets.registry import load_dataset
from repro.experiments.common import format_table
from repro.ppr.power import ppr_matrix_power
from repro.simrank.exact import exact_simrank
from repro.utils.rng import ensure_rng


@dataclass
class AggregationMap:
    """Aggregation scores of one operator with respect to one centre node."""

    operator: str
    center: int
    scores: np.ndarray
    same_label_mass: float
    top_neighbors: List[int]
    top_same_label_fraction: float


@dataclass
class Fig1Result:
    dataset: str
    centers: List[int] = field(default_factory=list)
    maps: List[AggregationMap] = field(default_factory=list)

    def rows(self) -> List[Dict[str, object]]:
        return [{
            "operator": entry.operator,
            "center": entry.center,
            "same_label_mass": round(entry.same_label_mass, 3),
            "top10_same_label": round(entry.top_same_label_fraction, 3),
        } for entry in self.maps]

    def mean_same_label_mass(self, operator: str) -> float:
        values = [entry.same_label_mass for entry in self.maps if entry.operator == operator]
        return float(np.mean(values)) if values else 0.0


def _label_mass(scores: np.ndarray, labels: np.ndarray, center: int,
                top: int = 10) -> AggregationMap | None:
    scores = scores.copy()
    scores[center] = 0.0
    total = scores.sum()
    if total <= 0:
        return None
    same = scores[labels == labels[center]].sum()
    order = np.argsort(scores)[::-1][:top]
    top_same = float(np.mean(labels[order] == labels[center]))
    return AggregationMap(operator="", center=center, scores=scores,
                          same_label_mass=float(same / total),
                          top_neighbors=[int(i) for i in order],
                          top_same_label_fraction=top_same)


def run(dataset_name: str = "texas", *, num_centers: int = 10, scale_factor: float = 1.0,
        ppr_alpha: float = 0.15, decay: float = 0.6, seed: int = 0) -> Fig1Result:
    """Compare PPR and SimRank aggregation maps on ``num_centers`` random nodes."""
    dataset = load_dataset(dataset_name, seed=seed, scale_factor=scale_factor)
    graph = dataset.graph
    rng = ensure_rng(seed)
    centers = rng.choice(graph.num_nodes, size=min(num_centers, graph.num_nodes),
                         replace=False)
    ppr = ppr_matrix_power(graph, alpha=ppr_alpha)
    simrank = exact_simrank(graph, decay=decay)
    result = Fig1Result(dataset=dataset_name, centers=[int(c) for c in centers])
    for center in centers:
        for operator_name, matrix in (("ppr", ppr), ("simrank", simrank)):
            entry = _label_mass(matrix[center], graph.labels, int(center))
            if entry is None:
                continue
            entry.operator = operator_name
            result.maps.append(entry)
    return result


def main() -> None:  # pragma: no cover - CLI entry point
    result = run()
    print("Fig. 1(b)/(c) — aggregation mass on same-label nodes (Texas)")
    print(format_table(result.rows()))
    print(f"\nmean same-label mass: PPR={result.mean_same_label_mass('ppr'):.3f}  "
          f"SimRank={result.mean_same_label_mass('simrank'):.3f}")


if __name__ == "__main__":  # pragma: no cover
    main()
