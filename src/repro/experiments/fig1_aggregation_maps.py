"""Experiment E1 — Fig. 1(b)/(c): PPR vs SimRank aggregation maps.

The paper visualises, for a centre node of the Texas graph, how much
aggregation weight PPR (local) and SimRank (global) place on every other
node, coloured by label.  The quantitative counterpart computed here is the
*label mass*: the fraction of total (off-self) aggregation weight assigned
to nodes with the same label as the centre node.  SimRank should place a
substantially larger fraction on same-label nodes than PPR under heterophily.

Declaratively: a single analytic cell; the operator knobs (``num_centers``,
``ppr_alpha``, ``decay``) are declared spec parameters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.config import ExperimentCell, ExperimentSpec, RunSpec
from repro.datasets.registry import load_dataset
from repro.experiments.common import format_table
from repro.experiments.engine import legacy_run, run_experiment
from repro.experiments.registry import experiment
from repro.ppr.power import ppr_matrix_power
from repro.simrank.exact import exact_simrank
from repro.utils.rng import ensure_rng

TITLE = "Fig. 1(b)/(c) — PPR vs SimRank aggregation maps"


@dataclass
class AggregationMap:
    """Aggregation scores of one operator with respect to one centre node.

    ``scores`` holds the full per-node weight vector on fresh in-process
    computations and is ``None`` when the map was rebuilt from a stored
    cell record (the store keeps only the label-mass summary).
    """

    operator: str = ""
    center: int = 0
    same_label_mass: float = 0.0
    top_neighbors: List[int] = field(default_factory=list)
    top_same_label_fraction: float = 0.0
    scores: Optional[np.ndarray] = None


@dataclass
class Fig1Result:
    dataset: str
    centers: List[int] = field(default_factory=list)
    maps: List[AggregationMap] = field(default_factory=list)

    def rows(self) -> List[Dict[str, object]]:
        return [{
            "operator": entry.operator,
            "center": entry.center,
            "same_label_mass": round(entry.same_label_mass, 3),
            "top10_same_label": round(entry.top_same_label_fraction, 3),
        } for entry in self.maps]

    def mean_same_label_mass(self, operator: str) -> float:
        values = [entry.same_label_mass for entry in self.maps if entry.operator == operator]
        return float(np.mean(values)) if values else 0.0


def _label_mass(scores: np.ndarray, labels: np.ndarray, center: int,
                top: int = 10) -> AggregationMap | None:
    scores = scores.copy()
    scores[center] = 0.0
    total = scores.sum()
    if total <= 0:
        return None
    same = scores[labels == labels[center]].sum()
    order = np.argsort(scores)[::-1][:top]
    top_same = float(np.mean(labels[order] == labels[center]))
    return AggregationMap(operator="", center=center, scores=scores,
                          same_label_mass=float(same / total),
                          top_neighbors=[int(i) for i in order],
                          top_same_label_fraction=top_same)


def aggregation_map_cell(cell: ExperimentCell) -> Dict[str, object]:
    """Compare PPR and SimRank aggregation maps on random centre nodes."""
    spec = cell.spec
    dataset = load_dataset(spec.dataset, seed=spec.seed,
                           scale_factor=spec.scale_factor)
    graph = dataset.graph
    rng = ensure_rng(spec.seed)
    centers = rng.choice(graph.num_nodes,
                         size=min(int(cell.params["num_centers"]),
                                  graph.num_nodes),
                         replace=False)
    ppr = ppr_matrix_power(graph, alpha=cell.params["ppr_alpha"])
    simrank = exact_simrank(graph, decay=cell.params["decay"])
    maps = []
    for center in centers:
        for operator_name, matrix in (("ppr", ppr), ("simrank", simrank)):
            entry = _label_mass(matrix[center], graph.labels, int(center))
            if entry is None:
                continue
            maps.append({
                "operator": operator_name,
                "center": entry.center,
                "same_label_mass": entry.same_label_mass,
                "top_neighbors": entry.top_neighbors,
                "top_same_label_fraction": entry.top_same_label_fraction,
            })
    return {"dataset": spec.dataset,
            "centers": [int(center) for center in centers],
            "maps": maps}


def spec(dataset_name: str = "texas", *, num_centers: int = 10,
         scale_factor: float = 1.0, ppr_alpha: float = 0.15,
         decay: float = 0.6, seed: int = 0) -> ExperimentSpec:
    """The PPR-vs-SimRank label-mass comparison on ``dataset_name``."""
    base = RunSpec(model="sigma", dataset=dataset_name, seed=seed,
                   scale_factor=scale_factor)
    return ExperimentSpec(
        name="fig1", title=TITLE, base=base,
        params={"num_centers": num_centers, "ppr_alpha": ppr_alpha,
                "decay": decay})


@experiment("fig1", title=TITLE, spec=spec, cell=aggregation_map_cell)
def _reduce(spec: ExperimentSpec, cells) -> Fig1Result:
    if not cells:
        return Fig1Result(dataset=spec.base.dataset)
    outcome = cells[0]
    result = Fig1Result(dataset=outcome.spec.dataset,
                        centers=[int(c) for c in outcome.record["centers"]])
    for entry in outcome.record["maps"]:
        result.maps.append(AggregationMap(
            operator=str(entry["operator"]),
            center=int(entry["center"]),
            same_label_mass=float(entry["same_label_mass"]),
            top_neighbors=[int(i) for i in entry["top_neighbors"]],
            top_same_label_fraction=float(entry["top_same_label_fraction"]),
        ))
    return result


#: Deprecated shim — the historical ``run()`` arguments are the builder's.
run = legacy_run("fig1")


def main() -> None:  # pragma: no cover - CLI entry point
    result = run_experiment("fig1", print_result=False)
    print("Fig. 1(b)/(c) — aggregation mass on same-label nodes (Texas)")
    print(format_table(result.rows()))
    print(f"\nmean same-label mass: PPR={result.mean_same_label_mass('ppr'):.3f}  "
          f"SimRank={result.mean_same_label_mass('simrank'):.3f}")


if __name__ == "__main__":  # pragma: no cover
    main()
