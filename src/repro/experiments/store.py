"""Resumable on-disk store for experiment cell results and artefacts.

The sweep engine (:mod:`repro.experiments.engine`) executes an
:class:`repro.config.ExperimentSpec` cell by cell; each completed cell is
a pure function of its resolved :class:`repro.config.RunSpec`, its extra
parameters and the cell-runner implementation.  This module persists the
per-cell records under a content-addressed key — the same
cache-and-resume discipline :mod:`repro.simrank.cache` applies to
operators — so a killed two-hour sweep re-invoked with ``--resume``
executes only the unfinished cells.

Store layout
------------
A store directory holds one JSON file per completed cell, a sidecar
manifest, and one append-only artefact file per experiment::

    <store-dir>/
        cell-<key>.json               # {"version", "runner", "spec",
                                      #  "params", "seconds", "record"}
        experiment-store-index.json   # manifest: per-entry experiment,
                                      #  runner, sizes (rebuildable from
                                      #  the cell files at any time)
        experiment-<name>.json        # append-only list of run records,
                                      #  each embedding the resolved spec

``<key>`` is the SHA-256 (truncated to 32 hex chars) of a canonical JSON
payload: the store format version, the cell runner's qualified name, the
cell's resolved ``RunSpec`` and its parameters.  The experiment *name* is
deliberately excluded — two experiments whose cells coincide share each
other's results (Fig. 2 re-reduces Table II's cells without recomputing
them).  Reduction-only knobs (``ExperimentSpec.reduction``) never enter
the key for the same reason.

Invalidation mirrors the operator cache: the version participates in the
key and is re-checked on load, the stored spec/params must match the
request exactly, and any unreadable or mismatched file is evicted
(deleted, counted in ``evictions``) and recomputed rather than trusted.
Writes are atomic (temp file + ``os.replace``).

Artefacts
---------
:meth:`ArtifactStore.append_artifact` generalises the
``benchmarks/bench_localpush.py`` record pattern: every executed sweep
appends one versioned record — resolved spec embedded, per-cell rows,
timings and cache accounting — to ``experiment-<name>.json``, so the
paper artefacts accumulate with full provenance.
"""

from __future__ import annotations

import contextlib
import json
import os
from pathlib import Path
from typing import Dict, Iterator, List, Optional

from repro.config import ExperimentCell
from repro.errors import ArtifactError
from repro.graphs.fingerprint import payload_digest

#: Bump to orphan every previously written cell record (e.g. when the
#: record schema or a cell runner's semantics change).
STORE_FORMAT_VERSION = 1

_CELL_PREFIX = "cell-"
_ARTIFACT_PREFIX = "experiment-"
_INDEX_NAME = "experiment-store-index.json"

#: Per-directory singleton registry so every consumer of the same store
#: directory shares one instance — and therefore one set of hit/miss
#: counters, which the resume tests assert on.
_STORE_REGISTRY: Dict[Path, "ArtifactStore"] = {}


def get_artifact_store(directory: str | os.PathLike) -> "ArtifactStore":
    """Return the shared :class:`ArtifactStore` for ``directory``.

    Memoised per resolved path (the :func:`repro.simrank.cache.
    get_operator_cache` pattern): repeated sweeps against the same
    directory reuse the instance and keep accumulating its counters.
    """
    path = Path(directory).expanduser().resolve()
    store = _STORE_REGISTRY.get(path)
    if store is None:
        store = ArtifactStore(path)
        _STORE_REGISTRY[path] = store
    return store


@contextlib.contextmanager
def _file_lock(path: Path) -> Iterator[None]:
    """Advisory exclusive lock serialising read-modify-write of ``path``.

    Two sweeps sharing a store directory (a pattern the cell manifest
    explicitly supports) must not interleave artifact appends — the loser
    of an unsynchronised read/replace race would silently drop the other
    run's record.  No-op where ``fcntl`` is unavailable.
    """
    try:
        import fcntl
    except ImportError:  # pragma: no cover - non-POSIX fallback
        yield
        return
    lock_path = path.with_name(path.name + ".lock")
    with open(lock_path, "w") as handle:
        fcntl.flock(handle, fcntl.LOCK_EX)
        try:
            yield
        finally:
            fcntl.flock(handle, fcntl.LOCK_UN)


def runner_name(cell_runner: object) -> str:
    """The stable identifier of a cell runner entering the cell key."""
    module = getattr(cell_runner, "__module__", "")
    qualname = getattr(cell_runner, "__qualname__", repr(cell_runner))
    return f"{module}.{qualname}"


class ArtifactStore:
    """On-disk store of completed experiment cells plus run artefacts.

    Prefer :func:`get_artifact_store` over direct construction so counter
    state is shared per directory.

    Counters
    --------
    ``hits`` (cells served from disk), ``misses`` (cells that had to be
    computed), ``stores`` (cell records written), ``evictions``
    (corrupt/stale/mismatched files deleted).
    """

    def __init__(self, directory: str | os.PathLike) -> None:
        self.directory = Path(directory).expanduser()
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
        except OSError as error:
            raise ArtifactError(
                f"cannot create artifact store directory "
                f"{str(self.directory)!r}: {error}") from None
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0

    # ------------------------------------------------------------------ #
    # Keys and paths
    # ------------------------------------------------------------------ #
    def key_for(self, cell: ExperimentCell, cell_runner: object) -> str:
        """Content-addressed key of one cell's work.

        Hashes the store format version, the runner identity and the
        cell's resolved ``(RunSpec, params)``; the experiment name and
        the reduction knobs stay out (see the module docstring).
        """
        return payload_digest({
            "version": STORE_FORMAT_VERSION,
            "runner": runner_name(cell_runner),
            "spec": cell.spec.to_dict(),
            "params": cell.params,
        })

    def cell_path(self, key: str) -> Path:
        return self.directory / f"{_CELL_PREFIX}{key}.json"

    def artifact_path(self, experiment: str) -> Path:
        return self.directory / f"{_ARTIFACT_PREFIX}{experiment}.json"

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob(f"{_CELL_PREFIX}*.json"))

    def clear(self) -> int:
        """Delete every cell record; returns the number removed."""
        removed = 0
        for path in self.directory.glob(f"{_CELL_PREFIX}*.json"):
            path.unlink()
            removed += 1
        self._index_path.unlink(missing_ok=True)
        return removed

    # ------------------------------------------------------------------ #
    # Sidecar manifest
    # ------------------------------------------------------------------ #
    @property
    def _index_path(self) -> Path:
        return self.directory / _INDEX_NAME

    def _load_index(self) -> dict:
        try:
            index = json.loads(self._index_path.read_text())
            if (not isinstance(index, dict)
                    or not isinstance(index.get("entries"), dict)):
                raise ValueError("malformed index")
        except Exception:
            index = {"version": STORE_FORMAT_VERSION, "entries": {}}
        return index

    def _save_index(self, index: dict) -> None:
        temp_path = self._index_path.with_name(
            self._index_path.name + f".tmp{os.getpid()}")
        try:
            temp_path.write_text(json.dumps(index, sort_keys=True))
            os.replace(temp_path, self._index_path)
        finally:
            temp_path.unlink(missing_ok=True)

    def _sync_index(self, index: dict) -> dict:
        """Reconcile the manifest with the directory contents.

        Entries whose file disappeared are dropped; unknown files (from
        an older revision or another process) are adopted from their
        embedded metadata, so the manifest always lists the directory.
        """
        entries = index["entries"]
        on_disk = {path.name[len(_CELL_PREFIX):-len(".json")]: path
                   for path in self.directory.glob(f"{_CELL_PREFIX}*.json")}
        for key in [key for key in entries if key not in on_disk]:
            del entries[key]
        for key, path in on_disk.items():
            if key in entries:
                continue
            try:
                payload = json.loads(path.read_text())
                entries[key] = {
                    "experiment": payload.get("experiment"),
                    "runner": payload.get("runner"),
                    "seconds": payload.get("seconds"),
                    "bytes": path.stat().st_size,
                }
            except Exception:
                continue  # unreadable; the load path will evict it
        return index

    # ------------------------------------------------------------------ #
    # Cell records
    # ------------------------------------------------------------------ #
    def load_cell(self, key: str, cell: ExperimentCell,
                  cell_runner: object) -> Optional[dict]:
        """The stored record for ``cell``, or ``None`` on a miss.

        The stored version, runner identity, spec and params must match
        the request exactly (key-collision and hand-edit guard, like the
        operator cache's parameter verification); any mismatch or
        deserialisation failure evicts the file and counts as a miss.
        """
        path = self.cell_path(key)
        if not path.exists():
            self.misses += 1
            return None
        try:
            payload = json.loads(path.read_text())
            if payload.get("version") != STORE_FORMAT_VERSION:
                raise ValueError("stale store format")
            if payload.get("runner") != runner_name(cell_runner):
                raise ValueError("runner mismatch")
            expected = json.loads(json.dumps(
                {"spec": cell.spec.to_dict(), "params": cell.params},
                default=str))
            if {"spec": payload.get("spec"),
                    "params": payload.get("params")} != expected:
                raise ValueError("cell parameter mismatch")
            record = payload["record"]
            if not isinstance(record, dict):
                raise ValueError("malformed record")
        except Exception:
            self.evictions += 1
            path.unlink(missing_ok=True)
            index = self._load_index()
            if key in index["entries"]:
                del index["entries"][key]
                self._save_index(index)
            self.misses += 1
            return None
        self.hits += 1
        return record

    def store_cell(self, key: str, cell: ExperimentCell, cell_runner: object,
                   record: dict, *, experiment: str, seconds: float = 0.0,
                   trace: Optional[dict] = None) -> Path:
        """Atomically persist one completed cell's record.

        ``trace`` is the cell's versioned span tree when the sweep ran
        under an enabled telemetry handle; it rides along in the payload
        (the key is untouched — tracing never invalidates stored cells)
        and is omitted entirely for untraced runs, so their payloads are
        byte-identical to the pre-telemetry format.
        """
        payload = {
            "version": STORE_FORMAT_VERSION,
            "experiment": experiment,
            "runner": runner_name(cell_runner),
            "spec": cell.spec.to_dict(),
            "params": cell.params,
            "seconds": seconds,
            "record": record,
        }
        if trace is not None:
            payload["trace"] = trace
        path = self.cell_path(key)
        temp_path = path.with_name(path.name + f".tmp{os.getpid()}")
        try:
            temp_path.write_text(json.dumps(payload, sort_keys=True,
                                            default=str))
            os.replace(temp_path, path)
        finally:
            temp_path.unlink(missing_ok=True)
        self.stores += 1
        index = self._sync_index(self._load_index())
        index["entries"][key] = {
            "experiment": experiment,
            "runner": runner_name(cell_runner),
            "seconds": seconds,
            "bytes": path.stat().st_size,
        }
        self._save_index(index)
        return path

    # ------------------------------------------------------------------ #
    # Run artefacts (the generalized bench_localpush record pattern)
    # ------------------------------------------------------------------ #
    def append_artifact(self, experiment: str, record: dict) -> Path:
        """Append one versioned run record to ``experiment-<name>.json``.

        The file holds a JSON list of records; a malformed existing file
        is preserved under ``.corrupt`` (never silently overwritten) and
        a fresh list is started.
        """
        path = self.artifact_path(experiment)
        with _file_lock(path):
            records: List[dict] = []
            if path.exists():
                try:
                    existing = json.loads(path.read_text())
                    if not isinstance(existing, list):
                        raise ValueError("artifact file must hold a list")
                    records = existing
                except Exception:
                    path.replace(path.with_suffix(path.suffix + ".corrupt"))
            records.append({"artifact_version": STORE_FORMAT_VERSION, **record})
            temp_path = path.with_name(path.name + f".tmp{os.getpid()}")
            try:
                temp_path.write_text(json.dumps(records, indent=2,
                                                sort_keys=True, default=str))
                os.replace(temp_path, path)
            finally:
                temp_path.unlink(missing_ok=True)
        return path

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"ArtifactStore({str(self.directory)!r}, hits={self.hits}, "
                f"misses={self.misses}, stores={self.stores}, "
                f"evictions={self.evictions})")


__all__ = ["ArtifactStore", "get_artifact_store", "runner_name",
           "STORE_FORMAT_VERSION"]
