"""Sweep engine: execute an :class:`~repro.config.ExperimentSpec` grid.

The engine is the single execution path behind every experiment — the
``repro-experiment`` CLI, the ``module.run()`` deprecation shims and the
benchmarks all funnel into :func:`execute`:

1. expand the spec into cells (:meth:`ExperimentSpec.cells`);
2. serve finished cells from the :class:`repro.experiments.store.
   ArtifactStore` when one is configured (``resume``; ``force``
   recomputes), so a killed sweep restarts where it died;
3. run the remaining cells through the experiment's cell runner under
   ``executor="serial" | "thread" | "process"`` — the executor names and
   default pool size are shared with the LocalPush engine core
   (:mod:`repro.simrank.engine`), and because every cell is a pure
   function of its ``(RunSpec, params)``, results are identical for
   every executor and worker count;
4. persist each fresh record, fold all records through the experiment's
   reduction, and append a versioned run artefact embedding the resolved
   spec.

The default cell runner, :func:`evaluation_cell`, executes the cell's
``RunSpec`` through :func:`repro.api.run` — a grid experiment whose cells
are plain training runs needs no runner of its own.
"""

from __future__ import annotations

import time
from concurrent.futures import (ProcessPoolExecutor, ThreadPoolExecutor,
                                as_completed)
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple

from repro.config import ExperimentCell, ExperimentSpec

if TYPE_CHECKING:  # pragma: no cover - typing-only imports
    from repro.config import RunSpec
    from repro.telemetry.runtime import Telemetry
    from repro.training.config import TrainConfig
    from repro.training.evaluation import EvaluationSummary
from repro.errors import ExperimentError
from repro.experiments.registry import ExperimentDefinition, build_spec, get_experiment
from repro.experiments.store import ArtifactStore, get_artifact_store
# Shared executor vocabulary and pool sizing of the LocalPush engine core.
from repro.simrank.engine import EXECUTORS, default_num_workers


def summary_record(summary: "EvaluationSummary") -> Dict[str, object]:
    """Full-precision JSON record of one repeated-evaluation summary.

    Unlike ``EvaluationSummary.as_row()`` nothing is rounded here: the
    reductions must reproduce the legacy modules' numbers (ranking ties
    included) exactly from the stored record.
    """
    return {
        "model": summary.model,
        "dataset": summary.dataset,
        "accuracies": [float(value) for value in summary.accuracies],
        "mean_accuracy": summary.mean_accuracy,
        "std_accuracy": summary.std_accuracy,
        "mean_learning_time": summary.mean_learning_time,
        "mean_precompute_time": summary.mean_precompute_time,
        "mean_aggregation_time": summary.mean_aggregation_time,
    }


def evaluation_cell(cell: ExperimentCell) -> Dict[str, object]:
    """Default cell runner: execute the cell's ``RunSpec`` end to end."""
    from repro.api import run

    return summary_record(run(cell.spec).summary)


def _execute_cell(cell_runner: Callable[[ExperimentCell], dict],
                  cell: ExperimentCell, trace: bool = False,
                  experiment: str = ""
                  ) -> Tuple[dict, float, Optional[Dict[str, object]]]:
    """Run one cell under a timer (module-level: process-pool picklable).

    With ``trace`` on, the cell runs under a *local* tracer (built here
    so the whole call stays picklable and works inside process-pool
    workers): an ``experiment.cell`` root span with an
    ``experiment.cell.run`` child around the runner call, plus whatever
    spans telemetry-aware layers underneath record.  The returned tree
    is the versioned ``SpanRecorder.tree()`` payload embedded in the run
    artefact's cell records.
    """
    start = time.perf_counter()
    if not trace:
        record = cell_runner(cell)
        return record, time.perf_counter() - start, None
    from repro.telemetry.tracing import SpanRecorder, Tracer

    recorder = SpanRecorder()
    tracer = Tracer([recorder])
    with tracer.span("experiment.cell", index=cell.index,
                     experiment=experiment):
        with tracer.span("experiment.cell.run"):
            record = cell_runner(cell)
    return record, time.perf_counter() - start, recorder.tree()


@dataclass(frozen=True)
class CellOutcome:
    """One executed (or resumed) cell: its record plus provenance."""

    cell: ExperimentCell
    record: Dict[str, object]
    seconds: float = 0.0
    cached: bool = False
    key: Optional[str] = None
    #: Versioned span tree of the traced execution (``None`` when the
    #: run was untraced or the cell was served from the store).
    trace: Optional[Dict[str, object]] = None

    @property
    def index(self) -> int:
        return self.cell.index

    @property
    def spec(self) -> "RunSpec":
        return self.cell.spec

    @property
    def params(self) -> Dict[str, object]:
        return self.cell.params


@dataclass
class ExperimentRun:
    """Outcome of :func:`execute`: the reduced result plus the sweep log."""

    spec: ExperimentSpec
    result: object
    outcomes: List[CellOutcome] = field(default_factory=list)
    executor: str = "serial"
    workers: Optional[int] = None
    seconds: float = 0.0

    @property
    def cells_executed(self) -> int:
        return sum(1 for outcome in self.outcomes if not outcome.cached)

    @property
    def cells_resumed(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.cached)

    def to_record(self) -> Dict[str, object]:
        """Versioned run record with the resolved spec embedded (the
        ``bench_localpush.py`` record pattern, generalized)."""
        rows = self.result.rows() if hasattr(self.result, "rows") else []
        return {
            "experiment": self.spec.name,
            "title": self.spec.title,
            # Record metadata only — never ordering, never in the rows
            # the bit-identical guarantee covers.
            "created_unix": time.time(),  # repro-lint: disable=R3
            "spec": self.spec.to_dict(),
            "executor": self.executor,
            "workers": self.workers,
            "seconds": self.seconds,
            "cells_executed": self.cells_executed,
            "cells_resumed": self.cells_resumed,
            "cells": [{
                "index": outcome.index,
                "key": outcome.key,
                "overrides": outcome.cell.overrides,
                "seconds": outcome.seconds,
                "cached": outcome.cached,
                "record": outcome.record,
                "trace": outcome.trace,
            } for outcome in self.outcomes],
            "rows": rows,
        }


def _run_pending(pending: Sequence[ExperimentCell],
                 cell_runner: Callable[[ExperimentCell], dict],
                 executor: str, workers: Optional[int],
                 on_complete: Callable[
                     [ExperimentCell, dict, float,
                      Optional[Dict[str, object]]], None],
                 trace: bool = False, experiment: str = ""
                 ) -> Dict[int, Tuple[dict, float, Optional[Dict[str, object]]]]:
    """Execute ``pending`` cells: ``{cell index: (record, s, trace)}``.

    ``on_complete`` fires (in the calling thread) as each cell finishes —
    the store persists cells incrementally there, so a sweep killed or
    raising mid-run keeps everything already completed and resumes from
    the unfinished cells.
    """
    if executor not in EXECUTORS:
        raise ExperimentError(
            f"unknown experiment executor {executor!r}; "
            f"expected one of {EXECUTORS}")
    if workers is not None and workers < 1:
        raise ExperimentError(f"workers must be a positive integer, "
                              f"got {workers!r}")
    results: Dict[int, Tuple[dict, float, Optional[Dict[str, object]]]] = {}
    if executor == "serial" or len(pending) <= 1:
        for cell in pending:
            record, seconds, tree = _execute_cell(cell_runner, cell, trace,
                                                  experiment)
            results[cell.index] = (record, seconds, tree)
            on_complete(cell, record, seconds, tree)
        return results
    pool_cls = ThreadPoolExecutor if executor == "thread" else ProcessPoolExecutor
    num_workers = min(workers or default_num_workers(), len(pending))
    with pool_cls(max_workers=num_workers) as pool:
        futures = {pool.submit(_execute_cell, cell_runner, cell, trace,
                               experiment): cell
                   for cell in pending}
        for future in as_completed(futures):
            cell = futures[future]
            record, seconds, tree = future.result()
            results[cell.index] = (record, seconds, tree)
            on_complete(cell, record, seconds, tree)
    return results


def execute(spec: ExperimentSpec, *,
            definition: Optional[ExperimentDefinition] = None,
            executor: str = "serial", workers: Optional[int] = None,
            store: Optional[ArtifactStore | str] = None,
            resume: bool = True, force: bool = False,
            telemetry: Optional["Telemetry"] = None) -> ExperimentRun:
    """Execute ``spec`` cell by cell and reduce to the paper artefact.

    ``definition`` defaults to the registry entry under ``spec.name``.
    With a ``store``, finished cells are served from disk when ``resume``
    is true (``force`` recomputes and overwrites them), every fresh cell
    is persisted as it completes, and a run artefact is appended.

    With an enabled ``telemetry`` handle, every freshly executed cell is
    traced (see :func:`_execute_cell`); the span trees land in the run
    artefact's cell records (``trace`` key) and, when the handle carries
    a JSONL sink, are also appended there with run-unique span ids.
    """
    if not isinstance(spec, ExperimentSpec):
        raise ExperimentError(
            f"execute expects an ExperimentSpec, got {type(spec).__name__}")
    definition = definition or get_experiment(spec.name)
    cell_runner = definition.cell or evaluation_cell
    if isinstance(store, (str, bytes)) or hasattr(store, "__fspath__"):
        store = get_artifact_store(store)
    from repro.telemetry.runtime import resolve_telemetry

    telemetry = resolve_telemetry(telemetry)
    trace = telemetry.enabled

    started = time.perf_counter()
    cells = spec.cells()
    keys: Dict[int, Optional[str]] = {}
    resumed: Dict[int, dict] = {}
    pending: List[ExperimentCell] = []
    for cell in cells:
        key = store.key_for(cell, cell_runner) if store is not None else None
        keys[cell.index] = key
        if store is not None and resume and not force:
            record = store.load_cell(key, cell, cell_runner)
            if record is not None:
                resumed[cell.index] = record
                continue
        pending.append(cell)

    def persist(cell: ExperimentCell, record: dict, seconds: float,
                tree: Optional[Dict[str, object]] = None) -> None:
        # Incremental: each completed cell lands on disk immediately, so a
        # sweep killed mid-run resumes from exactly the unfinished cells.
        if store is not None:
            store.store_cell(keys[cell.index], cell, cell_runner, record,
                             experiment=spec.name, seconds=seconds,
                             trace=tree)

    executed = _run_pending(pending, cell_runner, executor, workers, persist,
                            trace, spec.name)

    outcomes: List[CellOutcome] = []
    for cell in cells:
        if cell.index in resumed:
            outcomes.append(CellOutcome(cell=cell, record=resumed[cell.index],
                                        cached=True, key=keys[cell.index]))
            continue
        record, seconds, tree = executed[cell.index]
        outcomes.append(CellOutcome(cell=cell, record=record, seconds=seconds,
                                    cached=False, key=keys[cell.index],
                                    trace=tree))

    if trace and telemetry.sink is not None:
        _emit_traces(telemetry, outcomes)
    result = definition.reduce(spec, outcomes)
    run = ExperimentRun(spec=spec, result=result, outcomes=outcomes,
                        executor=executor, workers=workers,
                        seconds=time.perf_counter() - started)
    if store is not None:
        store.append_artifact(spec.name, run.to_record())
    return run


def _emit_traces(telemetry: "Telemetry",
                 outcomes: Sequence[CellOutcome]) -> None:
    """Append every traced cell's spans to the handle's JSONL sink.

    Each cell was traced by its own local tracer (span ids start at 1 in
    every worker), so ids are offset per cell to stay unique across the
    whole run's trace file — ``repro-trace`` needs the parent links to
    resolve unambiguously.
    """
    sink = telemetry.sink
    assert sink is not None
    offset = 0
    for outcome in outcomes:
        if not outcome.trace:
            continue
        spans = outcome.trace.get("spans")
        if not isinstance(spans, list) or not spans:
            continue
        for span in spans:
            shifted = dict(span)
            shifted["span_id"] = int(shifted["span_id"]) + offset
            if shifted.get("parent_id") is not None:
                shifted["parent_id"] = int(shifted["parent_id"]) + offset
            sink.write(shifted)
        offset += max(int(span["span_id"]) for span in spans)


def run_experiment(name: str, *args: object, scale_factor: Optional[float] = None,
                   train: Optional["TrainConfig"] = None,
                   executor: str = "serial", workers: Optional[int] = None,
                   store: Optional[ArtifactStore | str] = None,
                   resume: bool = True, force: bool = False,
                   spec: Optional[ExperimentSpec] = None,
                   print_result: bool = True,
                   telemetry: Optional["Telemetry"] = None,
                   **overrides: object) -> object:
    """Run a registered experiment and return its result object.

    ``*args``/``**overrides`` are handed to the experiment's spec builder
    (unknown ones are a hard :class:`ExperimentError`); ``spec=`` runs a
    pre-built spec instead.  ``scale_factor`` and ``train`` are applied as
    spec transforms, so they reach *every* experiment by construction —
    no experiment can silently ignore them.
    """
    definition = get_experiment(name)
    if spec is None:
        spec = build_spec(name, *args, **overrides)
    elif args or overrides:
        raise ExperimentError(
            "pass either a pre-built spec or builder arguments, not both")
    if scale_factor is not None:
        spec = spec.with_base(scale_factor=scale_factor)
    if train is not None:
        spec = spec.with_train(train)
    run = execute(spec, definition=definition, executor=executor,
                  workers=workers, store=store, resume=resume, force=force,
                  telemetry=telemetry)
    if print_result:
        from repro.experiments.common import format_table

        rows = run.result.rows() if hasattr(run.result, "rows") else []
        print(f"== {definition.name} ==")
        print(format_table(rows))
    return run.result


def legacy_run(name: str) -> Callable[..., object]:
    """A deprecated ``module.run(**legacy)`` shim delegating to the registry.

    The returned function accepts the historical ``run()`` arguments
    (they are the spec builder's signature), emits exactly one
    :class:`DeprecationWarning`, and returns the same result object the
    declarative path produces — pinned bit/row-identical by the
    equivalence tests.
    """

    from repro.experiments.registry import EXPERIMENT_MODULES

    module = EXPERIMENT_MODULES.get(name, name).rsplit(".", 1)[-1]

    def run(*args: object, **kwargs: object) -> object:
        import warnings

        warnings.warn(
            f"{module}.run() is deprecated; use "
            f"repro.experiments.run_experiment({name!r}, ...) or the "
            f"'repro-experiment {name}' CLI instead",
            DeprecationWarning, stacklevel=2)
        return run_experiment(name, *args, print_result=False, **kwargs)

    run.__doc__ = (f"Deprecated: run experiment {name!r} through the "
                   f"registry (one DeprecationWarning per call).")
    return run


__all__ = ["CellOutcome", "ExperimentRun", "evaluation_cell",
           "summary_record", "execute", "run_experiment", "legacy_run"]
