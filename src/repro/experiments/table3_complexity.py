"""Experiment E14 — Table III: aggregation complexity comparison.

Table III of the paper is analytic: it lists the asymptotic aggregation and
inference complexity of each heterophilous GNN.  This module does two
things:

* reports the symbolic complexity expressions (the table itself), and
* instantiates them for a concrete graph (n, m, d, f, …) to produce
  *estimated operation counts*, confirming the ordering the paper argues
  for: SIGMA's ``O(k·n·f)`` aggregation is the smallest term once the graph
  is large (``k·n ≪ m ≤ n²``).

Declaratively: a single analytic cell; ``measure_precompute`` additionally
grounds the SIGMA row in a measured LocalPush timing under the base
``RunSpec``'s :class:`~repro.config.SimRankConfig`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.config import (
    UNSET,
    ExperimentCell,
    ExperimentSpec,
    RunSpec,
    SimRankConfig,
    merge_experiment_simrank_kwargs,
)
from repro.datasets.registry import load_dataset
from repro.experiments.common import format_table
from repro.experiments.engine import run_experiment
from repro.experiments.registry import experiment
from repro.graphs.graph import Graph

TITLE = "Table III — aggregation complexity comparison"


@dataclass(frozen=True)
class ComplexityEntry:
    """Symbolic and numeric aggregation cost for one model."""

    model: str
    aggregation: str
    inference: str
    estimated_ops: float


@dataclass
class Table3Result:
    dataset: str
    entries: List[ComplexityEntry] = field(default_factory=list)
    #: Measured SIGMA precompute (LocalPush + top-k) in seconds, when
    #: requested via ``measure_precompute``; keyed by backend name.
    measured_precompute: Dict[str, float] = field(default_factory=dict)

    def rows(self) -> List[Dict[str, object]]:
        return [{
            "model": entry.model,
            "aggregation": entry.aggregation,
            "inference": entry.inference,
            "estimated_ops": f"{entry.estimated_ops:.2e}",
        } for entry in self.entries]

    def cheapest_model(self) -> str:
        return min(self.entries, key=lambda entry: entry.estimated_ops).model


def complexity_table(graph: Graph, *, hidden: int = 64, num_layers: int = 2,
                     k_nearest: int = 5, num_relations: int = 3, k_hops: int = 3,
                     norm_layers: int = 2, top_k: int = 32) -> List[ComplexityEntry]:
    """Instantiate Table III's expressions for a concrete graph."""
    n = graph.num_nodes
    m = graph.num_directed_edges
    d = max(graph.average_degree, 1.0)
    f = hidden
    layers = num_layers
    entries = [
        ComplexityEntry(
            model="Geom-GCN",
            aggregation="O(n^2 f + m f)",
            inference="O(L n^2 f + L m f + n f^2)",
            estimated_ops=float(n * n * f + m * f),
        ),
        ComplexityEntry(
            model="GPNN",
            aggregation="O(n^2 f^2 + n f)",
            inference="O(n^2 f^2 + L m f + n f^2)",
            estimated_ops=float(n * n * f * f + n * f),
        ),
        ComplexityEntry(
            model="U-GCN",
            aggregation="O(d m f + n^2 f + k1 n f)",
            inference="O(d m f + n^2 f + k1 n f + n f^2)",
            estimated_ops=float(d * m * f + n * n * f + k_nearest * n * f),
        ),
        ComplexityEntry(
            model="WR-GAT",
            aggregation="O(L m f + L |R| n^2 f + n f^2)",
            inference="O(L |R| n^2 f + m f + L n f^2)",
            estimated_ops=float(layers * m * f + layers * num_relations * n * n * f
                                + n * f * f),
        ),
        ComplexityEntry(
            model="GloGNN",
            aggregation="O(k2 m f l_norm)",
            inference="O(L k2 m f l_norm + m f + L n f^2)",
            estimated_ops=float(k_hops * m * f * norm_layers),
        ),
        ComplexityEntry(
            model="SIGMA",
            aggregation="O(k n f)",
            inference="O(k n f + m f + n f^2)",
            estimated_ops=float(top_k * n * f),
        ),
    ]
    return entries


def complexity_cell(cell: ExperimentCell) -> Dict[str, object]:
    """Instantiate the analytic table (plus an optional measured timing)."""
    from repro.api import precompute

    spec = cell.spec
    dataset = load_dataset(spec.dataset, seed=spec.seed,
                           scale_factor=spec.scale_factor)
    entries = complexity_table(dataset.graph, hidden=cell.params["hidden"],
                               top_k=cell.params["top_k"])
    record: Dict[str, object] = {
        "dataset": spec.dataset,
        "entries": [{
            "model": entry.model,
            "aggregation": entry.aggregation,
            "inference": entry.inference,
            "estimated_ops": entry.estimated_ops,
        } for entry in entries],
        "measured_precompute": {},
    }
    if cell.params["measure_precompute"]:
        base = spec.simrank if spec.simrank is not None else SimRankConfig()
        operator = precompute(dataset.graph, base.with_overrides(
            method="localpush", epsilon=cell.params["epsilon"],
            top_k=cell.params["top_k"]))
        record["measured_precompute"] = {
            str(operator.backend or base.backend): operator.precompute_seconds}
    return record


def spec(dataset_name: str = "pokec", *, scale_factor: float = 1.0,
         hidden: int = 64, top_k: int = 32, seed: int = 0,
         measure_precompute: bool = False, epsilon: float = 0.1,
         simrank: Optional[SimRankConfig] = None) -> ExperimentSpec:
    """The complexity table for the requested benchmark graph.

    With ``measure_precompute=True`` the analytic SIGMA row is
    complemented by a measured LocalPush timing under ``simrank``'s
    ``(backend, executor, workers)`` plan; with a ``cache_dir`` in the
    config a repeated run measures the cache load instead.
    """
    base = RunSpec(model="sigma", dataset=dataset_name, simrank=simrank,
                   seed=seed, scale_factor=scale_factor)
    return ExperimentSpec(
        name="table3", title=TITLE, base=base,
        params={"hidden": hidden, "top_k": top_k, "epsilon": epsilon,
                "measure_precompute": bool(measure_precompute)})


@experiment("table3", title=TITLE, spec=spec, cell=complexity_cell)
def _reduce(spec: ExperimentSpec, cells) -> Table3Result:
    if not cells:
        return Table3Result(dataset=spec.base.dataset)
    outcome = cells[0]
    result = Table3Result(dataset=outcome.spec.dataset)
    for entry in outcome.record["entries"]:
        result.entries.append(ComplexityEntry(
            model=str(entry["model"]),
            aggregation=str(entry["aggregation"]),
            inference=str(entry["inference"]),
            estimated_ops=float(entry["estimated_ops"]),
        ))
    result.measured_precompute = {
        str(backend): float(seconds)
        for backend, seconds in outcome.record["measured_precompute"].items()}
    return result


def run(*args, simrank: Optional[SimRankConfig] = None,
        simrank_backend: object = UNSET, simrank_executor: object = UNSET,
        simrank_workers: object = UNSET, simrank_cache_dir: object = UNSET,
        **kwargs) -> Table3Result:
    """Deprecated shim: run the registered ``table3`` experiment."""
    import warnings

    warnings.warn(
        "table3_complexity.run() is deprecated; use "
        "repro.experiments.run_experiment('table3', ...) or the "
        "'repro-experiment table3' CLI instead",
        DeprecationWarning, stacklevel=2)
    simrank = merge_experiment_simrank_kwargs(
        simrank, simrank_backend=simrank_backend,
        simrank_executor=simrank_executor, simrank_workers=simrank_workers,
        simrank_cache_dir=simrank_cache_dir)
    return run_experiment("table3", *args, print_result=False, simrank=simrank,
                          **kwargs)


def main() -> None:  # pragma: no cover - CLI entry point
    result = run_experiment("table3", print_result=False)
    print(f"Table III — aggregation complexity, instantiated on {result.dataset}")
    print(format_table(result.rows()))
    print(f"cheapest aggregation: {result.cheapest_model()}")


if __name__ == "__main__":  # pragma: no cover
    main()
