"""Experiment E4 — Table VII: learning-time breakdown on large datasets.

Compares the decoupled heterophilous methods (LINKX, GloGNN, SIGMA) by
total learning time, split into precomputation (SIGMA's SimRank
construction) and aggregation (time spent inside the graph-aggregation
operators during training).  The expected shape is the paper's: SIGMA's
precompute is cheap, its aggregation is far cheaper than GloGNN's iterative
whole-graph aggregation, and SIGMA has the lowest total learning time.

Declaratively: a (model × dataset) grid of plain ``RunSpec`` cells — the
sweep engine's default cell runner executes each through ``repro.api.run``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.config import ExperimentSpec, RunSpec, grid_product
from repro.datasets.registry import LARGE_DATASETS
from repro.experiments.common import DEFAULT_EXPERIMENT_CONFIG, format_table
from repro.experiments.engine import legacy_run, run_experiment
from repro.experiments.registry import experiment
from repro.training.config import TrainConfig

DEFAULT_MODELS = ("linkx", "glognn", "sigma")

TITLE = "Table VII — learning-time breakdown on large datasets"


@dataclass
class Table7Result:
    """Timing rows per (model, dataset)."""

    datasets: List[str]
    models: List[str]
    rows_by_model: Dict[str, List[Dict[str, float]]] = field(default_factory=dict)

    def rows(self) -> List[Dict[str, object]]:
        rows = []
        for model in self.models:
            for entry in self.rows_by_model.get(model, []):
                rows.append({"model": model, **entry})
        return rows

    def learning_time(self, model: str, dataset: str) -> float:
        for entry in self.rows_by_model.get(model, []):
            if entry["dataset"] == dataset:
                return float(entry["learn"])
        raise KeyError(f"no timing entry for {model} on {dataset}")

    def average_speedup_over(self, baseline: str, *, target: str = "sigma") -> float:
        """Average of per-dataset ``baseline_learn / target_learn`` ratios."""
        ratios = []
        for dataset in self.datasets:
            target_time = self.learning_time(target, dataset)
            baseline_time = self.learning_time(baseline, dataset)
            if target_time > 0:
                ratios.append(baseline_time / target_time)
        return float(np.mean(ratios)) if ratios else 0.0


def spec(datasets: Sequence[str] = tuple(LARGE_DATASETS),
         models: Sequence[str] = DEFAULT_MODELS, *,
         num_repeats: int = 2, scale_factor: float = 1.0,
         config: Optional[TrainConfig] = None, seed: int = 0) -> ExperimentSpec:
    """The Pre./AGG/Learn breakdown grid: one RunSpec per (model, dataset)."""
    datasets, models = list(datasets), list(models)
    base = RunSpec(model=models[0], dataset=datasets[0],
                   train=config or DEFAULT_EXPERIMENT_CONFIG, seed=seed,
                   repeats=num_repeats, scale_factor=scale_factor)
    return ExperimentSpec(
        name="table7", title=TITLE, base=base,
        grid=grid_product({"model": models, "dataset": datasets}),
        reduction={"datasets": datasets, "models": models})


@experiment("table7", title=TITLE, spec=spec)
def _reduce(spec: ExperimentSpec, cells) -> Table7Result:
    result = Table7Result(datasets=list(spec.reduction["datasets"]),
                          models=list(spec.reduction["models"]))
    for model in result.models:
        result.rows_by_model[model] = []
    for outcome in cells:
        result.rows_by_model[outcome.spec.model].append({
            "dataset": outcome.spec.dataset,
            "pre": round(outcome.record["mean_precompute_time"], 3),
            "agg": round(outcome.record["mean_aggregation_time"], 3),
            "learn": round(outcome.record["mean_learning_time"], 3),
            "accuracy": round(100 * outcome.record["mean_accuracy"], 2),
        })
    return result


#: Deprecated shim — the historical ``run()`` arguments are the builder's.
run = legacy_run("table7")


def main() -> None:  # pragma: no cover - CLI entry point
    result = run_experiment("table7", print_result=False)
    print("Table VII — average learning time (s) on large-scale datasets")
    print(format_table(result.rows()))
    for baseline in result.models:
        if baseline == "sigma":
            continue
        speedup = result.average_speedup_over(baseline)
        print(f"SIGMA average speed-up over {baseline}: {speedup:.2f}x")


if __name__ == "__main__":  # pragma: no cover
    main()
