"""Experiment E3 — Table V: classification accuracy of SIGMA vs baselines.

Reproduces the paper's main accuracy comparison: every registered model is
trained on every benchmark with repeated splits, and models are ranked by
their average accuracy rank across datasets (the paper's ``Rank`` column).

The paper tunes each method per dataset (Table VI); here a small
validation-based grid (see :data:`repro.experiments.common.TUNING_GRIDS`)
plays that role for the decoupled models whose feature factor matters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.datasets.registry import list_datasets, load_dataset
from repro.experiments.common import (
    DEFAULT_EXPERIMENT_CONFIG,
    format_table,
    tune_hyperparameters,
)
from repro.training.config import TrainConfig
from repro.training.evaluation import EvaluationSummary, repeated_evaluation

DEFAULT_MODELS = (
    "mlp", "gcn", "sgc", "gat", "appnp", "mixhop", "gcnii", "gprgnn",
    "h2gcn", "acmgcn", "linkx", "glognn", "pprgo", "sigma",
)


@dataclass
class Table5Result:
    """Accuracy of every (model, dataset) pair plus average ranks."""

    datasets: List[str]
    models: List[str]
    summaries: Dict[str, Dict[str, EvaluationSummary]] = field(default_factory=dict)

    def accuracy(self, model: str, dataset: str) -> float:
        return self.summaries[model][dataset].mean_accuracy

    def ranks(self) -> Dict[str, float]:
        """Average rank of each model across datasets (1 = best)."""
        ranks: Dict[str, List[int]] = {model: [] for model in self.models}
        for dataset in self.datasets:
            scores = [(model, self.accuracy(model, dataset)) for model in self.models]
            ordered = sorted(scores, key=lambda pair: pair[1], reverse=True)
            for position, (model, _) in enumerate(ordered, start=1):
                ranks[model].append(position)
        return {model: float(np.mean(values)) for model, values in ranks.items()}

    def rows(self) -> List[Dict[str, object]]:
        ranks = self.ranks()
        rows = []
        for model in sorted(self.models, key=lambda m: ranks[m]):
            row: Dict[str, object] = {"model": model}
            for dataset in self.datasets:
                summary = self.summaries[model][dataset]
                row[dataset] = (f"{100 * summary.mean_accuracy:.1f}"
                                f"±{100 * summary.std_accuracy:.1f}")
            row["rank"] = round(ranks[model], 2)
            rows.append(row)
        return rows

    def best_model_per_dataset(self) -> Dict[str, str]:
        return {
            dataset: max(self.models, key=lambda model: self.accuracy(model, dataset))
            for dataset in self.datasets
        }


def run(datasets: Optional[Sequence[str]] = None,
        models: Sequence[str] = DEFAULT_MODELS, *,
        num_repeats: Optional[int] = None, scale_factor: float = 1.0,
        config: Optional[TrainConfig] = None, tune: bool = True,
        seed: int = 0) -> Table5Result:
    """Train ``models`` on ``datasets`` and collect accuracy summaries.

    Parameters
    ----------
    datasets:
        Benchmark names; defaults to all twelve.
    num_repeats:
        Number of repeated splits per dataset (defaults to the paper's 5/10).
    scale_factor:
        Node-count multiplier for quicker runs.
    tune:
        Whether to run the small per-dataset hyper-parameter grid for models
        with a tuning grid (SIGMA, GloGNN).
    """
    dataset_names = list(datasets) if datasets is not None else list_datasets()
    config = config or DEFAULT_EXPERIMENT_CONFIG
    result = Table5Result(datasets=dataset_names, models=list(models))
    for model_name in models:
        result.summaries[model_name] = {}
        for dataset_name in dataset_names:
            dataset = load_dataset(dataset_name, seed=seed, scale_factor=scale_factor)
            overrides: Dict[str, object] = {}
            if tune:
                overrides = tune_hyperparameters(model_name, dataset, seed=seed)
            summary = repeated_evaluation(model_name, dataset, num_repeats=num_repeats,
                                          config=config, seed=seed, **overrides)
            result.summaries[model_name][dataset_name] = summary
    return result


def main() -> None:  # pragma: no cover - CLI entry point
    result = run()
    print("Table V — classification accuracy (%) and average rank")
    print(format_table(result.rows()))
    best = result.best_model_per_dataset()
    wins = sum(1 for model in best.values() if model == "sigma")
    print(f"\nSIGMA is the best model on {wins}/{len(best)} datasets")


if __name__ == "__main__":  # pragma: no cover
    main()
