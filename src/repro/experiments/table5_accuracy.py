"""Experiment E3 — Table V: classification accuracy of SIGMA vs baselines.

Reproduces the paper's main accuracy comparison: every registered model is
trained on every benchmark with repeated splits, and models are ranked by
their average accuracy rank across datasets (the paper's ``Rank`` column).

The paper tunes each method per dataset (Table VI); here a small
validation-based grid (see :data:`repro.experiments.common.TUNING_GRIDS`)
plays that role for the decoupled models whose feature factor matters.
Declaratively: a (model × dataset) grid whose custom cell runner tunes
first (when the ``tune`` parameter is set) and then executes the tuned
``RunSpec`` through ``repro.api.run``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.config import ExperimentCell, ExperimentSpec, RunSpec, grid_product
from repro.datasets.registry import list_datasets, load_dataset
from repro.experiments.common import (
    DEFAULT_EXPERIMENT_CONFIG,
    format_table,
    tune_hyperparameters,
)
from repro.experiments.engine import legacy_run, run_experiment, summary_record
from repro.experiments.registry import experiment
from repro.training.config import TrainConfig

DEFAULT_MODELS = (
    "mlp", "gcn", "sgc", "gat", "appnp", "mixhop", "gcnii", "gprgnn",
    "h2gcn", "acmgcn", "linkx", "glognn", "pprgo", "sigma",
)

TITLE = "Table V — classification accuracy and average rank"


@dataclass
class Table5Result:
    """Accuracy of every (model, dataset) pair plus average ranks."""

    datasets: List[str]
    models: List[str]
    #: ``accuracies[model][dataset] = (mean, std)`` over the repeats.
    accuracies: Dict[str, Dict[str, Tuple[float, float]]] = field(default_factory=dict)

    def accuracy(self, model: str, dataset: str) -> float:
        return self.accuracies[model][dataset][0]

    def ranks(self) -> Dict[str, float]:
        """Average rank of each model across datasets (1 = best)."""
        ranks: Dict[str, List[int]] = {model: [] for model in self.models}
        for dataset in self.datasets:
            scores = [(model, self.accuracy(model, dataset)) for model in self.models]
            ordered = sorted(scores, key=lambda pair: pair[1], reverse=True)
            for position, (model, _) in enumerate(ordered, start=1):
                ranks[model].append(position)
        return {model: float(np.mean(values)) for model, values in ranks.items()}

    def rows(self) -> List[Dict[str, object]]:
        ranks = self.ranks()
        rows = []
        for model in sorted(self.models, key=lambda m: ranks[m]):
            row: Dict[str, object] = {"model": model}
            for dataset in self.datasets:
                mean, std = self.accuracies[model][dataset]
                row[dataset] = f"{100 * mean:.1f}±{100 * std:.1f}"
            row["rank"] = round(ranks[model], 2)
            rows.append(row)
        return rows

    def best_model_per_dataset(self) -> Dict[str, str]:
        return {
            dataset: max(self.models, key=lambda model: self.accuracy(model, dataset))
            for dataset in self.datasets
        }


def tuned_evaluation_cell(cell: ExperimentCell) -> Dict[str, object]:
    """Tune on split 0 (when requested), then execute the tuned RunSpec."""
    from repro.api import run

    spec = cell.spec
    tuned: Dict[str, object] = {}
    if cell.params["tune"]:
        dataset = load_dataset(spec.dataset, seed=spec.seed,
                               scale_factor=spec.scale_factor)
        tuned = tune_hyperparameters(spec.model, dataset, seed=spec.seed)
    result = run(spec.with_overrides(overrides={**spec.overrides, **tuned}))
    return {**summary_record(result.summary), "tuned_overrides": tuned}


def spec(datasets: Optional[Sequence[str]] = None,
         models: Sequence[str] = DEFAULT_MODELS, *,
         num_repeats: Optional[int] = None, scale_factor: float = 1.0,
         config: Optional[TrainConfig] = None, tune: bool = True,
         seed: int = 0) -> ExperimentSpec:
    """The accuracy grid over ``models`` × ``datasets``.

    ``datasets`` defaults to all twelve benchmarks; ``num_repeats`` to the
    paper's 5/10 protocol; ``tune`` runs the small per-dataset
    hyper-parameter grid for models with a tuning grid (SIGMA, GloGNN).
    """
    dataset_names = list(datasets) if datasets is not None else list_datasets()
    models = list(models)
    base = RunSpec(model=models[0], dataset=dataset_names[0],
                   train=config or DEFAULT_EXPERIMENT_CONFIG, seed=seed,
                   repeats=num_repeats, scale_factor=scale_factor)
    return ExperimentSpec(
        name="table5", title=TITLE, base=base,
        grid=grid_product({"model": models, "dataset": dataset_names}),
        params={"tune": bool(tune)},
        reduction={"datasets": dataset_names, "models": models})


@experiment("table5", title=TITLE, spec=spec, cell=tuned_evaluation_cell)
def _reduce(spec: ExperimentSpec, cells) -> Table5Result:
    result = Table5Result(datasets=list(spec.reduction["datasets"]),
                          models=list(spec.reduction["models"]))
    for outcome in cells:
        result.accuracies.setdefault(outcome.spec.model, {})
        result.accuracies[outcome.spec.model][outcome.spec.dataset] = (
            outcome.record["mean_accuracy"], outcome.record["std_accuracy"])
    return result


#: Deprecated shim — the historical ``run()`` arguments are the builder's.
run = legacy_run("table5")


def main() -> None:  # pragma: no cover - CLI entry point
    result = run_experiment("table5", print_result=False)
    print("Table V — classification accuracy (%) and average rank")
    print(format_table(result.rows()))
    best = result.best_model_per_dataset()
    wins = sum(1 for model in best.values() if model == "sigma")
    print(f"\nSIGMA is the best model on {wins}/{len(best)} datasets")


if __name__ == "__main__":  # pragma: no cover
    main()
