"""Experiment E10 — Table IX: sensitivity to the feature factor δ.

Sweeps δ over {0.1, 0.3, 0.5, 0.7, 0.9} on Penn94, arXiv-year and pokec and
reports the resulting SIGMA accuracy, showing that different datasets prefer
different balances between feature and adjacency embeddings.  Declaratively:
a (δ × dataset) grid of plain SIGMA ``RunSpec`` cells.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.config import ExperimentSpec, RunSpec, grid_product
from repro.experiments.common import DEFAULT_EXPERIMENT_CONFIG, format_table
from repro.experiments.engine import legacy_run, run_experiment
from repro.experiments.registry import experiment
from repro.training.config import TrainConfig

DEFAULT_DATASETS = ("penn94", "arxiv-year", "pokec")
DEFAULT_DELTAS = (0.1, 0.3, 0.5, 0.7, 0.9)

TITLE = "Table IX — sensitivity to the feature factor δ"


@dataclass
class Table9Result:
    """Accuracy per (δ, dataset)."""

    datasets: List[str]
    deltas: List[float]
    accuracies: Dict[float, Dict[str, float]] = field(default_factory=dict)

    def rows(self) -> List[Dict[str, object]]:
        rows = []
        for delta in self.deltas:
            row: Dict[str, object] = {"delta": delta}
            for dataset in self.datasets:
                row[dataset] = round(100 * self.accuracies[delta][dataset], 2)
            rows.append(row)
        return rows

    def best_delta(self, dataset: str) -> float:
        return max(self.deltas, key=lambda delta: self.accuracies[delta][dataset])


def spec(datasets: Sequence[str] = DEFAULT_DATASETS,
         deltas: Sequence[float] = DEFAULT_DELTAS, *,
         num_repeats: int = 2, scale_factor: float = 1.0,
         config: Optional[TrainConfig] = None, seed: int = 0,
         final_layers: int = 2) -> ExperimentSpec:
    """The δ sweep for SIGMA on the requested datasets."""
    datasets, deltas = list(datasets), list(deltas)
    base = RunSpec(model="sigma", dataset=datasets[0],
                   overrides={"final_layers": final_layers},
                   train=config or DEFAULT_EXPERIMENT_CONFIG, seed=seed,
                   repeats=num_repeats, scale_factor=scale_factor)
    return ExperimentSpec(
        name="table9", title=TITLE, base=base,
        grid=grid_product({"overrides.delta": deltas, "dataset": datasets}),
        reduction={"datasets": datasets, "deltas": deltas})


@experiment("table9", title=TITLE, spec=spec)
def _reduce(spec: ExperimentSpec, cells) -> Table9Result:
    result = Table9Result(datasets=list(spec.reduction["datasets"]),
                          deltas=list(spec.reduction["deltas"]))
    for outcome in cells:
        delta = outcome.spec.overrides["delta"]
        result.accuracies.setdefault(delta, {})
        result.accuracies[delta][outcome.spec.dataset] = (
            outcome.record["mean_accuracy"])
    return result


#: Deprecated shim — the historical ``run()`` arguments are the builder's.
run = legacy_run("table9")


def main() -> None:  # pragma: no cover - CLI entry point
    result = run_experiment("table9", print_result=False)
    print("Table IX — SIGMA accuracy (%) across feature-factor δ values")
    print(format_table(result.rows()))
    for dataset in result.datasets:
        print(f"best δ on {dataset}: {result.best_delta(dataset)}")


if __name__ == "__main__":  # pragma: no cover
    main()
