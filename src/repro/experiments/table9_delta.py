"""Experiment E10 — Table IX: sensitivity to the feature factor δ.

Sweeps δ over {0.1, 0.3, 0.5, 0.7, 0.9} on Penn94, arXiv-year and pokec and
reports the resulting SIGMA accuracy, showing that different datasets prefer
different balances between feature and adjacency embeddings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.datasets.registry import load_dataset
from repro.experiments.common import DEFAULT_EXPERIMENT_CONFIG, format_table
from repro.training.config import TrainConfig
from repro.training.evaluation import repeated_evaluation

DEFAULT_DATASETS = ("penn94", "arxiv-year", "pokec")
DEFAULT_DELTAS = (0.1, 0.3, 0.5, 0.7, 0.9)


@dataclass
class Table9Result:
    """Accuracy per (δ, dataset)."""

    datasets: List[str]
    deltas: List[float]
    accuracies: Dict[float, Dict[str, float]] = field(default_factory=dict)

    def rows(self) -> List[Dict[str, object]]:
        rows = []
        for delta in self.deltas:
            row: Dict[str, object] = {"delta": delta}
            for dataset in self.datasets:
                row[dataset] = round(100 * self.accuracies[delta][dataset], 2)
            rows.append(row)
        return rows

    def best_delta(self, dataset: str) -> float:
        return max(self.deltas, key=lambda delta: self.accuracies[delta][dataset])


def run(datasets: Sequence[str] = DEFAULT_DATASETS,
        deltas: Sequence[float] = DEFAULT_DELTAS, *,
        num_repeats: int = 2, scale_factor: float = 1.0,
        config: Optional[TrainConfig] = None, seed: int = 0,
        final_layers: int = 2) -> Table9Result:
    """Sweep δ for SIGMA on the requested datasets."""
    config = config or DEFAULT_EXPERIMENT_CONFIG
    result = Table9Result(datasets=list(datasets), deltas=list(deltas))
    for delta in deltas:
        result.accuracies[delta] = {}
        for dataset_name in datasets:
            dataset = load_dataset(dataset_name, seed=seed, scale_factor=scale_factor)
            summary = repeated_evaluation("sigma", dataset, num_repeats=num_repeats,
                                          config=config, seed=seed,
                                          delta=delta, final_layers=final_layers)
            result.accuracies[delta][dataset_name] = summary.mean_accuracy
    return result


def main() -> None:  # pragma: no cover - CLI entry point
    result = run()
    print("Table IX — SIGMA accuracy (%) across feature-factor δ values")
    print(format_table(result.rows()))
    for dataset in result.datasets:
        print(f"best δ on {dataset}: {result.best_delta(dataset)}")


if __name__ == "__main__":  # pragma: no cover
    main()
