"""Decorator-based registry of the paper's experiments.

Every experiment module registers itself with the :func:`experiment`
decorator::

    def spec(dataset_name="pokec", *, epsilons=..., ...) -> ExperimentSpec:
        ...build the declarative grid...

    @experiment("fig6", title="Fig. 6 — effect of ε and top-k", spec=spec)
    def _reduce(spec, cells) -> Fig6Result:
        ...fold the cell records into the paper artefact...

A registration binds together the three pieces of one experiment:

* the **spec builder** — a function returning the experiment's
  :class:`repro.config.ExperimentSpec` (its keyword arguments are the
  experiment's public knobs; calling it with none yields the paper
  defaults);
* the optional **cell runner** — ``cell=`` a module-level function
  ``(ExperimentCell) -> dict`` producing one cell's JSON record
  (defaults to the sweep engine's ``evaluation_cell``, which executes
  the cell's ``RunSpec`` through :func:`repro.api.run`);
* the **reduction** — the decorated function
  ``(ExperimentSpec, [CellOutcome]) -> result``, rebuilding the
  experiment's result object from the records.

The registry replaces the old string→module table *and* the
``inspect.signature`` dispatch: a knob that does not exist is a hard
:class:`repro.errors.ExperimentError` (:func:`build_spec` wraps the
builder's ``TypeError``), never silently dropped.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.config import ExperimentSpec
from repro.errors import ExperimentError

#: name → defining module; imported on demand so ``get_experiment`` works
#: without eagerly importing all fifteen experiment modules.
EXPERIMENT_MODULES: Dict[str, str] = {
    "fig1": "repro.experiments.fig1_aggregation_maps",
    "table2": "repro.experiments.table2_simrank_stats",
    "fig2": "repro.experiments.fig2_score_densities",
    "table3": "repro.experiments.table3_complexity",
    "table5": "repro.experiments.table5_accuracy",
    "table7": "repro.experiments.table7_learning_time",
    "fig4": "repro.experiments.fig4_convergence",
    "fig5": "repro.experiments.fig5_scalability",
    "fig6": "repro.experiments.fig6_epsilon_topk",
    "fig7": "repro.experiments.fig7_topk_tradeoff",
    "table8": "repro.experiments.table8_ablation",
    "table9": "repro.experiments.table9_delta",
    "table10": "repro.experiments.table10_alpha",
    "fig8": "repro.experiments.fig8_grouping",
    "table11": "repro.experiments.table11_iterative",
}

_REGISTRY: Dict[str, "ExperimentDefinition"] = {}


@dataclass(frozen=True)
class ExperimentDefinition:
    """One registered experiment: spec builder + cell runner + reduction."""

    name: str
    title: str
    builder: Callable[..., ExperimentSpec]
    reduce: Callable[..., object]
    cell: Optional[Callable[..., dict]] = None
    description: str = field(default="")

    def default_spec(self) -> ExperimentSpec:
        """The paper-default spec (the builder called with no arguments)."""
        return self.builder()


def experiment(name: str, *, title: str,
               spec: Callable[..., ExperimentSpec],
               cell: Optional[Callable[..., dict]] = None,
               description: str = "") -> Callable:
    """Register the decorated reduction under ``name`` (see module doc)."""

    def decorator(reduce_fn: Callable[..., object]) -> Callable[..., object]:
        key = name.lower()
        _REGISTRY[key] = ExperimentDefinition(
            name=key, title=title, builder=spec, reduce=reduce_fn, cell=cell,
            description=description or (spec.__doc__ or "").strip().split("\n")[0])
        return reduce_fn

    return decorator


def get_experiment(name: str) -> ExperimentDefinition:
    """The registered definition for ``name`` (importing its module)."""
    key = name.lower()
    if key not in EXPERIMENT_MODULES:
        raise ExperimentError(
            f"unknown experiment {name!r}; available: "
            f"{', '.join(sorted(EXPERIMENT_MODULES))}")
    if key not in _REGISTRY:
        importlib.import_module(EXPERIMENT_MODULES[key])
    if key not in _REGISTRY:  # pragma: no cover - registration bug guard
        raise ExperimentError(
            f"module {EXPERIMENT_MODULES[key]} did not register {name!r}")
    return _REGISTRY[key]


def list_experiments() -> List[ExperimentDefinition]:
    """All registered definitions, sorted by name (imports every module)."""
    return [get_experiment(name) for name in sorted(EXPERIMENT_MODULES)]


def build_spec(name: str, *args: object, **overrides: object) -> ExperimentSpec:
    """Build ``name``'s spec with the given builder arguments.

    An argument the builder does not accept raises
    :class:`ExperimentError` — the declarative replacement for the old
    signature-inspection dispatch that silently dropped unsupported
    flags.
    """
    definition = get_experiment(name)
    try:
        spec = definition.builder(*args, **overrides)
    except TypeError as error:
        raise ExperimentError(
            f"invalid arguments for experiment {definition.name!r}: {error}"
        ) from None
    if not isinstance(spec, ExperimentSpec):  # pragma: no cover - builder bug
        raise ExperimentError(
            f"builder of {definition.name!r} returned "
            f"{type(spec).__name__}, expected ExperimentSpec")
    return spec


__all__ = ["EXPERIMENT_MODULES", "ExperimentDefinition", "experiment",
           "get_experiment", "list_experiments", "build_spec"]
