"""Experiment E8 — Fig. 7: accuracy/runtime trade-off over the top-k scheme.

Fixes ε = 0.1 and sweeps k, recording total runtime (precompute + training)
and accuracy.  The paper's observation: accuracy saturates around k = 32
while the runtime keeps growing, motivating the practical choice
k ∈ {16, 32}.  Declaratively: a one-axis ``simrank.top_k`` grid over a
base SIGMA run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.config import (
    SIGMA_DEFAULT_SIMRANK,
    ExperimentSpec,
    RunSpec,
    SimRankConfig,
    grid_product,
)
from repro.experiments.common import DEFAULT_EXPERIMENT_CONFIG, format_table
from repro.experiments.engine import legacy_run, run_experiment
from repro.experiments.registry import experiment
from repro.training.config import TrainConfig

DEFAULT_TOP_KS = (4, 8, 16, 32, 64, 128)

TITLE = "Fig. 7 — accuracy/runtime trade-off over top-k"


@dataclass
class Fig7Result:
    dataset: str
    points: List[Dict[str, float]] = field(default_factory=list)

    def rows(self) -> List[Dict[str, object]]:
        return list(self.points)

    def accuracy_series(self) -> List[tuple[int, float]]:
        return [(int(point["top_k"]), float(point["accuracy"])) for point in self.points]

    def runtime_series(self) -> List[tuple[int, float]]:
        return [(int(point["top_k"]), float(point["runtime"])) for point in self.points]

    def saturation_k(self, tolerance: float = 0.5) -> int:
        """Smallest k whose accuracy is within ``tolerance`` points of the best."""
        best = max(float(point["accuracy"]) for point in self.points)
        eligible = [int(point["top_k"]) for point in self.points
                    if best - float(point["accuracy"]) <= tolerance]
        return min(eligible) if eligible else int(self.points[-1]["top_k"])


def spec(dataset_name: str = "pokec", *, top_ks: Sequence[int] = DEFAULT_TOP_KS,
         epsilon: float = 0.1, num_repeats: int = 1, scale_factor: float = 1.0,
         config: Optional[TrainConfig] = None, seed: int = 0,
         final_layers: int = 2,
         simrank: Optional[SimRankConfig] = None) -> ExperimentSpec:
    """Sweep k at fixed ε: ``simrank`` is the base operator configuration;
    each sweep point overrides only its ``top_k``."""
    base_simrank = (simrank if simrank is not None
                    else SIGMA_DEFAULT_SIMRANK).with_overrides(epsilon=epsilon)
    base = RunSpec(model="sigma", dataset=dataset_name,
                   overrides={"final_layers": final_layers},
                   train=config or DEFAULT_EXPERIMENT_CONFIG,
                   simrank=base_simrank, seed=seed, repeats=num_repeats,
                   scale_factor=scale_factor)
    return ExperimentSpec(name="fig7", title=TITLE, base=base,
                          grid=grid_product({"simrank.top_k": top_ks}))


@experiment("fig7", title=TITLE, spec=spec)
def _reduce(spec: ExperimentSpec, cells) -> Fig7Result:
    result = Fig7Result(dataset=spec.base.dataset)
    for outcome in cells:
        result.points.append({
            "top_k": outcome.spec.simrank.top_k,
            "accuracy": round(100 * outcome.record["mean_accuracy"], 2),
            "runtime": round(outcome.record["mean_learning_time"], 3),
            "aggregation": round(outcome.record["mean_aggregation_time"], 3),
        })
    return result


#: Deprecated shim — the historical ``run()`` arguments are the builder's.
run = legacy_run("fig7")


def main() -> None:  # pragma: no cover - CLI entry point
    result = run_experiment("fig7", print_result=False)
    print(f"Fig. 7 — accuracy/runtime trade-off over top-k on {result.dataset}")
    print(format_table(result.rows()))
    print(f"accuracy saturates at k = {result.saturation_k()}")


if __name__ == "__main__":  # pragma: no cover
    main()
