"""Experiment E8 — Fig. 7: accuracy/runtime trade-off over the top-k scheme.

Fixes ε = 0.1 and sweeps k, recording total runtime (precompute + training)
and accuracy.  The paper's observation: accuracy saturates around k = 32
while the runtime keeps growing, motivating the practical choice
k ∈ {16, 32}.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.config import SIGMA_DEFAULT_SIMRANK, SimRankConfig
from repro.datasets.registry import load_dataset
from repro.experiments.common import DEFAULT_EXPERIMENT_CONFIG, format_table
from repro.training.config import TrainConfig
from repro.training.evaluation import repeated_evaluation

DEFAULT_TOP_KS = (4, 8, 16, 32, 64, 128)


@dataclass
class Fig7Result:
    dataset: str
    points: List[Dict[str, float]] = field(default_factory=list)

    def rows(self) -> List[Dict[str, object]]:
        return list(self.points)

    def accuracy_series(self) -> List[tuple[int, float]]:
        return [(int(point["top_k"]), float(point["accuracy"])) for point in self.points]

    def runtime_series(self) -> List[tuple[int, float]]:
        return [(int(point["top_k"]), float(point["runtime"])) for point in self.points]

    def saturation_k(self, tolerance: float = 0.5) -> int:
        """Smallest k whose accuracy is within ``tolerance`` points of the best."""
        best = max(float(point["accuracy"]) for point in self.points)
        eligible = [int(point["top_k"]) for point in self.points
                    if best - float(point["accuracy"]) <= tolerance]
        return min(eligible) if eligible else int(self.points[-1]["top_k"])


def run(dataset_name: str = "pokec", *, top_ks: Sequence[int] = DEFAULT_TOP_KS,
        epsilon: float = 0.1, num_repeats: int = 1, scale_factor: float = 1.0,
        config: Optional[TrainConfig] = None, seed: int = 0,
        final_layers: int = 2,
        simrank: Optional[SimRankConfig] = None) -> Fig7Result:
    """Sweep k at fixed ε and record accuracy and total runtime.

    ``simrank`` is the base operator configuration; each sweep point
    overrides only its ``top_k`` (and the fixed ``epsilon``).
    """
    base = simrank if simrank is not None else SIGMA_DEFAULT_SIMRANK
    config = config or DEFAULT_EXPERIMENT_CONFIG
    dataset = load_dataset(dataset_name, seed=seed, scale_factor=scale_factor)
    result = Fig7Result(dataset=dataset_name)
    for top_k in top_ks:
        summary = repeated_evaluation(
            "sigma", dataset, num_repeats=num_repeats, config=config, seed=seed,
            simrank=base.with_overrides(epsilon=epsilon, top_k=top_k),
            final_layers=final_layers)
        result.points.append({
            "top_k": top_k,
            "accuracy": round(100 * summary.mean_accuracy, 2),
            "runtime": round(summary.mean_learning_time, 3),
            "aggregation": round(summary.mean_aggregation_time, 3),
        })
    return result


def main() -> None:  # pragma: no cover - CLI entry point
    result = run()
    print(f"Fig. 7 — accuracy/runtime trade-off over top-k on {result.dataset}")
    print(format_table(result.rows()))
    print(f"accuracy saturates at k = {result.saturation_k()}")


if __name__ == "__main__":  # pragma: no cover
    main()
