"""Experiment E2 (figure) — Fig. 2: SimRank score densities by pair type.

Produces, for each dataset, histogram densities of SimRank scores for
intra-class and inter-class node pairs.  The paper plots these as KDE
curves; here the densities are returned as arrays (and printed as a compact
text summary) so they can be plotted with any tool.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from repro.experiments.table2_simrank_stats import DEFAULT_DATASETS, run as run_table2


@dataclass
class Fig2Result:
    """Histogram densities per dataset."""

    histograms: Dict[str, Dict[str, np.ndarray]] = field(default_factory=dict)

    def rows(self) -> List[Dict[str, object]]:
        rows = []
        for name, hist in self.histograms.items():
            intra_centres, intra_density = hist["intra"]
            inter_centres, inter_density = hist["inter"]
            rows.append({
                "dataset": name,
                "intra_mode": round(float(intra_centres[np.argmax(intra_density)]), 3),
                "inter_mode": round(float(inter_centres[np.argmax(inter_density)]), 3),
                "bins": len(intra_centres),
            })
        return rows


def run(datasets: Sequence[str] = DEFAULT_DATASETS, *, scale_factor: float = 1.0,
        bins: int = 40, seed: int = 0) -> Fig2Result:
    """Compute the Fig. 2 densities (reusing the Table II computation)."""
    table2 = run_table2(datasets, scale_factor=scale_factor, seed=seed)
    result = Fig2Result()
    for name, stat in table2.stats.items():
        result.histograms[name] = stat.histogram(bins=bins)
    return result


def main() -> None:  # pragma: no cover - CLI entry point
    from repro.experiments.common import format_table

    result = run()
    print("Fig. 2 — SimRank score distributions (histogram mode per pair type)")
    print(format_table(result.rows()))


if __name__ == "__main__":  # pragma: no cover
    main()
