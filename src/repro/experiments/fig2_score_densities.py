"""Experiment E2 (figure) — Fig. 2: SimRank score densities by pair type.

Produces, for each dataset, histogram densities of SimRank scores for
intra-class and inter-class node pairs.  The paper plots these as KDE
curves; here the densities are returned as arrays (and printed as a compact
text summary) so they can be plotted with any tool.

Declaratively this spec *shares Table II's cells*: same grid, same cell
runner (:func:`repro.experiments.table2_simrank_stats.class_stats_cell`),
only the reduction differs (the histogram bin count lives in
``spec.reduction``, which never enters the cell key) — so running Fig. 2
against a store warmed by Table II recomputes nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from repro.config import ExperimentSpec
from repro.experiments import table2_simrank_stats
from repro.experiments.engine import legacy_run, run_experiment
from repro.experiments.registry import experiment
from repro.experiments.table2_simrank_stats import (
    DEFAULT_DATASETS,
    class_stats_cell,
    stats_from_record,
)

TITLE = "Fig. 2 — SimRank score distributions by pair type"


@dataclass
class Fig2Result:
    """Histogram densities per dataset."""

    histograms: Dict[str, Dict[str, np.ndarray]] = field(default_factory=dict)

    def rows(self) -> List[Dict[str, object]]:
        rows = []
        for name, hist in self.histograms.items():
            intra_centres, intra_density = hist["intra"]
            inter_centres, inter_density = hist["inter"]
            rows.append({
                "dataset": name,
                "intra_mode": round(float(intra_centres[np.argmax(intra_density)]), 3),
                "inter_mode": round(float(inter_centres[np.argmax(inter_density)]), 3),
                "bins": len(intra_centres),
            })
        return rows


def spec(datasets: Sequence[str] = DEFAULT_DATASETS, *, scale_factor: float = 1.0,
         bins: int = 40, seed: int = 0) -> ExperimentSpec:
    """Table II's cell grid with a histogram reduction on top."""
    base = table2_simrank_stats.spec(datasets, scale_factor=scale_factor,
                                     seed=seed)
    return base.with_overrides(name="fig2", title=TITLE,
                               reduction={"bins": bins})


@experiment("fig2", title=TITLE, spec=spec, cell=class_stats_cell)
def _reduce(spec: ExperimentSpec, cells) -> Fig2Result:
    bins = int(spec.reduction["bins"])
    result = Fig2Result()
    for outcome in cells:
        stat = stats_from_record(outcome.record)
        result.histograms[outcome.spec.dataset] = stat.histogram(bins=bins)
    return result


#: Deprecated shim — the historical ``run()`` arguments are the builder's.
run = legacy_run("fig2")


def main() -> None:  # pragma: no cover - CLI entry point
    from repro.experiments.common import format_table

    result = run_experiment("fig2", print_result=False)
    print("Fig. 2 — SimRank score distributions (histogram mode per pair type)")
    print(format_table(result.rows()))


if __name__ == "__main__":  # pragma: no cover
    main()
