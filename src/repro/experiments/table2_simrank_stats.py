"""Experiment E2 — Table II: intra- vs inter-class SimRank statistics.

The paper's Table II reports mean ± standard deviation of SimRank scores for
intra-class and inter-class node pairs on Texas, Chameleon, Cora and Pubmed,
showing that intra-class pairs consistently score higher.  Fig. 2 plots the
corresponding score densities — and, declaratively, *shares this
experiment's cells*: the Fig. 2 spec reuses :func:`class_stats_cell`, so a
warm :class:`~repro.experiments.store.ArtifactStore` serves one
experiment's cells to the other without recomputation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.config import ExperimentCell, ExperimentSpec, RunSpec
from repro.datasets.registry import load_dataset
from repro.experiments.common import format_table
from repro.experiments.engine import legacy_run, run_experiment
from repro.experiments.registry import experiment
from repro.simrank.analysis import SimRankClassStats, simrank_class_statistics
from repro.simrank.exact import exact_simrank

DEFAULT_DATASETS = ("texas", "chameleon", "cora", "pubmed")

TITLE = "Table II — intra- vs inter-class SimRank statistics"


@dataclass
class Table2Result:
    """Per-dataset intra/inter-class SimRank statistics."""

    stats: Dict[str, SimRankClassStats] = field(default_factory=dict)

    def rows(self) -> List[Dict[str, object]]:
        rows = []
        for name, stat in self.stats.items():
            rows.append({
                "dataset": name,
                "intra_mean": round(stat.intra_mean, 3),
                "intra_std": round(stat.intra_std, 3),
                "inter_mean": round(stat.inter_mean, 3),
                "inter_std": round(stat.inter_std, 3),
                "separation": round(stat.separation, 4),
            })
        return rows

    @property
    def all_separations_positive(self) -> bool:
        """The paper's headline claim: intra-class pairs score higher everywhere."""
        return all(stat.separation > 0 for stat in self.stats.values())


def class_stats_cell(cell: ExperimentCell) -> Dict[str, object]:
    """Exact SimRank + class-pair statistics for one dataset cell.

    The record carries the sampled intra/inter score populations so the
    Fig. 2 reduction can rebuild its histograms from stored cells.
    """
    spec = cell.spec
    dataset = load_dataset(spec.dataset, seed=spec.seed,
                           scale_factor=spec.scale_factor)
    scores = exact_simrank(dataset.graph, decay=cell.params["decay"])
    stat = simrank_class_statistics(dataset.graph, scores,
                                    num_pairs=cell.params["num_pairs"],
                                    seed=spec.seed)
    return {
        "dataset": spec.dataset,
        "graph_name": stat.dataset,
        "intra_mean": stat.intra_mean,
        "intra_std": stat.intra_std,
        "inter_mean": stat.inter_mean,
        "inter_std": stat.inter_std,
        "num_intra_pairs": stat.num_intra_pairs,
        "num_inter_pairs": stat.num_inter_pairs,
        "intra_scores": [float(v) for v in stat.intra_scores],
        "inter_scores": [float(v) for v in stat.inter_scores],
    }


def stats_from_record(record: Dict[str, object]) -> SimRankClassStats:
    """Rebuild a :class:`SimRankClassStats` from a stored cell record."""
    return SimRankClassStats(
        dataset=str(record["graph_name"]),
        intra_mean=float(record["intra_mean"]),
        intra_std=float(record["intra_std"]),
        inter_mean=float(record["inter_mean"]),
        inter_std=float(record["inter_std"]),
        num_intra_pairs=int(record["num_intra_pairs"]),
        num_inter_pairs=int(record["num_inter_pairs"]),
        intra_scores=np.asarray(record["intra_scores"], dtype=np.float64),
        inter_scores=np.asarray(record["inter_scores"], dtype=np.float64),
    )


def spec(datasets: Sequence[str] = DEFAULT_DATASETS, *, scale_factor: float = 1.0,
         decay: float = 0.6, num_pairs: int = 20000, seed: int = 0) -> ExperimentSpec:
    """Exact-SimRank class statistics for each requested dataset."""
    datasets = list(datasets)
    base = RunSpec(model="sigma", dataset=datasets[0], seed=seed,
                   scale_factor=scale_factor)
    return ExperimentSpec(
        name="table2", title=TITLE, base=base,
        grid=tuple({"dataset": name} for name in datasets),
        params={"decay": decay, "num_pairs": num_pairs})


@experiment("table2", title=TITLE, spec=spec, cell=class_stats_cell)
def _reduce(spec: ExperimentSpec, cells) -> Table2Result:
    result = Table2Result()
    for outcome in cells:
        result.stats[outcome.spec.dataset] = stats_from_record(outcome.record)
    return result


#: Deprecated shim — the historical ``run()`` arguments are the builder's.
run = legacy_run("table2")


def main() -> None:  # pragma: no cover - CLI entry point
    result = run_experiment("table2", print_result=False)
    print("Table II — mean & std of node-pair SimRank similarities")
    print(format_table(result.rows()))
    print(f"\nintra-class > inter-class on all datasets: {result.all_separations_positive}")


if __name__ == "__main__":  # pragma: no cover
    main()
