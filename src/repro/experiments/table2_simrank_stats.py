"""Experiment E2 — Table II: intra- vs inter-class SimRank statistics.

The paper's Table II reports mean ± standard deviation of SimRank scores for
intra-class and inter-class node pairs on Texas, Chameleon, Cora and Pubmed,
showing that intra-class pairs consistently score higher.  Fig. 2 plots the
corresponding score densities (see :mod:`repro.experiments.fig2_score_densities`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.datasets.registry import load_dataset
from repro.experiments.common import format_table
from repro.simrank.analysis import SimRankClassStats, simrank_class_statistics
from repro.simrank.exact import exact_simrank

DEFAULT_DATASETS = ("texas", "chameleon", "cora", "pubmed")


@dataclass
class Table2Result:
    """Per-dataset intra/inter-class SimRank statistics."""

    stats: Dict[str, SimRankClassStats] = field(default_factory=dict)

    def rows(self) -> List[Dict[str, object]]:
        rows = []
        for name, stat in self.stats.items():
            rows.append({
                "dataset": name,
                "intra_mean": round(stat.intra_mean, 3),
                "intra_std": round(stat.intra_std, 3),
                "inter_mean": round(stat.inter_mean, 3),
                "inter_std": round(stat.inter_std, 3),
                "separation": round(stat.separation, 4),
            })
        return rows

    @property
    def all_separations_positive(self) -> bool:
        """The paper's headline claim: intra-class pairs score higher everywhere."""
        return all(stat.separation > 0 for stat in self.stats.values())


def run(datasets: Sequence[str] = DEFAULT_DATASETS, *, scale_factor: float = 1.0,
        decay: float = 0.6, num_pairs: int = 20000, seed: int = 0) -> Table2Result:
    """Compute exact SimRank and class-pair statistics for each dataset."""
    result = Table2Result()
    for name in datasets:
        dataset = load_dataset(name, seed=seed, scale_factor=scale_factor)
        scores = exact_simrank(dataset.graph, decay=decay)
        result.stats[name] = simrank_class_statistics(
            dataset.graph, scores, num_pairs=num_pairs, seed=seed)
    return result


def main() -> None:  # pragma: no cover - CLI entry point
    result = run()
    print("Table II — mean & std of node-pair SimRank similarities")
    print(format_table(result.rows()))
    print(f"\nintra-class > inter-class on all datasets: {result.all_separations_positive}")


if __name__ == "__main__":  # pragma: no cover
    main()
