"""Experiment E11 — Table X: convergent values of the balance factor α.

SIGMA's update (Eq. (6)) mixes the global aggregation with the local
embedding through a learnable α initialised at 0.5.  The paper reports the
value α converges to on each large dataset: smaller values mean the model
leans more heavily on the global SimRank aggregation (notably on the highly
heterophilous snap-patents graph).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.datasets.registry import LARGE_DATASETS, load_dataset
from repro.experiments.common import DEFAULT_EXPERIMENT_CONFIG, format_table
from repro.models.registry import create_model
from repro.training.config import TrainConfig
from repro.training.trainer import Trainer


@dataclass
class Table10Result:
    """Converged α (mean over repeats) per dataset."""

    alphas: Dict[str, float] = field(default_factory=dict)
    homophily: Dict[str, float] = field(default_factory=dict)

    def rows(self) -> List[Dict[str, object]]:
        return [{"dataset": name, "alpha": round(alpha, 3),
                 "homophily": round(self.homophily.get(name, float("nan")), 3)}
                for name, alpha in self.alphas.items()]


def run(datasets: Sequence[str] = tuple(LARGE_DATASETS), *,
        num_repeats: int = 2, scale_factor: float = 1.0,
        config: Optional[TrainConfig] = None, seed: int = 0,
        final_layers: int = 2) -> Table10Result:
    """Train SIGMA with a learnable α and report its converged value."""
    config = config or DEFAULT_EXPERIMENT_CONFIG
    result = Table10Result()
    for dataset_name in datasets:
        dataset = load_dataset(dataset_name, seed=seed, scale_factor=scale_factor)
        values = []
        for repeat in range(min(num_repeats, dataset.num_splits)):
            model = create_model("sigma", dataset.graph, rng=seed + repeat,
                                 learn_alpha=True, final_layers=final_layers)
            Trainer(model, config).fit(dataset.split(repeat))
            values.append(model.alpha)
        result.alphas[dataset_name] = float(np.mean(values))
        result.homophily[dataset_name] = float(
            dataset.metadata.get("measured_homophily", float("nan")))
    return result


def main() -> None:  # pragma: no cover - CLI entry point
    result = run()
    print("Table X — converged values of α on the large-scale datasets")
    print(format_table(result.rows()))


if __name__ == "__main__":  # pragma: no cover
    main()
