"""Experiment E11 — Table X: convergent values of the balance factor α.

SIGMA's update (Eq. (6)) mixes the global aggregation with the local
embedding through a learnable α initialised at 0.5.  The paper reports the
value α converges to on each large dataset: smaller values mean the model
leans more heavily on the global SimRank aggregation (notably on the highly
heterophilous snap-patents graph).  Declaratively: a dataset grid whose
custom cell runner trains SIGMA per split and reads the converged
``model.alpha`` (a quantity :func:`repro.api.run` does not surface).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.config import ExperimentCell, ExperimentSpec, RunSpec
from repro.datasets.registry import LARGE_DATASETS, load_dataset
from repro.experiments.common import DEFAULT_EXPERIMENT_CONFIG, format_table
from repro.experiments.engine import legacy_run, run_experiment
from repro.experiments.registry import experiment
from repro.training.config import TrainConfig

TITLE = "Table X — convergent values of the balance factor α"


@dataclass
class Table10Result:
    """Converged α (mean over repeats) per dataset."""

    alphas: Dict[str, float] = field(default_factory=dict)
    homophily: Dict[str, float] = field(default_factory=dict)

    def rows(self) -> List[Dict[str, object]]:
        return [{"dataset": name, "alpha": round(alpha, 3),
                 "homophily": round(self.homophily.get(name, float("nan")), 3)}
                for name, alpha in self.alphas.items()]


def alpha_cell(cell: ExperimentCell) -> Dict[str, object]:
    """Train SIGMA with a learnable α on every split; record its mean."""
    from repro.api import build_model
    from repro.training.trainer import Trainer

    spec = cell.spec
    dataset = load_dataset(spec.dataset, seed=spec.seed,
                           scale_factor=spec.scale_factor)
    repeats = spec.repeats if spec.repeats is not None else dataset.num_splits
    values = []
    for repeat in range(min(repeats, dataset.num_splits)):
        model = build_model(spec.model, dataset.graph, rng=spec.seed + repeat,
                            **spec.overrides)
        Trainer(model, spec.train).fit(dataset.split(repeat))
        values.append(model.alpha)
    return {
        "dataset": spec.dataset,
        "alpha": float(np.mean(values)),
        "homophily": float(dataset.metadata.get("measured_homophily",
                                                float("nan"))),
    }


def spec(datasets: Sequence[str] = tuple(LARGE_DATASETS), *,
         num_repeats: int = 2, scale_factor: float = 1.0,
         config: Optional[TrainConfig] = None, seed: int = 0,
         final_layers: int = 2) -> ExperimentSpec:
    """The learnable-α sweep over the large datasets."""
    datasets = list(datasets)
    base = RunSpec(model="sigma", dataset=datasets[0],
                   overrides={"learn_alpha": True, "final_layers": final_layers},
                   train=config or DEFAULT_EXPERIMENT_CONFIG, seed=seed,
                   repeats=num_repeats, scale_factor=scale_factor)
    return ExperimentSpec(name="table10", title=TITLE, base=base,
                          grid=tuple({"dataset": name} for name in datasets))


@experiment("table10", title=TITLE, spec=spec, cell=alpha_cell)
def _reduce(spec: ExperimentSpec, cells) -> Table10Result:
    result = Table10Result()
    for outcome in cells:
        result.alphas[outcome.spec.dataset] = float(outcome.record["alpha"])
        result.homophily[outcome.spec.dataset] = float(outcome.record["homophily"])
    return result


#: Deprecated shim — the historical ``run()`` arguments are the builder's.
run = legacy_run("table10")


def main() -> None:  # pragma: no cover - CLI entry point
    result = run_experiment("table10", print_result=False)
    print("Table X — converged values of α on the large-scale datasets")
    print(format_table(result.rows()))


if __name__ == "__main__":  # pragma: no cover
    main()
