"""Experiment E7 — Fig. 6: effect of the error threshold ε and top-k on pokec.

Varies the LocalPush error threshold ε and the top-k pruning level of the
SimRank operator and records SIGMA's accuracy and precomputation time,
reproducing the paper's finding that ε = 0.1 with k ∈ {16, 32} is the sweet
spot: tighter ε or much larger k barely improve accuracy but inflate the
precomputation / aggregation cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.config import (
    SIGMA_DEFAULT_SIMRANK,
    UNSET,
    SimRankConfig,
    merge_experiment_simrank_kwargs,
)
from repro.datasets.registry import load_dataset
from repro.experiments.common import DEFAULT_EXPERIMENT_CONFIG, format_table
from repro.training.config import TrainConfig
from repro.training.evaluation import repeated_evaluation

DEFAULT_EPSILONS = (0.01, 0.05, 0.1)
DEFAULT_TOP_KS = (4, 16, 64, 256)


@dataclass
class Fig6Result:
    """Accuracy and timing per (ε, k) cell."""

    dataset: str
    cells: List[Dict[str, float]] = field(default_factory=list)

    def rows(self) -> List[Dict[str, object]]:
        return list(self.cells)

    def accuracy(self, epsilon: float, top_k: int) -> float:
        for cell in self.cells:
            if cell["epsilon"] == epsilon and cell["top_k"] == top_k:
                return float(cell["accuracy"])
        raise KeyError(f"no cell for epsilon={epsilon}, top_k={top_k}")

    def precompute(self, epsilon: float, top_k: int) -> float:
        for cell in self.cells:
            if cell["epsilon"] == epsilon and cell["top_k"] == top_k:
                return float(cell["precompute"])
        raise KeyError(f"no cell for epsilon={epsilon}, top_k={top_k}")


def run(dataset_name: str = "pokec", *, epsilons: Sequence[float] = DEFAULT_EPSILONS,
        top_ks: Sequence[int] = DEFAULT_TOP_KS, num_repeats: int = 1,
        scale_factor: float = 1.0, config: Optional[TrainConfig] = None,
        seed: int = 0, final_layers: int = 2,
        simrank: Optional[SimRankConfig] = None,
        simrank_backend: object = UNSET,
        simrank_executor: object = UNSET,
        simrank_workers: object = UNSET,
        simrank_cache_dir: object = UNSET) -> Fig6Result:
    """Sweep (ε, k) for SIGMA on ``dataset_name``.

    ``simrank`` is the *base* operator configuration shared by every
    cell — the LocalPush ``(backend, executor, workers)`` plan and the
    persistent cache directory; each grid cell overrides only its
    ``(epsilon, top_k)``.  Every cell is keyed separately in the cache
    *and* a warm cache can serve looser cells from tighter ones by
    cross-ε/k reuse, so repeated runs skip the whole precompute sweep.
    The pre-config keywords (``simrank_backend=`` …) remain as deprecated
    shims.
    """
    simrank = merge_experiment_simrank_kwargs(
        simrank, simrank_backend=simrank_backend,
        simrank_executor=simrank_executor, simrank_workers=simrank_workers,
        simrank_cache_dir=simrank_cache_dir)
    base = simrank if simrank is not None else SIGMA_DEFAULT_SIMRANK
    config = config or DEFAULT_EXPERIMENT_CONFIG
    dataset = load_dataset(dataset_name, seed=seed, scale_factor=scale_factor)
    result = Fig6Result(dataset=dataset_name)
    for epsilon in epsilons:
        for top_k in top_ks:
            cell = base.with_overrides(method="localpush", epsilon=epsilon,
                                       top_k=top_k)
            summary = repeated_evaluation(
                "sigma", dataset, num_repeats=num_repeats, config=config,
                seed=seed, simrank=cell, final_layers=final_layers)
            result.cells.append({
                "epsilon": epsilon,
                "top_k": top_k,
                "accuracy": round(100 * summary.mean_accuracy, 2),
                "precompute": round(summary.mean_precompute_time, 3),
                "learn": round(summary.mean_learning_time, 3),
            })
    return result


def main() -> None:  # pragma: no cover - CLI entry point
    result = run()
    print(f"Fig. 6 — effect of ε and top-k on {result.dataset}")
    print(format_table(result.rows()))


if __name__ == "__main__":  # pragma: no cover
    main()
