"""Experiment E7 — Fig. 6: effect of the error threshold ε and top-k on pokec.

Varies the LocalPush error threshold ε and the top-k pruning level of the
SimRank operator and records SIGMA's accuracy and precomputation time,
reproducing the paper's finding that ε = 0.1 with k ∈ {16, 32} is the sweet
spot: tighter ε or much larger k barely improve accuracy but inflate the
precomputation / aggregation cost.

Declaratively: a (ε × k) grid of ``RunSpec`` cells over one base SIGMA
run — every cell is keyed separately in the operator cache *and* in the
experiment :class:`~repro.experiments.store.ArtifactStore`, so repeated
sweeps skip both the precompute and the finished cells.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.config import (
    SIGMA_DEFAULT_SIMRANK,
    UNSET,
    ExperimentSpec,
    RunSpec,
    SimRankConfig,
    grid_product,
    merge_experiment_simrank_kwargs,
)
from repro.experiments.common import DEFAULT_EXPERIMENT_CONFIG, format_table
from repro.experiments.engine import run_experiment
from repro.experiments.registry import experiment
from repro.training.config import TrainConfig

DEFAULT_EPSILONS = (0.01, 0.05, 0.1)
DEFAULT_TOP_KS = (4, 16, 64, 256)

TITLE = "Fig. 6 — effect of the error threshold ε and top-k"


@dataclass
class Fig6Result:
    """Accuracy and timing per (ε, k) cell."""

    dataset: str
    cells: List[Dict[str, float]] = field(default_factory=list)

    def rows(self) -> List[Dict[str, object]]:
        return list(self.cells)

    def accuracy(self, epsilon: float, top_k: int) -> float:
        for cell in self.cells:
            if cell["epsilon"] == epsilon and cell["top_k"] == top_k:
                return float(cell["accuracy"])
        raise KeyError(f"no cell for epsilon={epsilon}, top_k={top_k}")

    def precompute(self, epsilon: float, top_k: int) -> float:
        for cell in self.cells:
            if cell["epsilon"] == epsilon and cell["top_k"] == top_k:
                return float(cell["precompute"])
        raise KeyError(f"no cell for epsilon={epsilon}, top_k={top_k}")


def spec(dataset_name: str = "pokec", *,
         epsilons: Sequence[float] = DEFAULT_EPSILONS,
         top_ks: Sequence[int] = DEFAULT_TOP_KS, num_repeats: int = 1,
         scale_factor: float = 1.0, config: Optional[TrainConfig] = None,
         seed: int = 0, final_layers: int = 2,
         simrank: Optional[SimRankConfig] = None) -> ExperimentSpec:
    """The declarative (ε × k) sweep for SIGMA on ``dataset_name``.

    ``simrank`` is the *base* operator configuration shared by every
    cell — the LocalPush ``(backend, executor, workers)`` plan and the
    persistent cache directory; each grid cell overrides only its
    ``(epsilon, top_k)``.
    """
    base_simrank = (simrank if simrank is not None
                    else SIGMA_DEFAULT_SIMRANK).with_overrides(method="localpush")
    base = RunSpec(model="sigma", dataset=dataset_name,
                   overrides={"final_layers": final_layers},
                   train=config or DEFAULT_EXPERIMENT_CONFIG,
                   simrank=base_simrank, seed=seed, repeats=num_repeats,
                   scale_factor=scale_factor)
    return ExperimentSpec(
        name="fig6", title=TITLE, base=base,
        grid=grid_product({"simrank.epsilon": epsilons,
                           "simrank.top_k": top_ks}))


@experiment("fig6", title=TITLE, spec=spec)
def _reduce(spec: ExperimentSpec, cells) -> Fig6Result:
    result = Fig6Result(dataset=spec.base.dataset)
    for outcome in cells:
        result.cells.append({
            "epsilon": outcome.spec.simrank.epsilon,
            "top_k": outcome.spec.simrank.top_k,
            "accuracy": round(100 * outcome.record["mean_accuracy"], 2),
            "precompute": round(outcome.record["mean_precompute_time"], 3),
            "learn": round(outcome.record["mean_learning_time"], 3),
        })
    return result


def run(*args, simrank: Optional[SimRankConfig] = None,
        simrank_backend: object = UNSET, simrank_executor: object = UNSET,
        simrank_workers: object = UNSET, simrank_cache_dir: object = UNSET,
        **kwargs) -> Fig6Result:
    """Deprecated shim: run the registered ``fig6`` experiment."""
    import warnings

    warnings.warn(
        "fig6_epsilon_topk.run() is deprecated; use "
        "repro.experiments.run_experiment('fig6', ...) or the "
        "'repro-experiment fig6' CLI instead",
        DeprecationWarning, stacklevel=2)
    simrank = merge_experiment_simrank_kwargs(
        simrank, simrank_backend=simrank_backend,
        simrank_executor=simrank_executor, simrank_workers=simrank_workers,
        simrank_cache_dir=simrank_cache_dir)
    return run_experiment("fig6", *args, print_result=False, simrank=simrank,
                          **kwargs)


def main() -> None:  # pragma: no cover - CLI entry point
    result = run_experiment("fig6", print_result=False)
    print(f"Fig. 6 — effect of ε and top-k on {result.dataset}")
    print(format_table(result.rows()))


if __name__ == "__main__":  # pragma: no cover
    main()
