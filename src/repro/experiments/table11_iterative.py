"""Experiment E13 — Table XI: iterative SIGMA aggregation.

Compares GCN with 1–3 layers against the iterative SIGMA variant with 1–3
SimRank propagation layers, reproducing the paper's observation that
replacing the adjacency with the SimRank operator (plus the LINKX-style
input features) lifts accuracy dramatically on heterophilous graphs while
the number of iterations matters little.  Declaratively: a
(depth × model × dataset) grid of plain ``RunSpec`` cells, each labelled
``gcn-L`` / ``sigma-L`` via a declared ``label`` parameter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.config import ExperimentSpec, RunSpec
from repro.datasets.registry import LARGE_DATASETS
from repro.experiments.common import DEFAULT_EXPERIMENT_CONFIG, format_table
from repro.experiments.engine import legacy_run, run_experiment
from repro.experiments.registry import experiment
from repro.training.config import TrainConfig

DEFAULT_LAYERS = (1, 2, 3)

TITLE = "Table XI — iterative SIGMA vs iterative GCN"


@dataclass
class Table11Result:
    """Accuracy per (model-depth, dataset)."""

    datasets: List[str]
    accuracies: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def rows(self) -> List[Dict[str, object]]:
        rows = []
        for label, per_dataset in self.accuracies.items():
            row: Dict[str, object] = {"model": label}
            for dataset in self.datasets:
                row[dataset] = round(100 * per_dataset[dataset], 2)
            rows.append(row)
        return rows

    def sigma_beats_gcn_everywhere(self, depth: int = 1) -> bool:
        sigma = self.accuracies[f"sigma-{depth}"]
        gcn = self.accuracies[f"gcn-{depth}"]
        return all(sigma[d] > gcn[d] for d in self.datasets)


def spec(datasets: Sequence[str] = tuple(LARGE_DATASETS),
         layers: Sequence[int] = DEFAULT_LAYERS, *,
         num_repeats: int = 2, scale_factor: float = 1.0,
         config: Optional[TrainConfig] = None, seed: int = 0) -> ExperimentSpec:
    """GCN-L vs iterative SIGMA-L for each depth L in ``layers``."""
    datasets = list(datasets)
    entries = []
    for depth in layers:
        for label, model_name in ((f"gcn-{depth}", "gcn"),
                                  (f"sigma-{depth}", "sigma_iterative")):
            for dataset in datasets:
                entries.append({"label": label, "model": model_name,
                                "overrides.num_layers": depth,
                                "dataset": dataset})
    base = RunSpec(model="gcn", dataset=datasets[0],
                   train=config or DEFAULT_EXPERIMENT_CONFIG, seed=seed,
                   repeats=num_repeats, scale_factor=scale_factor)
    return ExperimentSpec(name="table11", title=TITLE, base=base,
                          grid=tuple(entries), params={"label": ""},
                          reduction={"datasets": datasets})


@experiment("table11", title=TITLE, spec=spec)
def _reduce(spec: ExperimentSpec, cells) -> Table11Result:
    result = Table11Result(datasets=list(spec.reduction["datasets"]))
    for outcome in cells:
        label = str(outcome.params["label"])
        result.accuracies.setdefault(label, {})
        result.accuracies[label][outcome.spec.dataset] = (
            outcome.record["mean_accuracy"])
    return result


#: Deprecated shim — the historical ``run()`` arguments are the builder's.
run = legacy_run("table11")


def main() -> None:  # pragma: no cover - CLI entry point
    result = run_experiment("table11", print_result=False)
    print("Table XI — iterative SIGMA vs iterative GCN (accuracy %)")
    print(format_table(result.rows()))


if __name__ == "__main__":  # pragma: no cover
    main()
