"""Experiment E13 — Table XI: iterative SIGMA aggregation.

Compares GCN with 1–3 layers against the iterative SIGMA variant with 1–3
SimRank propagation layers, reproducing the paper's observation that
replacing the adjacency with the SimRank operator (plus the LINKX-style
input features) lifts accuracy dramatically on heterophilous graphs while
the number of iterations matters little.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.datasets.registry import LARGE_DATASETS, load_dataset
from repro.experiments.common import DEFAULT_EXPERIMENT_CONFIG, format_table
from repro.training.config import TrainConfig
from repro.training.evaluation import repeated_evaluation

DEFAULT_LAYERS = (1, 2, 3)


@dataclass
class Table11Result:
    """Accuracy per (model-depth, dataset)."""

    datasets: List[str]
    accuracies: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def rows(self) -> List[Dict[str, object]]:
        rows = []
        for label, per_dataset in self.accuracies.items():
            row: Dict[str, object] = {"model": label}
            for dataset in self.datasets:
                row[dataset] = round(100 * per_dataset[dataset], 2)
            rows.append(row)
        return rows

    def sigma_beats_gcn_everywhere(self, depth: int = 1) -> bool:
        sigma = self.accuracies[f"sigma-{depth}"]
        gcn = self.accuracies[f"gcn-{depth}"]
        return all(sigma[d] > gcn[d] for d in self.datasets)


def run(datasets: Sequence[str] = tuple(LARGE_DATASETS),
        layers: Sequence[int] = DEFAULT_LAYERS, *,
        num_repeats: int = 2, scale_factor: float = 1.0,
        config: Optional[TrainConfig] = None, seed: int = 0) -> Table11Result:
    """Train GCN-L and iterative SIGMA-L for each L in ``layers``."""
    config = config or DEFAULT_EXPERIMENT_CONFIG
    result = Table11Result(datasets=list(datasets))
    for depth in layers:
        for label, model_name, overrides in (
            (f"gcn-{depth}", "gcn", {"num_layers": depth}),
            (f"sigma-{depth}", "sigma_iterative", {"num_layers": depth}),
        ):
            result.accuracies.setdefault(label, {})
            for dataset_name in datasets:
                dataset = load_dataset(dataset_name, seed=seed, scale_factor=scale_factor)
                summary = repeated_evaluation(model_name, dataset, num_repeats=num_repeats,
                                              config=config, seed=seed, **overrides)
                result.accuracies[label][dataset_name] = summary.mean_accuracy
    return result


def main() -> None:  # pragma: no cover - CLI entry point
    result = run()
    print("Table XI — iterative SIGMA vs iterative GCN (accuracy %)")
    print(format_table(result.rows()))


if __name__ == "__main__":  # pragma: no cover
    main()
