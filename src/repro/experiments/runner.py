"""Command-line entry point for the declarative experiment registry.

A thin shell over :mod:`repro.experiments.engine`: every experiment is a
registered :class:`repro.config.ExperimentSpec` (grid of ``RunSpec``
cells + reduction), and the flags here are spec transforms and sweep
options — they apply to *every* experiment by construction, so no flag
can be silently dropped the way the old signature-inspection dispatch
dropped ``--scale-factor``.

Examples
--------
``repro-experiment --list``
``repro-experiment --describe fig6``
``repro-experiment table5``
``repro-experiment fig6 --scale-factor 0.25 --quick``
``repro-experiment fig6 --store artifacts/ --executor thread --workers 2``

The same interface is exposed as ``python -m repro.cli experiment …``.
"""

from __future__ import annotations

import argparse
import json
from typing import Optional

from repro.errors import ExperimentError
from repro.experiments.engine import run_experiment
from repro.experiments.registry import (
    EXPERIMENT_MODULES,
    build_spec,
    get_experiment,
    list_experiments,
)

#: Backward-compatible alias of the name → module table.
EXPERIMENTS = EXPERIMENT_MODULES


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiment",
        description="Regenerate a table or figure of the SIGMA paper from "
                    "its registered declarative spec.")
    parser.add_argument("experiment", nargs="?",
                        help="experiment id, e.g. table5 or fig6")
    parser.add_argument("--list", action="store_true",
                        help="list available experiments")
    parser.add_argument("--describe", action="store_true",
                        help="print the resolved spec as JSON instead of running")
    parser.add_argument("--scale-factor", type=float, default=None,
                        help="node-count multiplier for quicker runs "
                             "(applies to every experiment)")
    parser.add_argument("--quick", action="store_true",
                        help="train under the reduced smoke protocol "
                             "(QUICK_EXPERIMENT_CONFIG)")
    parser.add_argument("--executor", default="serial",
                        choices=("serial", "thread", "process"),
                        help="how the grid cells are executed (results are "
                             "identical for every executor)")
    parser.add_argument("--workers", type=int, default=None,
                        help="pool size for the thread/process executors")
    parser.add_argument("--store", default=None, metavar="DIR",
                        help="ArtifactStore directory: completed cells and "
                             "the versioned run artefact persist there, and "
                             "a re-run resumes from the finished cells")
    parser.add_argument("--no-resume", dest="resume", action="store_false",
                        help="ignore stored cells (they are still overwritten)")
    parser.add_argument("--force", action="store_true",
                        help="recompute every cell even when stored")
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="trace the sweep: per-cell span trees land in "
                             "the run artefact and a JSONL trace is "
                             "appended to PATH (summarise with repro-trace)")
    return parser


def main(argv: Optional[list[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    try:
        if args.list or not args.experiment:
            print("available experiments:")
            for definition in list_experiments():
                print(f"  {definition.name:10s} {definition.title}")
            return 0

        # Build the transformed spec once — the describe output IS the
        # spec the run branch executes, so the two cannot drift.
        spec = build_spec(args.experiment)
        if args.scale_factor is not None:
            spec = spec.with_base(scale_factor=args.scale_factor)
        if args.quick:
            from repro.experiments.common import QUICK_EXPERIMENT_CONFIG

            spec = spec.with_train(QUICK_EXPERIMENT_CONFIG)

        if args.describe:
            definition = get_experiment(args.experiment)
            from repro.experiments.engine import evaluation_cell
            from repro.experiments.store import runner_name

            print(json.dumps({
                "cells": spec.num_cells,
                "cell_runner": runner_name(definition.cell or evaluation_cell),
                "spec": spec.to_dict(),
            }, indent=2, default=str))
            return 0

        telemetry = None
        if args.trace is not None:
            from repro.config import TelemetryConfig
            from repro.telemetry import telemetry_from_config

            telemetry = telemetry_from_config(
                TelemetryConfig(enabled=True, trace_path=args.trace))
        try:
            run_experiment(args.experiment, spec=spec,
                           executor=args.executor, workers=args.workers,
                           store=args.store, resume=args.resume,
                           force=args.force, print_result=True,
                           telemetry=telemetry)
        finally:
            if telemetry is not None:
                telemetry.close()
        return 0
    except ExperimentError as error:
        parser.exit(2, f"error: {error}\n")


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
