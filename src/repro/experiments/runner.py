"""Command-line entry point dispatching to the experiment modules.

Examples
--------
``repro-experiment --list``
``repro-experiment table5``
``repro-experiment fig6 --scale-factor 0.25``
"""

from __future__ import annotations

import argparse
import importlib
import inspect
from typing import Dict

from repro.errors import ExperimentError

EXPERIMENTS: Dict[str, str] = {
    "fig1": "repro.experiments.fig1_aggregation_maps",
    "table2": "repro.experiments.table2_simrank_stats",
    "fig2": "repro.experiments.fig2_score_densities",
    "table3": "repro.experiments.table3_complexity",
    "table5": "repro.experiments.table5_accuracy",
    "table7": "repro.experiments.table7_learning_time",
    "fig4": "repro.experiments.fig4_convergence",
    "fig5": "repro.experiments.fig5_scalability",
    "fig6": "repro.experiments.fig6_epsilon_topk",
    "fig7": "repro.experiments.fig7_topk_tradeoff",
    "table8": "repro.experiments.table8_ablation",
    "table9": "repro.experiments.table9_delta",
    "table10": "repro.experiments.table10_alpha",
    "fig8": "repro.experiments.fig8_grouping",
    "table11": "repro.experiments.table11_iterative",
}


def run_experiment(name: str, *, scale_factor: float = 1.0, print_result: bool = True):
    """Run the experiment registered under ``name`` and return its result."""
    key = name.lower()
    if key not in EXPERIMENTS:
        raise ExperimentError(
            f"unknown experiment {name!r}; available: {', '.join(sorted(EXPERIMENTS))}"
        )
    module = importlib.import_module(EXPERIMENTS[key])
    accepts_scale = "scale_factor" in inspect.signature(module.run).parameters
    if scale_factor != 1.0 and accepts_scale:
        result = module.run(scale_factor=scale_factor)
    else:
        result = module.run()
    if print_result:
        from repro.experiments.common import format_table

        rows = result.rows() if hasattr(result, "rows") else []
        print(f"== {key} ==")
        print(format_table(rows))
    return result


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Regenerate a table or figure from the SIGMA paper.")
    parser.add_argument("experiment", nargs="?", help="experiment id, e.g. table5 or fig6")
    parser.add_argument("--list", action="store_true", help="list available experiments")
    parser.add_argument("--scale-factor", type=float, default=1.0,
                        help="node-count multiplier for quicker runs")
    args = parser.parse_args(argv)

    if args.list or not args.experiment:
        print("available experiments:")
        for key, module in sorted(EXPERIMENTS.items()):
            print(f"  {key:10s} -> {module}")
        return 0

    run_experiment(args.experiment, scale_factor=args.scale_factor)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
