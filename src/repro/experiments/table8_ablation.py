"""Experiment E9 — Table VIII: component ablation of SIGMA and GloGNN.

Rows reproduced:

* ``SIGMA``          — the full model;
* ``SIGMA w/o S``    — global aggregation removed (α pinned to 1);
* ``SIGMA w/ S·A``   — SimRank weights restricted to immediate neighbours;
* ``SIGMA w/o X``    — feature embedding removed (δ = 0);
* ``SIGMA w/o A``    — adjacency embedding removed (δ = 1);
* ``GloGNN`` and its ``w/o A`` / ``w/o X`` variants.

The summary statistics are the average and maximum accuracy drop of each
variant relative to its full model, matching the paper's Avg.↓ / Max.↓
columns.  Declaratively: a (variant × dataset) grid of plain ``RunSpec``
cells whose ``overrides.*`` keys carry each variant's ablation switches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.config import ExperimentSpec, RunSpec
from repro.datasets.registry import LARGE_DATASETS
from repro.experiments.common import DEFAULT_EXPERIMENT_CONFIG, format_table
from repro.experiments.engine import legacy_run, run_experiment
from repro.experiments.registry import experiment
from repro.training.config import TrainConfig

SIGMA_VARIANTS: Dict[str, Dict[str, object]] = {
    "sigma": {},
    "sigma w/o S": {"use_simrank": False},
    "sigma w/ S*A": {"operator_mode": "simrank_adj"},
    "sigma w/o X": {"use_features": False},
    "sigma w/o A": {"use_adjacency": False},
}

GLOGNN_VARIANTS: Dict[str, Dict[str, object]] = {
    "glognn": {},
    "glognn w/o A": {"use_adjacency": False},
    "glognn w/o X": {"use_features": False},
}

TITLE = "Table VIII — component study of SIGMA and GloGNN"


@dataclass
class Table8Result:
    """Accuracy per (variant, dataset) plus drop statistics."""

    datasets: List[str]
    accuracies: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def _drops(self, variant: str, reference: str) -> List[float]:
        return [self.accuracies[reference][d] - self.accuracies[variant][d]
                for d in self.datasets]

    def average_drop(self, variant: str, reference: str) -> float:
        return float(np.mean(self._drops(variant, reference)))

    def max_drop(self, variant: str, reference: str) -> float:
        return float(np.max(self._drops(variant, reference)))

    def rows(self) -> List[Dict[str, object]]:
        rows = []
        for variant, per_dataset in self.accuracies.items():
            reference = "sigma" if variant.startswith("sigma") else "glognn"
            row: Dict[str, object] = {"variant": variant}
            for dataset in self.datasets:
                row[dataset] = round(100 * per_dataset[dataset], 2)
            if variant != reference:
                row["avg_drop"] = round(100 * self.average_drop(variant, reference), 2)
                row["max_drop"] = round(100 * self.max_drop(variant, reference), 2)
            else:
                row["avg_drop"] = "-"
                row["max_drop"] = "-"
            rows.append(row)
        return rows


def spec(datasets: Sequence[str] = tuple(LARGE_DATASETS), *,
         num_repeats: int = 2, scale_factor: float = 1.0,
         config: Optional[TrainConfig] = None, seed: int = 0,
         sigma_overrides: Optional[Dict[str, object]] = None) -> ExperimentSpec:
    """The ablation grid: every SIGMA and GloGNN variant on every dataset."""
    datasets = list(datasets)
    sigma_overrides = dict(sigma_overrides or {"final_layers": 2})

    entries = []
    for label, overrides in SIGMA_VARIANTS.items():
        merged = dict(sigma_overrides)
        merged.update(overrides)
        for dataset in datasets:
            entries.append({"label": label, "model": "sigma", "dataset": dataset,
                            **{f"overrides.{key}": value
                               for key, value in merged.items()}})
    for label, overrides in GLOGNN_VARIANTS.items():
        for dataset in datasets:
            entries.append({"label": label, "model": "glognn", "dataset": dataset,
                            **{f"overrides.{key}": value
                               for key, value in overrides.items()}})

    base = RunSpec(model="sigma", dataset=datasets[0],
                   train=config or DEFAULT_EXPERIMENT_CONFIG, seed=seed,
                   repeats=num_repeats, scale_factor=scale_factor)
    return ExperimentSpec(name="table8", title=TITLE, base=base,
                          grid=tuple(entries), params={"label": ""},
                          reduction={"datasets": datasets})


@experiment("table8", title=TITLE, spec=spec)
def _reduce(spec: ExperimentSpec, cells) -> Table8Result:
    result = Table8Result(datasets=list(spec.reduction["datasets"]))
    for outcome in cells:
        label = str(outcome.params["label"])
        result.accuracies.setdefault(label, {})
        result.accuracies[label][outcome.spec.dataset] = (
            outcome.record["mean_accuracy"])
    return result


#: Deprecated shim — the historical ``run()`` arguments are the builder's.
run = legacy_run("table8")


def main() -> None:  # pragma: no cover - CLI entry point
    result = run_experiment("table8", print_result=False)
    print("Table VIII — component study of SIGMA and GloGNN (accuracy %, drops in points)")
    print(format_table(result.rows()))


if __name__ == "__main__":  # pragma: no cover
    main()
