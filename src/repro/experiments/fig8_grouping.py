"""Experiment E12 — Fig. 8: grouping effect of the SIGMA embeddings.

The paper visualises the output embedding matrix ``Z`` (nodes reordered by
label) and observes block patterns: same-class nodes have similar embedding
rows.  The quantitative counterpart computed here is the *grouping ratio*:
mean cosine similarity of embedding pairs within a class divided by the mean
similarity across classes — values well above one indicate the grouping
effect of Theorem III.4.

Declaratively: a dataset grid with a custom cell runner.  Each cell seeds
its own pair-sampling RNG from the spec seed (the pre-spec module threaded
one RNG through all datasets, making later datasets depend on earlier
ones; per-cell seeding is what makes cells independent and resumable).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.config import ExperimentCell, ExperimentSpec, RunSpec
from repro.datasets.registry import SMALL_DATASETS, load_dataset
from repro.experiments.common import DEFAULT_EXPERIMENT_CONFIG, format_table
from repro.experiments.engine import legacy_run, run_experiment
from repro.experiments.registry import experiment
from repro.training.config import TrainConfig
from repro.utils.rng import ensure_rng

TITLE = "Fig. 8 — grouping effect of the SIGMA embeddings"


@dataclass
class GroupingStats:
    dataset: str
    intra_similarity: float
    inter_similarity: float
    embeddings: np.ndarray
    label_order: np.ndarray

    @property
    def grouping_ratio(self) -> float:
        if self.inter_similarity == 0:
            return float("inf")
        return self.intra_similarity / self.inter_similarity


@dataclass
class Fig8Result:
    stats: List[GroupingStats] = field(default_factory=list)

    def rows(self) -> List[Dict[str, object]]:
        return [{
            "dataset": entry.dataset,
            "intra_cosine": round(entry.intra_similarity, 3),
            "inter_cosine": round(entry.inter_similarity, 3),
            "grouping_ratio": round(entry.grouping_ratio, 3),
        } for entry in self.stats]


def _pairwise_cosine_stats(embeddings: np.ndarray, labels: np.ndarray,
                           num_pairs: int, rng: np.random.Generator) -> tuple[float, float]:
    norms = np.linalg.norm(embeddings, axis=1, keepdims=True)
    normalized = embeddings / np.maximum(norms, 1e-12)
    n = embeddings.shape[0]
    left = rng.integers(0, n, size=num_pairs)
    right = rng.integers(0, n, size=num_pairs)
    keep = left != right
    left, right = left[keep], right[keep]
    similarity = np.einsum("nf,nf->n", normalized[left], normalized[right])
    same = labels[left] == labels[right]
    intra = similarity[same]
    inter = similarity[~same]
    return (float(intra.mean()) if intra.size else 0.0,
            float(inter.mean()) if inter.size else 0.0)


def grouping_cell(cell: ExperimentCell) -> Dict[str, object]:
    """Train SIGMA and compute grouping statistics of its embeddings."""
    from repro.api import build_model
    from repro.training.trainer import Trainer

    spec = cell.spec
    dataset = load_dataset(spec.dataset, seed=spec.seed,
                           scale_factor=spec.scale_factor)
    model = build_model(spec.model, dataset.graph, rng=spec.seed,
                        **spec.overrides)
    Trainer(model, spec.train).fit(dataset.split(0))
    embeddings = model.embeddings()
    labels = dataset.graph.labels
    rng = ensure_rng(spec.seed)
    intra, inter = _pairwise_cosine_stats(embeddings, labels,
                                          int(cell.params["num_pairs"]), rng)
    order = np.argsort(labels)
    return {
        "dataset": spec.dataset,
        "intra_similarity": intra,
        "inter_similarity": inter,
        "embeddings": embeddings[order].tolist(),
        "label_order": [int(i) for i in order],
    }


def spec(datasets: Sequence[str] = tuple(SMALL_DATASETS), *,
         scale_factor: float = 1.0, config: Optional[TrainConfig] = None,
         num_pairs: int = 20000, seed: int = 0) -> ExperimentSpec:
    """Grouping statistics of trained SIGMA embeddings per dataset."""
    datasets = list(datasets)
    base = RunSpec(model="sigma", dataset=datasets[0],
                   train=config or DEFAULT_EXPERIMENT_CONFIG, seed=seed,
                   scale_factor=scale_factor)
    return ExperimentSpec(
        name="fig8", title=TITLE, base=base,
        grid=tuple({"dataset": name} for name in datasets),
        params={"num_pairs": num_pairs})


@experiment("fig8", title=TITLE, spec=spec, cell=grouping_cell)
def _reduce(spec: ExperimentSpec, cells) -> Fig8Result:
    result = Fig8Result()
    for outcome in cells:
        result.stats.append(GroupingStats(
            dataset=str(outcome.record["dataset"]),
            intra_similarity=float(outcome.record["intra_similarity"]),
            inter_similarity=float(outcome.record["inter_similarity"]),
            embeddings=np.asarray(outcome.record["embeddings"], dtype=np.float64),
            label_order=np.asarray(outcome.record["label_order"], dtype=np.int64),
        ))
    return result


#: Deprecated shim — the historical ``run()`` arguments are the builder's.
run = legacy_run("fig8")


def main() -> None:  # pragma: no cover - CLI entry point
    result = run_experiment("fig8", print_result=False)
    print("Fig. 8 — grouping effect of the SIGMA embeddings Z")
    print(format_table(result.rows()))


if __name__ == "__main__":  # pragma: no cover
    main()
