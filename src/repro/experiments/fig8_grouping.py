"""Experiment E12 — Fig. 8: grouping effect of the SIGMA embeddings.

The paper visualises the output embedding matrix ``Z`` (nodes reordered by
label) and observes block patterns: same-class nodes have similar embedding
rows.  The quantitative counterpart computed here is the *grouping ratio*:
mean cosine similarity of embedding pairs within a class divided by the mean
similarity across classes — values well above one indicate the grouping
effect of Theorem III.4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.datasets.registry import SMALL_DATASETS, load_dataset
from repro.experiments.common import DEFAULT_EXPERIMENT_CONFIG, format_table
from repro.models.registry import create_model
from repro.training.config import TrainConfig
from repro.training.trainer import Trainer
from repro.utils.rng import ensure_rng


@dataclass
class GroupingStats:
    dataset: str
    intra_similarity: float
    inter_similarity: float
    embeddings: np.ndarray
    label_order: np.ndarray

    @property
    def grouping_ratio(self) -> float:
        if self.inter_similarity == 0:
            return float("inf")
        return self.intra_similarity / self.inter_similarity


@dataclass
class Fig8Result:
    stats: List[GroupingStats] = field(default_factory=list)

    def rows(self) -> List[Dict[str, object]]:
        return [{
            "dataset": entry.dataset,
            "intra_cosine": round(entry.intra_similarity, 3),
            "inter_cosine": round(entry.inter_similarity, 3),
            "grouping_ratio": round(entry.grouping_ratio, 3),
        } for entry in self.stats]


def _pairwise_cosine_stats(embeddings: np.ndarray, labels: np.ndarray,
                           num_pairs: int, rng: np.random.Generator) -> tuple[float, float]:
    norms = np.linalg.norm(embeddings, axis=1, keepdims=True)
    normalized = embeddings / np.maximum(norms, 1e-12)
    n = embeddings.shape[0]
    left = rng.integers(0, n, size=num_pairs)
    right = rng.integers(0, n, size=num_pairs)
    keep = left != right
    left, right = left[keep], right[keep]
    similarity = np.einsum("nf,nf->n", normalized[left], normalized[right])
    same = labels[left] == labels[right]
    intra = similarity[same]
    inter = similarity[~same]
    return (float(intra.mean()) if intra.size else 0.0,
            float(inter.mean()) if inter.size else 0.0)


def run(datasets: Sequence[str] = tuple(SMALL_DATASETS), *,
        scale_factor: float = 1.0, config: Optional[TrainConfig] = None,
        num_pairs: int = 20000, seed: int = 0) -> Fig8Result:
    """Train SIGMA and compute grouping statistics of its embeddings ``Z``."""
    config = config or DEFAULT_EXPERIMENT_CONFIG
    rng = ensure_rng(seed)
    result = Fig8Result()
    for dataset_name in datasets:
        dataset = load_dataset(dataset_name, seed=seed, scale_factor=scale_factor)
        model = create_model("sigma", dataset.graph, rng=seed)
        Trainer(model, config).fit(dataset.split(0))
        embeddings = model.embeddings()
        labels = dataset.graph.labels
        intra, inter = _pairwise_cosine_stats(embeddings, labels, num_pairs, rng)
        order = np.argsort(labels)
        result.stats.append(GroupingStats(dataset=dataset_name,
                                          intra_similarity=intra,
                                          inter_similarity=inter,
                                          embeddings=embeddings[order],
                                          label_order=order))
    return result


def main() -> None:  # pragma: no cover - CLI entry point
    result = run()
    print("Fig. 8 — grouping effect of the SIGMA embeddings Z")
    print(format_table(result.rows()))


if __name__ == "__main__":  # pragma: no cover
    main()
