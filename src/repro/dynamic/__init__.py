"""Incremental SimRank maintenance for evolving graphs.

This package keeps a LocalPush operator *live* under an edge-update
stream: instead of recomputing the all-pairs estimate from scratch when
the graph mutates, it repairs the maintained ``(estimate, residual)``
pair with work proportional to the size of the change.

The repair invariant
--------------------
Write ``W = A D⁻¹`` for the column-normalised walk matrix and define
the linear map

    G(X) = Σ_ℓ c^ℓ (Wᵀ)^ℓ X W^ℓ,   so   G(X) = X + c·Wᵀ G(X) W,

whose fixed-point value at the identity is the linearised SimRank
matrix: ``G(I) = S``.  The engine's frontier-round loop (extract
``F = R·1[|R| > (1−c)ε]``; ``Ŝ += F``; ``R −= F``; ``R += c·Wᵀ F W``)
preserves

    Ŝ + G(R) = S                                     (the invariant)

exactly at every step — it starts true (``Ŝ = 0, R = I``) and each
round moves ``G(F) = F + G(c·WᵀFW)`` worth of mass from the second term
to the first.  Column sub-stochasticity of ``W`` gives
``‖G(X)‖_max ≤ ‖X‖_max / (1−c)``, so stopping when every residual entry
has magnitude at most ``(1−c)·ε`` leaves ``‖Ŝ − S‖_max < ε``.

Repairing after an update
-------------------------
When the graph changes (``W → W′``, target ``S′ = G′(I)``), the
maintained pair violates the *new* invariant by a computable, delta-
sized amount.  Re-seeding the residual as

    R₀ = R + c·(W′ᵀ Ŝ W′ − Wᵀ Ŝ W)
       = R + c·(Δᵀ Ŝ W′ + Wᵀ Ŝ Δ),        Δ = W′ − W,

restores ``Ŝ + G′(R₀) = S′`` exactly.  ``Δ`` is nonzero only in the
columns of nodes whose incident edges changed (column normalisation is
per-column), so the correction costs a few sparse products restricted
to those columns — not a traversal of the graph.  Re-running the
ordinary frontier rounds on ``W′`` from ``(0, R₀)`` — in *signed* mode,
since deleted mass makes ``R₀`` carry negative entries — converges to
``|R| ≤ (1−c)·ε`` again, and the repaired ``Ŝ + ΔŜ`` satisfies the
same ``< ε`` bound as a fresh recompute.  Component merges and splits
need no special casing: the algebra is exact for any structural change.

A maintained residual is not even required: for *any* estimate ``Ŝ``
(e.g. one loaded from the operator cache) the reconstruction

    R₀ = I − Ŝ + c·W′ᵀ Ŝ W′

restores the invariant on ``W′`` from scratch — this is how a warm
cache entry for the base graph (or a delta-chained entry, see
:meth:`repro.simrank.cache.OperatorCache.delta_key_for`) warm-starts a
:class:`~repro.dynamic.operator.DynamicOperator` without a full
recompute.

Entry points
------------
:class:`~repro.dynamic.operator.DynamicOperator` owns the maintained
state and the repair loop; :func:`repro.api.apply_updates` is the
one-call facade; the serving layer applies updates through
``SimRankService.apply_update`` and the daemon's ``/update`` endpoint.
"""

from repro.dynamic.operator import DynamicOperator, RepairResult

__all__ = ["DynamicOperator", "RepairResult"]
