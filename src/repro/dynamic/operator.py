"""The live LocalPush operator maintained under an edge-update stream.

See the :mod:`repro.dynamic` package docstring for the invariant and the
repair algebra this module implements.  The class here owns three
things: the maintained raw ``(estimate, residual)`` pair (full fidelity
— never top-k pruned, never floor-pruned, float64), the repair loop
built on :func:`repro.simrank.engine.resume_localpush`, and the
delta-chained cache integration that lets a later process warm-start
from ``base fingerprint + delta hash`` instead of recomputing.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional, Tuple, Union

import numpy as np
import scipy.sparse as sp

from repro.config import DynamicConfig, SimRankConfig
from repro.errors import SimRankError
from repro.graphs.delta import UpdateBatch, Updates
from repro.graphs.fingerprint import graph_fingerprint
from repro.graphs.graph import Graph
from repro.graphs.normalize import column_normalize
from repro.graphs.sparse import csr_row_indices, sparse_row_normalize
from repro.simrank.cache import OperatorCache, get_operator_cache
from repro.simrank.engine import resume_localpush
from repro.simrank.localpush import finalize_estimate, resolve_execution
from repro.simrank.topk import SimRankOperator, topk_simrank
from repro.utils.timer import Timer

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from repro.telemetry.runtime import Telemetry

CacheLike = Union[OperatorCache, str, os.PathLike, None]


@dataclass
class RepairResult:
    """Telemetry of one applied update batch.

    ``warm_start`` records which algebra seeded the repair residual:
    ``"maintained"`` (the delta-sized correction of a held residual) or
    ``"reconstructed"`` (the estimate-only reconstruction used after a
    cache warm start).  ``num_pushes`` is the number of frontier
    absorptions the repair rounds performed — the quantity the
    incremental benchmark pits against a fresh precompute.
    """

    batch: UpdateBatch
    num_deltas: int
    num_pushes: int
    num_rounds: int
    num_residual_entries: int
    repair_seconds: float
    warm_start: str


def _resolve_cache(cache: CacheLike,
                   simrank: SimRankConfig) -> Optional[OperatorCache]:
    if isinstance(cache, OperatorCache):
        if simrank.cache_max_bytes is not None:
            cache.max_bytes = simrank.cache_max_bytes
        return cache
    if cache is not None:
        return get_operator_cache(cache, max_bytes=simrank.cache_max_bytes)
    if simrank.cache_dir is not None:
        return get_operator_cache(simrank.cache_dir,
                                  max_bytes=simrank.cache_max_bytes)
    return None


class DynamicOperator:
    """A LocalPush operator kept live under edge updates.

    Construction computes (or warm-starts from the cache) the base
    graph's full-fidelity ``(estimate, residual)`` state;
    :meth:`apply` then repairs it per update batch with delta-sized
    work.  Snapshots under the configured serving contract come from
    :meth:`operator`.

    The maintained state is always float64 and never pruned — pruning
    and the optional float32 cast are snapshot-time projections, so
    repair error never accumulates across updates: after every
    :meth:`apply` the state satisfies the exact invariant
    ``Ŝ + G(R) = S`` of the *current* graph, with
    ``|R| ≤ (1−c)·ε``.

    ``simrank`` supplies the LocalPush plan (ε, decay, kernel, executor,
    workers) and the serving contract (top_k, row_normalize, dtype);
    ``dynamic`` the maintenance knobs (see
    :class:`repro.config.DynamicConfig`); ``cache`` an operator cache
    (instance or directory) overriding ``simrank.cache_dir``;
    ``telemetry`` an optional :class:`repro.telemetry.Telemetry` handle —
    when enabled, every :meth:`apply` repair is traced as a
    ``dynamic.repair`` span (attributes ``batch_size``/``num_pushes``/
    ``num_rounds``/``warm_start``) and the cache mirrors its events.
    """

    def __init__(self, graph: Graph, *,
                 simrank: Optional[SimRankConfig] = None,
                 dynamic: Optional[DynamicConfig] = None,
                 cache: CacheLike = None,
                 telemetry: Optional["Telemetry"] = None) -> None:
        self._bootstrap(graph.num_nodes,
                        simrank if simrank is not None else SimRankConfig(),
                        dynamic if dynamic is not None else DynamicConfig(),
                        cache, telemetry)
        self.graph = graph
        self.base_fingerprint = graph_fingerprint(graph)
        self.chain = UpdateBatch()

        timer = Timer()
        timer.start()
        warm: Optional[SimRankOperator] = None
        if self._cache is not None:
            warm = self._cache.lookup(graph,
                                      fingerprint=self.base_fingerprint,
                                      **self._maintenance_fields)
        if warm is not None:
            # Estimate-only state: the first apply() uses the
            # reconstruction seeding (see the package docstring), which
            # is exact for any cached estimate within its ε contract.
            self._estimate = sp.csr_matrix(warm.matrix, dtype=np.float64)
            self._residual: Optional[sp.csr_matrix] = None
            self.build_pushes = 0
            self.build_cache_hit = True
        else:
            run = resume_localpush(
                graph,
                sp.identity(graph.num_nodes, dtype=np.float64, format="csr"),
                decay=self.simrank.decay, epsilon=self.simrank.epsilon,
                executor=self._executor, num_workers=self.simrank.workers,
                kernel=self.simrank.kernel)
            self._estimate = run.estimate_delta
            self._residual = run.residual
            self.build_pushes = run.num_pushes
            self.build_cache_hit = False
        self.build_seconds = timer.stop()

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    def _bootstrap(self, num_nodes: int, simrank: SimRankConfig,
                   dynamic: DynamicConfig, cache: CacheLike,
                   telemetry: Optional["Telemetry"] = None) -> None:
        """Shared attribute setup for both construction paths."""
        from repro.telemetry.runtime import resolve_telemetry

        self.simrank = simrank
        self.dynamic = dynamic
        self.telemetry = resolve_telemetry(telemetry)
        self._tracer = self.telemetry.tracer
        self._cache = _resolve_cache(cache, simrank)
        if self._cache is not None:
            self._cache.attach_telemetry(self.telemetry)
        # The maintained state is full fidelity at reference precision;
        # its cache contract (and the delta-chain key fields) say so.
        # One derivation path: SimRankConfig.cache_key_fields.
        maintenance = simrank.with_overrides(
            method="localpush", top_k=None, row_normalize=False,
            dtype="float64")
        self._maintenance_fields: Dict[str, object] = \
            maintenance.cache_key_fields(num_nodes)
        backend, executor = resolve_execution(
            simrank.backend, simrank.executor, num_nodes)
        if executor is None:
            # The dict reference engine has no resumable round loop; the
            # unified core's serial executor is its bit-compatible stand-in.
            executor = "serial"
        self._executor = executor
        self.updates_applied = 0
        self.repair_pushes = 0
        self.repair_seconds = 0.0

    @classmethod
    def from_chain(cls, base_graph: Graph, updates: Updates, *,
                   simrank: Optional[SimRankConfig] = None,
                   dynamic: Optional[DynamicConfig] = None,
                   cache: CacheLike = None,
                   telemetry: Optional["Telemetry"] = None
                   ) -> Optional["DynamicOperator"]:
        """Rebuild a repaired operator purely from a delta-chained entry.

        Looks up the cache entry keyed by the *base* graph's fingerprint
        plus the batch's content hash (stored by an earlier
        :meth:`apply` with ``store_repaired`` on).  On a hit, returns an
        operator whose graph is ``base_graph.apply_delta(updates)`` and
        whose estimate is the cached repaired snapshot — no push rounds
        at all.  Returns ``None`` on a miss (or without a cache); the
        caller falls back to building and repairing.
        """
        batch = UpdateBatch.coerce(updates)
        simrank = simrank if simrank is not None else SimRankConfig()
        dynamic = dynamic if dynamic is not None else DynamicConfig()
        cache_store = _resolve_cache(cache, simrank)
        if cache_store is None or len(batch) == 0:
            return None
        operator = cls.__new__(cls)
        operator._bootstrap(base_graph.num_nodes, simrank, dynamic, cache,
                            telemetry)
        entry = cache_store.lookup_delta(graph_fingerprint(base_graph),
                                         batch.content_hash(),
                                         operator._maintenance_fields)
        if entry is None:
            return None
        operator.graph = base_graph.apply_delta(batch)
        operator.base_fingerprint = graph_fingerprint(base_graph)
        operator.chain = batch
        operator._estimate = sp.csr_matrix(entry.matrix, dtype=np.float64)
        operator._residual = None
        operator.build_pushes = 0
        operator.build_cache_hit = True
        operator.build_seconds = 0.0
        operator.updates_applied = len(batch)
        return operator

    # ------------------------------------------------------------------ #
    # The repair loop
    # ------------------------------------------------------------------ #
    def apply(self, updates: Updates) -> RepairResult:
        """Apply an update batch and repair the operator to convergence.

        Computes the updated graph, seeds the repair residual (the
        delta-sized correction when a residual is maintained, the
        estimate-only reconstruction after a cache warm start), and
        re-runs the engine's frontier rounds in signed mode until every
        residual entry has magnitude at most ``(1−c)·ε`` — the repaired
        operator then satisfies the same ``< ε`` bound as a fresh
        recompute.  State commits only on success: a failed repair
        (e.g. ``repair_max_pushes`` exceeded) leaves the operator on the
        pre-update graph, still serving.
        """
        batch = UpdateBatch.coerce(updates)
        if len(batch) > self.dynamic.max_batch_edges:
            raise SimRankError(
                f"update batch has {len(batch)} deltas, exceeding "
                f"max_batch_edges={self.dynamic.max_batch_edges}")
        if len(batch) == 0:
            return RepairResult(batch=batch, num_deltas=0, num_pushes=0,
                                num_rounds=0, num_residual_entries=0,
                                repair_seconds=0.0, warm_start="noop")
        timer = Timer()
        timer.start()
        with self._tracer.span("dynamic.repair",
                               batch_size=len(batch)) as span:
            new_graph = self.graph.apply_delta(batch)
            decay = self.simrank.decay
            residual0, warm_start = self._seed_repair(new_graph, decay)
            run = resume_localpush(
                new_graph, residual0, decay=decay,
                epsilon=self.simrank.epsilon,
                max_pushes=self.dynamic.repair_max_pushes,
                executor=self._executor, num_workers=self.simrank.workers,
                kernel=self.simrank.kernel, copy_residual=False)
            span.set("num_pushes", run.num_pushes)
            span.set("num_rounds", run.num_rounds)
            span.set("warm_start", warm_start)
        estimate = (self._estimate + run.estimate_delta).tocsr()
        estimate.eliminate_zeros()
        estimate.sort_indices()

        self.graph = new_graph
        self._estimate = estimate
        self._residual = run.residual
        self.chain = self.chain + batch
        elapsed = timer.stop()
        self.updates_applied += 1
        self.repair_pushes += run.num_pushes
        self.repair_seconds += elapsed
        self._store_chain_entry()
        return RepairResult(
            batch=batch,
            num_deltas=len(batch),
            num_pushes=run.num_pushes,
            num_rounds=run.num_rounds,
            num_residual_entries=run.num_residual_entries,
            repair_seconds=elapsed,
            warm_start=warm_start,
        )

    def _seed_repair(self, new_graph: Graph,
                     decay: float) -> Tuple[sp.csr_matrix, str]:
        """The repair residual ``R₀`` restoring the invariant on ``W′``."""
        walk_new = column_normalize(new_graph.adjacency)
        estimate = self._estimate
        if self._residual is not None:
            # R₀ = R + c·(Δᵀ Ŝ W′ + Wᵀ Ŝ Δ): delta-sized — Δ is nonzero
            # only in the perturbed nodes' columns (identical quotients
            # elsewhere cancel exactly in floating point).
            walk_old = column_normalize(self.graph.adjacency)
            delta_w = (walk_new - walk_old).tocsr()
            delta_w.eliminate_zeros()
            # Association order matters: Δᵀ has few nonzero *rows* and Δ
            # few nonzero *columns*, so both products below stay
            # delta-sized — never form WᵀŜ or ŜW (full n×n work).
            correction = ((delta_w.T @ estimate) @ walk_new
                          + walk_old.T @ (estimate @ delta_w)).tocsr()
            correction.data *= decay
            return (self._residual + correction).tocsr(), "maintained"
        # Estimate-only state (cache warm start):
        # R₀ = I − Ŝ + c·W′ᵀ Ŝ W′ restores the invariant for any Ŝ.
        pushed = ((walk_new.T @ estimate) @ walk_new).tocsr()
        pushed.data *= decay
        identity = sp.identity(new_graph.num_nodes, dtype=np.float64,
                               format="csr")
        return (identity - estimate + pushed).tocsr(), "reconstructed"

    def _store_chain_entry(self) -> None:
        if (self._cache is None or not self.dynamic.store_repaired
                or len(self.chain) == 0):
            return
        snapshot = self._snapshot(self._maintenance_fields)
        self._cache.store_delta(self.base_fingerprint,
                                self.chain.content_hash(),
                                self._maintenance_fields, snapshot,
                                fingerprint=graph_fingerprint(self.graph))

    # ------------------------------------------------------------------ #
    # Snapshots
    # ------------------------------------------------------------------ #
    def operator(self) -> SimRankOperator:
        """Snapshot under the configured serving contract.

        Projects the maintained state through the exact pipeline a
        fresh :func:`repro.simrank.topk.simrank_operator` run applies —
        positive-residual absorb, :func:`finalize_estimate` (diagonal
        restore, ε/10 floor when unpruned), the optional float32 cast,
        ``top_k`` pruning and row normalisation — so snapshots and fresh
        operators satisfy the same contract.
        """
        fields = dict(self._maintenance_fields)
        fields["top_k"] = self.simrank.top_k
        fields["row_normalize"] = self.simrank.row_normalize
        fields["dtype"] = None if self.simrank.dtype == "float64" \
            else self.simrank.dtype
        return self._snapshot(fields)

    def _snapshot(self, fields: Dict[str, object]) -> SimRankOperator:
        n = self.graph.num_nodes
        top_k = fields["top_k"]
        row_normalize = bool(fields["row_normalize"])
        residual = self._residual if self._residual is not None \
            else sp.csr_matrix((n, n), dtype=np.float64)
        estimate = self._estimate.copy()
        if residual.nnz:
            rows = csr_row_indices(residual)
            positive = residual.data > 0.0
            if positive.any():
                estimate = estimate + sp.csr_matrix(
                    (residual.data[positive].copy(),
                     (rows[positive],
                      residual.indices[positive].astype(np.int64,
                                                        copy=False))),
                    shape=(n, n))
        epsilon = float(self.simrank.epsilon)
        estimate = finalize_estimate(estimate, residual, epsilon=epsilon,
                                     prune=top_k is None)
        if fields["dtype"] == "float32":
            estimate = estimate.astype(np.float32)
        if top_k is not None:
            estimate = topk_simrank(estimate, int(top_k))
        if row_normalize:
            estimate = sparse_row_normalize(estimate)
        estimate.sort_indices()
        return SimRankOperator(
            matrix=estimate,
            method="localpush",
            decay=self.simrank.decay,
            epsilon=epsilon,
            top_k=None if top_k is None else int(top_k),
            precompute_seconds=0.0,
            backend=str(self._maintenance_fields["backend"]),
            row_normalize=row_normalize,
        )

    # ------------------------------------------------------------------ #
    @property
    def num_nodes(self) -> int:
        return self.graph.num_nodes

    @property
    def push_threshold(self) -> float:
        """The engine's frontier threshold ``(1−c)·ε``.

        Every maintained-residual entry has magnitude at most this after
        a converged build or repair — the condition giving the ``< ε``
        estimate bound.
        """
        return (1.0 - self.simrank.decay) * float(self.simrank.epsilon)

    @property
    def residual_max(self) -> float:
        """``‖R‖_max`` of the maintained residual (0.0 when estimate-only)."""
        if self._residual is None or self._residual.nnz == 0:
            return 0.0
        return float(np.abs(self._residual.data).max())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"DynamicOperator(nodes={self.num_nodes}, "
                f"updates_applied={self.updates_applied}, "
                f"chain={len(self.chain)}, "
                f"repair_pushes={self.repair_pushes})")


__all__ = ["DynamicOperator", "RepairResult", "CacheLike"]
