"""Feature-only MLP baseline.

The weakest baseline in Table V — yet surprisingly strong on small
heterophilous graphs such as Texas, which the paper uses to argue that node
features carry most of the signal there.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import Graph
from repro.models.base import NodeClassifier
from repro.nn.mlp import MLP
from repro.utils.rng import RngLike


class MLPClassifier(NodeClassifier):
    """A plain MLP on the node features, ignoring the graph structure."""

    def __init__(self, graph: Graph, *, hidden: int = 64, num_layers: int = 2,
                 dropout: float = 0.5, rng: RngLike = None) -> None:
        super().__init__(graph, hidden=hidden)
        self.mlp = MLP(self.num_features, hidden, self.num_classes,
                       num_layers=num_layers, dropout=dropout, rng=rng, name="mlp")

    def forward(self) -> np.ndarray:
        return self.mlp(self.graph.features)

    def backward(self, grad_logits: np.ndarray) -> None:
        self.mlp.backward(grad_logits)


__all__ = ["MLPClassifier"]
