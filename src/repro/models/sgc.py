"""Simplified Graph Convolution (SGC) baseline: ``softmax(Â^K X W)``."""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import Graph
from repro.graphs.normalize import symmetric_normalize
from repro.models.base import NodeClassifier
from repro.nn.linear import Linear
from repro.propagation.propagators import PowerPropagation
from repro.utils.rng import RngLike


class SGC(NodeClassifier):
    """SGC: fixed K-step propagation followed by a single linear layer."""

    def __init__(self, graph: Graph, *, num_steps: int = 2, hidden: int = 64,
                 rng: RngLike = None) -> None:
        super().__init__(graph, hidden=hidden)
        with self.timing.measure("precompute"):
            operator = symmetric_normalize(graph.adjacency)
            self.propagation = PowerPropagation(operator, num_steps, timing=self.timing)
            # The propagation is feature-independent of the parameters, so it
            # can be computed once and cached — exactly SGC's selling point.
            self._propagated = self.propagation(graph.features)
        self.linear = Linear(self.num_features, self.num_classes, rng=rng, name="sgc")

    def forward(self) -> np.ndarray:
        return self.linear(self._propagated)

    def backward(self, grad_logits: np.ndarray) -> None:
        self.linear.backward(grad_logits)


__all__ = ["SGC"]
