"""LINKX baseline: decoupled MLP embeddings of adjacency and features.

LINKX (Lim et al., 2021) embeds the adjacency rows and the node features
with two separate MLPs, combines them with a linear layer plus residual
connections, and finishes with a final MLP — no message passing at all.
It is the architecture SIGMA's feature-transformation stage is derived from.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.graphs.graph import Graph
from repro.models.base import NodeClassifier
from repro.nn.activations import ReLU
from repro.nn.linear import Linear
from repro.nn.mlp import MLP
from repro.utils.rng import RngLike, ensure_rng


class LINKX(NodeClassifier):
    """LINKX: ``MLP_f(σ(W[h_A ‖ h_X] + h_A + h_X))``."""

    def __init__(self, graph: Graph, *, hidden: int = 64, num_layers: int = 2,
                 dropout: float = 0.5, rng: RngLike = None) -> None:
        super().__init__(graph, hidden=hidden)
        generator = ensure_rng(rng)
        with self.timing.measure("precompute"):
            self._adjacency = graph.adjacency.tocsr()
        self.mlp_adjacency = MLP(self.num_nodes, hidden, hidden, num_layers=1,
                                 rng=generator, name="linkx.mlp_a")
        self.mlp_features = MLP(self.num_features, hidden, hidden, num_layers=1,
                                rng=generator, name="linkx.mlp_x")
        self.combine = Linear(2 * hidden, hidden, rng=generator, name="linkx.combine")
        self.combine_act = ReLU()
        self.mlp_final = MLP(hidden, hidden, self.num_classes, num_layers=num_layers,
                             dropout=dropout, rng=generator, name="linkx.mlp_f")
        self._cache: Optional[dict] = None

    def forward(self) -> np.ndarray:
        hidden_a = self.mlp_adjacency(self._adjacency)
        hidden_x = self.mlp_features(self.graph.features)
        concatenated = np.concatenate([hidden_a, hidden_x], axis=1)
        combined = self.combine(concatenated) + hidden_a + hidden_x
        activated = self.combine_act(combined)
        self._cache = {"width": hidden_a.shape[1]}
        return self.mlp_final(activated)

    def backward(self, grad_logits: np.ndarray) -> None:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        width = self._cache["width"]
        grad_activated = self.mlp_final.backward(grad_logits)
        grad_combined = self.combine_act.backward(grad_activated)
        grad_concat = self.combine.backward(grad_combined)
        grad_a = grad_concat[:, :width] + grad_combined
        grad_x = grad_concat[:, width:] + grad_combined
        self.mlp_adjacency.backward(grad_a)
        self.mlp_features.backward(grad_x)


__all__ = ["LINKX"]
