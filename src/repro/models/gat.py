"""Graph Attention Network baseline (single- or multi-head)."""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.graphs.graph import Graph
from repro.models.base import NodeClassifier
from repro.nn.activations import ReLU
from repro.nn.dropout import Dropout
from repro.nn.init import glorot_uniform
from repro.nn.linear import Linear
from repro.nn.module import Module, Parameter
from repro.utils.rng import RngLike, ensure_rng


def _segment_softmax(scores: np.ndarray, segments: np.ndarray, num_segments: int) -> np.ndarray:
    """Softmax of ``scores`` grouped by ``segments`` (the edge-target node)."""
    maxima = np.full(num_segments, -np.inf)
    np.maximum.at(maxima, segments, scores)
    shifted = scores - maxima[segments]
    exp = np.exp(shifted)
    denom = np.zeros(num_segments)
    np.add.at(denom, segments, exp)
    return exp / denom[segments]


class GATLayer(Module):
    """Single attention head: ``o_i = Σ_{j∈N(i)∪{i}} α_ij W h_j``.

    Attention logits use the standard GAT form
    ``e_ij = LeakyReLU(a_srcᵀ W h_i + a_dstᵀ W h_j)`` with softmax over each
    target node's neighbourhood.
    """

    def __init__(self, in_features: int, out_features: int, edges: np.ndarray,
                 num_nodes: int, *, negative_slope: float = 0.2,
                 rng: RngLike = None, name: str = "gat") -> None:
        super().__init__()
        generator = ensure_rng(rng)
        self.num_nodes = num_nodes
        # Edge list with self-loops added; column 0 is the target node i,
        # column 1 the source node j whose message flows to i.
        self_loops = np.stack([np.arange(num_nodes)] * 2, axis=1)
        both_directions = np.vstack([edges, edges[:, ::-1], self_loops])
        self.targets = both_directions[:, 0]
        self.sources = both_directions[:, 1]
        self.negative_slope = float(negative_slope)
        self.weight = Parameter(glorot_uniform(in_features, out_features, rng=generator),
                                name=f"{name}.weight")
        self.att_src = Parameter(glorot_uniform(out_features, 1, rng=generator).ravel(),
                                 name=f"{name}.att_src")
        self.att_dst = Parameter(glorot_uniform(out_features, 1, rng=generator).ravel(),
                                 name=f"{name}.att_dst")
        self._cache: Optional[dict] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        transformed = inputs @ self.weight.value
        score_src = transformed @ self.att_src.value
        score_dst = transformed @ self.att_dst.value
        raw = score_src[self.targets] + score_dst[self.sources]
        positive = raw > 0
        activated = np.where(positive, raw, self.negative_slope * raw)
        attention = _segment_softmax(activated, self.targets, self.num_nodes)
        output = np.zeros_like(transformed)
        np.add.at(output, self.targets, attention[:, None] * transformed[self.sources])
        self._cache = {
            "inputs": inputs,
            "transformed": transformed,
            "attention": attention,
            "positive": positive,
        }
        return output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        cache = self._cache
        transformed = cache["transformed"]
        attention = cache["attention"]
        positive = cache["positive"]

        # Path 1: through the weighted message sum.
        grad_transformed = np.zeros_like(transformed)
        np.add.at(grad_transformed, self.sources,
                  attention[:, None] * grad_output[self.targets])
        grad_attention = np.einsum("ef,ef->e", grad_output[self.targets],
                                   transformed[self.sources])

        # Softmax backward per target group.
        weighted = attention * grad_attention
        group_sum = np.zeros(self.num_nodes)
        np.add.at(group_sum, self.targets, weighted)
        grad_activated = attention * (grad_attention - group_sum[self.targets])

        # LeakyReLU backward.
        grad_raw = np.where(positive, grad_activated, self.negative_slope * grad_activated)

        # Attention-vector and transformed-feature gradients.
        grad_score_src = np.zeros(self.num_nodes)
        grad_score_dst = np.zeros(self.num_nodes)
        np.add.at(grad_score_src, self.targets, grad_raw)
        np.add.at(grad_score_dst, self.sources, grad_raw)
        self.att_src.grad += transformed.T @ grad_score_src
        self.att_dst.grad += transformed.T @ grad_score_dst
        grad_transformed += np.outer(grad_score_src, self.att_src.value)
        grad_transformed += np.outer(grad_score_dst, self.att_dst.value)

        self.weight.grad += cache["inputs"].T @ grad_transformed
        return grad_transformed @ self.weight.value.T


class GAT(NodeClassifier):
    """Two-layer GAT: multi-head concatenation then a single-head output layer."""

    def __init__(self, graph: Graph, *, hidden: int = 8, num_heads: int = 4,
                 dropout: float = 0.5, negative_slope: float = 0.2,
                 rng: RngLike = None) -> None:
        super().__init__(graph, hidden=hidden)
        generator = ensure_rng(rng)
        with self.timing.measure("precompute"):
            edges = graph.edge_list()
        self.heads: List[GATLayer] = [
            GATLayer(self.num_features, hidden, edges, self.num_nodes,
                     negative_slope=negative_slope, rng=generator, name=f"gat.head{h}")
            for h in range(num_heads)
        ]
        self.activation = ReLU()
        self.dropout = Dropout(dropout, rng=generator)
        self.output_layer = GATLayer(hidden * num_heads, self.num_classes, edges,
                                     self.num_nodes, negative_slope=negative_slope,
                                     rng=generator, name="gat.out")

    def forward(self) -> np.ndarray:
        with self.timing.measure("aggregation"):
            head_outputs = [head(self.graph.features) for head in self.heads]
            hidden = np.concatenate(head_outputs, axis=1)
            hidden = self.dropout(self.activation(hidden))
            return self.output_layer(hidden)

    def backward(self, grad_logits: np.ndarray) -> None:
        with self.timing.measure("aggregation"):
            grad = self.output_layer.backward(grad_logits)
            grad = self.activation.backward(self.dropout.backward(grad))
            width = grad.shape[1] // len(self.heads)
            for index, head in enumerate(self.heads):
                head.backward(grad[:, index * width:(index + 1) * width])


__all__ = ["GAT", "GATLayer"]
