"""GloGNN baseline (Li et al., 2022) — whole-graph iterative aggregation.

GloGNN builds an initial embedding from node features and adjacency rows
(as LINKX does) and then performs several rounds of aggregation from *all*
nodes in the graph, with a coefficient matrix re-derived at every layer
from a closed-form optimisation over ``k₂``-hop structures.

This reimplementation keeps the two properties the paper's comparisons rely
on while simplifying the closed-form solve:

* aggregation is *iterative and whole-graph*: every layer applies a
  ``k₂``-hop propagation (with learnable, possibly negative hop weights)
  plus a residual to the initial embedding, repeated ``l_norm`` times; the
  per-epoch cost is therefore ``O(k₂ · l_norm · m · f)`` exactly as in
  Table III, in contrast to SIGMA's one-shot ``O(k · n · f)``;
* the coefficient matrix is recomputed from the current embeddings at every
  layer (it depends on the trainable parameters), so none of it can be
  moved to precomputation — the reason GloGNN's AGG column dominates its
  learning time in Table VII.

The exact closed-form inverse of the original paper is replaced by the
learnable hop-weight polynomial; module docstrings and DESIGN.md record the
substitution.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.graphs.graph import Graph
from repro.graphs.normalize import symmetric_normalize
from repro.models.base import NodeClassifier
from repro.nn.linear import Linear
from repro.nn.mlp import MLP
from repro.nn.module import Parameter
from repro.utils.rng import RngLike, ensure_rng


class GloGNN(NodeClassifier):
    """Whole-graph iterative aggregation with LINKX-style input embeddings."""

    def __init__(self, graph: Graph, *, hidden: int = 64, num_layers: int = 2,
                 dropout: float = 0.5, delta: float = 0.5, gamma: float = 0.6,
                 k_hops: int = 3, norm_layers: int = 2,
                 use_features: bool = True, use_adjacency: bool = True,
                 rng: RngLike = None) -> None:
        super().__init__(graph, hidden=hidden)
        if not 0.0 <= delta <= 1.0:
            raise ValueError(f"delta must be in [0, 1], got {delta}")
        if not 0.0 <= gamma <= 1.0:
            raise ValueError(f"gamma must be in [0, 1], got {gamma}")
        if k_hops < 1 or norm_layers < 1:
            raise ValueError("k_hops and norm_layers must be >= 1")
        generator = ensure_rng(rng)
        self.delta = float(delta)
        self.gamma = float(gamma)
        self.k_hops = k_hops
        self.norm_layers = norm_layers
        self.num_layers = num_layers
        self.use_features = use_features
        self.use_adjacency = use_adjacency
        with self.timing.measure("precompute"):
            self._adjacency = graph.adjacency.tocsr()
            self._normalized = symmetric_normalize(graph.adjacency)
            self._normalized_t = self._normalized.T.tocsr()
        self.mlp_features = MLP(self.num_features, hidden, hidden, num_layers=1,
                                rng=generator, name="glognn.mlp_x")
        self.mlp_adjacency = MLP(self.num_nodes, hidden, hidden, num_layers=1,
                                 rng=generator, name="glognn.mlp_a")
        # Learnable hop weights, one set per layer; negative values model
        # "dissimilar" whole-graph relations as in the original GloGNN.
        self.hop_weights: List[Parameter] = [
            Parameter(np.full(k_hops, 1.0 / k_hops), name=f"glognn.hops{layer}")
            for layer in range(num_layers)
        ]
        self.head = Linear(hidden, self.num_classes, rng=generator, name="glognn.head")
        self._cache: Optional[dict] = None

    # ------------------------------------------------------------------ #
    def _initial_embedding(self) -> np.ndarray:
        hidden_x = self.mlp_features(self.graph.features) if self.use_features else 0.0
        hidden_a = self.mlp_adjacency(self._adjacency) if self.use_adjacency else 0.0
        if not self.use_features:
            return np.asarray(hidden_a)
        if not self.use_adjacency:
            return np.asarray(hidden_x)
        return self.delta * hidden_x + (1.0 - self.delta) * hidden_a

    def _aggregate(self, state: np.ndarray, weights: np.ndarray,
                   transpose: bool = False) -> tuple[np.ndarray, List[np.ndarray]]:
        """One whole-graph aggregation: ``Σ_i w_i Â^i state`` (cost ``O(k₂·m·f)``)."""
        operator = self._normalized_t if transpose else self._normalized
        hops = []
        current = state
        for _ in range(self.k_hops):
            current = operator @ current
            hops.append(current)
        aggregated = np.zeros_like(state)
        for weight, hop in zip(weights, hops):
            aggregated = aggregated + weight * hop
        return aggregated, hops

    # ------------------------------------------------------------------ #
    def forward(self) -> np.ndarray:
        initial = self._initial_embedding()
        state = initial
        layer_caches = []
        with self.timing.measure("aggregation"):
            for layer in range(self.num_layers):
                weights = self.hop_weights[layer].value
                norm_caches = []
                for _ in range(self.norm_layers):
                    aggregated, hops = self._aggregate(state, weights)
                    new_state = (1.0 - self.gamma) * aggregated + self.gamma * initial
                    norm_caches.append({"hops": hops})
                    state = new_state
                layer_caches.append(norm_caches)
        self._cache = {"layer_caches": layer_caches}
        return self.head(state)

    def backward(self, grad_logits: np.ndarray) -> None:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        grad_state = self.head.backward(grad_logits)
        grad_initial = np.zeros_like(grad_state)
        layer_caches = self._cache["layer_caches"]
        with self.timing.measure("aggregation"):
            for layer in range(self.num_layers - 1, -1, -1):
                weights = self.hop_weights[layer].value
                for norm_cache in reversed(layer_caches[layer]):
                    grad_initial = grad_initial + self.gamma * grad_state
                    grad_aggregated = (1.0 - self.gamma) * grad_state
                    hops = norm_cache["hops"]
                    for hop_index, hop in enumerate(hops):
                        self.hop_weights[layer].grad[hop_index] += float(
                            np.sum(grad_aggregated * hop))
                    # Gradient w.r.t. the aggregation input: Σ_i w_i (Âᵀ)^i g.
                    grad_state, _ = self._aggregate(grad_aggregated, weights, transpose=True)
        grad_initial = grad_initial + grad_state
        if self.use_features and self.use_adjacency:
            self.mlp_features.backward(self.delta * grad_initial)
            self.mlp_adjacency.backward((1.0 - self.delta) * grad_initial)
        elif self.use_features:
            self.mlp_features.backward(grad_initial)
        elif self.use_adjacency:
            self.mlp_adjacency.backward(grad_initial)


__all__ = ["GloGNN"]
