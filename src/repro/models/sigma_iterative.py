"""Iterative SIGMA variant (paper §V.F, Table XI).

Instead of a single global aggregation, the SimRank operator is used as a
rewired propagation matrix inside an otherwise GCN-like stack:

``Z = σ(… σ(S · σ(S · X_S · W₁) · W₂) …)``  with
``X_S = δ·X·W_X + (1 − δ)·A·W_A``.

The paper reports that one to three such layers behave similarly, with the
one-shot model usually best — this class exists to reproduce that table.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.config import UNSET, SimRankConfig
from repro.errors import ModelError
from repro.graphs.graph import Graph
from repro.models.base import NodeClassifier
from repro.models.sigma import resolve_sigma_simrank_config
from repro.nn.activations import ReLU
from repro.nn.dropout import Dropout
from repro.nn.linear import Linear
from repro.propagation.sparse_ops import SparsePropagation
from repro.simrank.topk import simrank_operator
from repro.utils.rng import RngLike, ensure_rng


class SIGMAIterative(NodeClassifier):
    """SIGMA with ``num_layers`` rounds of SimRank propagation.

    The operator precompute is configured by ``simrank=`` (a
    :class:`repro.config.SimRankConfig`, defaulting to the paper's
    ``ε = 0.1``, ``k = 32``); the pre-config keywords remain accepted as
    deprecated shims exactly as in :class:`repro.models.sigma.SIGMA`.
    """

    def __init__(self, graph: Graph, *, hidden: int = 64, num_layers: int = 2,
                 delta: float = 0.5, dropout: float = 0.5,
                 simrank: Optional[SimRankConfig] = None,
                 rng: RngLike = None,
                 simrank_method: object = UNSET, epsilon: object = UNSET,
                 top_k: object = UNSET, decay: object = UNSET,
                 simrank_backend: object = UNSET,
                 simrank_executor: object = UNSET,
                 simrank_workers: object = UNSET,
                 simrank_cache_dir: object = UNSET,
                 simrank_cache_max_bytes: object = UNSET) -> None:
        super().__init__(graph, hidden=hidden)
        if num_layers < 1:
            raise ModelError(f"num_layers must be >= 1, got {num_layers}")
        if not 0.0 <= delta <= 1.0:
            raise ModelError(f"delta must be in [0, 1], got {delta}")
        simrank = resolve_sigma_simrank_config(
            simrank, simrank_method=simrank_method, decay=decay,
            epsilon=epsilon, top_k=top_k, simrank_backend=simrank_backend,
            simrank_executor=simrank_executor,
            simrank_workers=simrank_workers,
            simrank_cache_dir=simrank_cache_dir,
            simrank_cache_max_bytes=simrank_cache_max_bytes)
        generator = ensure_rng(rng)
        self.delta = float(delta)
        self.num_layers = num_layers
        self.simrank_config = simrank
        with self.timing.measure("precompute"):
            operator = simrank_operator(graph, config=simrank)
        self.simrank = operator
        self.propagation = SparsePropagation(operator.matrix, timing=self.timing)
        self._adjacency = graph.adjacency.tocsr()
        self.linear_features = Linear(self.num_features, hidden, rng=generator,
                                      name="sigma_iter.wx")
        self.linear_adjacency = Linear(self.num_nodes, hidden, rng=generator,
                                       name="sigma_iter.wa")
        self.layer_linears: List[Linear] = [
            Linear(hidden, hidden, rng=generator, name=f"sigma_iter.{layer}")
            for layer in range(num_layers)
        ]
        self.layer_acts: List[ReLU] = [ReLU() for _ in range(num_layers)]
        self.layer_dropouts: List[Dropout] = [Dropout(dropout, rng=generator)
                                              for _ in range(num_layers)]
        self.head = Linear(hidden, self.num_classes, rng=generator, name="sigma_iter.head")

    def forward(self) -> np.ndarray:
        features_part = self.linear_features(self.graph.features)
        adjacency_part = self.linear_adjacency(self._adjacency)
        hidden = self.delta * features_part + (1.0 - self.delta) * adjacency_part
        for layer in range(self.num_layers):
            hidden = self.propagation(hidden)
            hidden = self.layer_linears[layer](hidden)
            hidden = self.layer_dropouts[layer](self.layer_acts[layer](hidden))
        return self.head(hidden)

    def backward(self, grad_logits: np.ndarray) -> None:
        grad = self.head.backward(grad_logits)
        for layer in reversed(range(self.num_layers)):
            grad = self.layer_dropouts[layer].backward(grad)
            grad = self.layer_acts[layer].backward(grad)
            grad = self.layer_linears[layer].backward(grad)
            grad = self.propagation.backward(grad)
        self.linear_features.backward(self.delta * grad)
        self.linear_adjacency.backward((1.0 - self.delta) * grad)


__all__ = ["SIGMAIterative"]
