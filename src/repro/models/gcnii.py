"""GCNII baseline: deep GCN with initial residual and identity mapping."""

from __future__ import annotations

from typing import List

import numpy as np

from repro.graphs.graph import Graph
from repro.graphs.normalize import symmetric_normalize
from repro.models.base import NodeClassifier
from repro.nn.activations import ReLU
from repro.nn.dropout import Dropout
from repro.nn.linear import Linear
from repro.propagation.sparse_ops import SparsePropagation
from repro.utils.rng import RngLike, ensure_rng


class GCNII(NodeClassifier):
    """GCNII: ``H^{(l+1)} = σ(((1−α)ÂH^{(l)} + αH^{(0)})((1−β_l)I + β_l W_l))``.

    ``β_l = log(λ / l + 1)`` decays with depth as in the original paper.
    """

    def __init__(self, graph: Graph, *, hidden: int = 64, num_layers: int = 8,
                 alpha: float = 0.1, lam: float = 0.5, dropout: float = 0.5,
                 rng: RngLike = None) -> None:
        super().__init__(graph, hidden=hidden)
        if num_layers < 1:
            raise ValueError(f"num_layers must be >= 1, got {num_layers}")
        generator = ensure_rng(rng)
        self.alpha = float(alpha)
        self.num_layers = num_layers
        self.betas = [float(np.log(lam / (layer + 1) + 1.0)) for layer in range(num_layers)]
        with self.timing.measure("precompute"):
            operator = symmetric_normalize(graph.adjacency)
        self.propagation = SparsePropagation(operator, timing=self.timing)
        self.input_linear = Linear(self.num_features, hidden, rng=generator, name="gcnii.input")
        self.input_act = ReLU()
        self.input_dropout = Dropout(dropout, rng=generator)
        self.layer_linears: List[Linear] = [
            Linear(hidden, hidden, rng=generator, name=f"gcnii.{layer}")
            for layer in range(num_layers)
        ]
        self.layer_acts: List[ReLU] = [ReLU() for _ in range(num_layers)]
        self.layer_dropouts: List[Dropout] = [Dropout(dropout, rng=generator)
                                              for _ in range(num_layers)]
        self.head = Linear(hidden, self.num_classes, rng=generator, name="gcnii.head")
        self._cache: List[np.ndarray] = []

    def forward(self) -> np.ndarray:
        hidden0 = self.input_dropout(self.input_act(self.input_linear(self.graph.features)))
        hidden = hidden0
        self._cache = []
        for layer in range(self.num_layers):
            propagated = self.propagation(hidden)
            support = (1.0 - self.alpha) * propagated + self.alpha * hidden0
            beta = self.betas[layer]
            transformed = (1.0 - beta) * support + beta * self.layer_linears[layer](support)
            self._cache.append(support)
            hidden = self.layer_dropouts[layer](self.layer_acts[layer](transformed))
        return self.head(hidden)

    def backward(self, grad_logits: np.ndarray) -> None:
        grad = self.head.backward(grad_logits)
        grad_hidden0 = np.zeros_like(grad)
        for layer in reversed(range(self.num_layers)):
            grad = self.layer_dropouts[layer].backward(grad)
            grad = self.layer_acts[layer].backward(grad)
            beta = self.betas[layer]
            grad_support = (1.0 - beta) * grad + self.layer_linears[layer].backward(beta * grad)
            grad_hidden0 = grad_hidden0 + self.alpha * grad_support
            grad = (1.0 - self.alpha) * self.propagation.backward(grad_support)
        grad_hidden0 = grad_hidden0 + grad
        grad_hidden0 = self.input_dropout.backward(grad_hidden0)
        grad_hidden0 = self.input_act.backward(grad_hidden0)
        self.input_linear.backward(grad_hidden0)


__all__ = ["GCNII"]
