"""H2GCN baseline: ego/neighbour separation, 2-hop aggregation, concatenation.

Implements the three design principles of Zhu et al. (2020): (1) the ego
embedding is kept separate from neighbour aggregations, (2) both the 1-hop
and the 2-hop neighbourhoods (excluding self-loops) are aggregated, and
(3) the representations of all rounds are concatenated for the final
classifier.
"""

from __future__ import annotations

from typing import List

import numpy as np
import scipy.sparse as sp

from repro.graphs.graph import Graph
from repro.models.base import NodeClassifier
from repro.nn.activations import ReLU
from repro.nn.dropout import Dropout
from repro.nn.linear import Linear
from repro.propagation.sparse_ops import SparsePropagation
from repro.utils.rng import RngLike, ensure_rng


def _symmetric_normalize_no_self(adjacency: sp.spmatrix) -> sp.csr_matrix:
    adjacency = sp.csr_matrix(adjacency, dtype=np.float64)
    degrees = np.asarray(adjacency.sum(axis=1)).ravel()
    inv_sqrt = np.zeros_like(degrees)
    nonzero = degrees > 0
    inv_sqrt[nonzero] = 1.0 / np.sqrt(degrees[nonzero])
    diag = sp.diags(inv_sqrt)
    return diag.dot(adjacency).dot(diag).tocsr()


def _two_hop_adjacency(adjacency: sp.csr_matrix) -> sp.csr_matrix:
    """Strict 2-hop neighbourhood: reachable in two steps, not adjacent, not self."""
    squared = (adjacency @ adjacency).tolil()
    squared.setdiag(0)
    squared = squared.tocsr()
    squared.data[:] = 1.0
    overlap = squared.multiply(adjacency > 0)
    two_hop = squared - overlap
    two_hop.eliminate_zeros()
    return sp.csr_matrix(two_hop)


class H2GCN(NodeClassifier):
    """H2GCN with ``num_rounds`` aggregation rounds (the paper uses 2)."""

    def __init__(self, graph: Graph, *, hidden: int = 64, num_rounds: int = 2,
                 dropout: float = 0.5, rng: RngLike = None) -> None:
        super().__init__(graph, hidden=hidden)
        if num_rounds < 1:
            raise ValueError(f"num_rounds must be >= 1, got {num_rounds}")
        generator = ensure_rng(rng)
        self.num_rounds = num_rounds
        with self.timing.measure("precompute"):
            one_hop = _symmetric_normalize_no_self(graph.adjacency)
            two_hop = _symmetric_normalize_no_self(_two_hop_adjacency(graph.adjacency))
        self.one_hop = SparsePropagation(one_hop, timing=self.timing)
        self.two_hop = SparsePropagation(two_hop, timing=self.timing)
        self.embed = Linear(self.num_features, hidden, rng=generator, name="h2gcn.embed")
        self.embed_act = ReLU()
        self.dropout = Dropout(dropout, rng=generator)
        final_width = hidden * (1 + sum(2**round_ for round_ in range(1, num_rounds + 1)))
        self.head = Linear(final_width, self.num_classes, rng=generator, name="h2gcn.head")
        self._round_widths: List[int] = []

    def forward(self) -> np.ndarray:
        hidden0 = self.embed_act(self.embed(self.graph.features))
        rounds = [hidden0]
        current = hidden0
        for _ in range(self.num_rounds):
            aggregated = np.concatenate([self.one_hop(current), self.two_hop(current)], axis=1)
            rounds.append(aggregated)
            current = aggregated
        self._round_widths = [block.shape[1] for block in rounds]
        combined = np.concatenate(rounds, axis=1)
        combined = self.dropout(combined)
        return self.head(combined)

    def backward(self, grad_logits: np.ndarray) -> None:
        grad_combined = self.head.backward(grad_logits)
        grad_combined = self.dropout.backward(grad_combined)
        # Split the concatenated gradient back into per-round blocks.
        blocks: List[np.ndarray] = []
        offset = 0
        for width in self._round_widths:
            blocks.append(grad_combined[:, offset:offset + width])
            offset += width
        # Later rounds feed from earlier ones, so propagate gradients backwards.
        grad_current = blocks[-1]
        for round_index in range(self.num_rounds - 1, -1, -1):
            half = grad_current.shape[1] // 2
            grad_prev = (self.one_hop.backward(grad_current[:, :half])
                         + self.two_hop.backward(grad_current[:, half:]))
            if round_index == 0:
                grad_hidden0 = grad_prev + blocks[0]
            else:
                grad_current = grad_prev + blocks[round_index]
        if self.num_rounds == 0:  # pragma: no cover - guarded in __init__
            grad_hidden0 = blocks[0]
        grad_hidden0 = self.embed_act.backward(grad_hidden0)
        self.embed.backward(grad_hidden0)


__all__ = ["H2GCN"]
