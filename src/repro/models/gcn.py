"""Graph Convolutional Network (Kipf & Welling) baseline.

Uses the symmetric normalisation ``Â = D̃^{-1/2}(A + I)D̃^{-1/2}`` and the
standard two-layer architecture ``Â · ReLU(Â X W₁) W₂``; deeper variants are
available through ``num_layers`` (used by the Table XI iterative study).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.graphs.graph import Graph
from repro.graphs.normalize import symmetric_normalize
from repro.models.base import NodeClassifier
from repro.nn.activations import ReLU
from repro.nn.dropout import Dropout
from repro.nn.linear import Linear
from repro.propagation.sparse_ops import SparsePropagation
from repro.utils.rng import RngLike, ensure_rng


class GCN(NodeClassifier):
    """Multi-layer GCN with dropout between layers."""

    def __init__(self, graph: Graph, *, hidden: int = 64, num_layers: int = 2,
                 dropout: float = 0.5, rng: RngLike = None) -> None:
        super().__init__(graph, hidden=hidden)
        if num_layers < 1:
            raise ValueError(f"num_layers must be >= 1, got {num_layers}")
        generator = ensure_rng(rng)
        with self.timing.measure("precompute"):
            operator = symmetric_normalize(graph.adjacency)
        self.propagation = SparsePropagation(operator, timing=self.timing)
        self.num_layers = num_layers
        dims = [self.num_features] + [hidden] * (num_layers - 1) + [self.num_classes]
        self.linears: List[Linear] = [
            Linear(dims[i], dims[i + 1], rng=generator, name=f"gcn.{i}")
            for i in range(num_layers)
        ]
        self.activations: List[ReLU] = [ReLU() for _ in range(num_layers - 1)]
        self.dropouts: List[Dropout] = [Dropout(dropout, rng=generator)
                                        for _ in range(num_layers - 1)]

    def forward(self) -> np.ndarray:
        hidden = self.graph.features
        for layer in range(self.num_layers):
            hidden = self.propagation(hidden)
            hidden = self.linears[layer](hidden)
            if layer < self.num_layers - 1:
                hidden = self.activations[layer](hidden)
                hidden = self.dropouts[layer](hidden)
        return hidden

    def backward(self, grad_logits: np.ndarray) -> None:
        grad = grad_logits
        for layer in reversed(range(self.num_layers)):
            if layer < self.num_layers - 1:
                grad = self.dropouts[layer].backward(grad)
                grad = self.activations[layer].backward(grad)
            grad = self.linears[layer].backward(grad)
            grad = self.propagation.backward(grad)


__all__ = ["GCN"]
