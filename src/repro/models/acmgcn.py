"""ACM-GCN baseline: adaptive mixing of low-pass, high-pass and identity channels.

Each layer computes three filtered views of its input — low-pass ``ÂHW_L``,
high-pass ``(I − Â)HW_H`` and identity ``HW_I`` — and mixes them per node
with softmax weights produced by small per-channel scoring vectors.  This is
the mechanism that lets the model adapt between homophilous (low-pass) and
heterophilous (high-pass) regions of a graph.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np
import scipy.sparse as sp

from repro.graphs.graph import Graph
from repro.graphs.normalize import symmetric_normalize
from repro.models.base import NodeClassifier
from repro.nn.activations import ReLU
from repro.nn.dropout import Dropout
from repro.nn.init import glorot_uniform
from repro.nn.linear import Linear
from repro.nn.losses import softmax
from repro.nn.module import Module, Parameter
from repro.propagation.sparse_ops import SparsePropagation
from repro.utils.rng import RngLike, ensure_rng


class _ACMLayer(Module):
    """One adaptive channel-mixing layer."""

    def __init__(self, in_features: int, out_features: int,
                 low_pass: SparsePropagation, high_pass: SparsePropagation,
                 *, rng=None, name: str = "acm") -> None:
        super().__init__()
        generator = ensure_rng(rng)
        self.low_pass = low_pass
        self.high_pass = high_pass
        self.linear_low = Linear(in_features, out_features, rng=generator, name=f"{name}.low")
        self.linear_high = Linear(in_features, out_features, rng=generator, name=f"{name}.high")
        self.linear_id = Linear(in_features, out_features, rng=generator, name=f"{name}.id")
        self.score_low = Parameter(glorot_uniform(out_features, 1, rng=generator).ravel(),
                                   name=f"{name}.score_low")
        self.score_high = Parameter(glorot_uniform(out_features, 1, rng=generator).ravel(),
                                    name=f"{name}.score_high")
        self.score_id = Parameter(glorot_uniform(out_features, 1, rng=generator).ravel(),
                                  name=f"{name}.score_id")
        self._cache: Optional[dict] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        low = self.linear_low(self.low_pass(inputs))
        high = self.linear_high(self.high_pass(inputs))
        identity = self.linear_id(inputs)
        channels = [low, high, identity]
        scores = np.stack([
            low @ self.score_low.value,
            high @ self.score_high.value,
            identity @ self.score_id.value,
        ], axis=1)  # (n, 3)
        weights = softmax(scores, axis=1)
        output = (weights[:, 0:1] * low + weights[:, 1:2] * high
                  + weights[:, 2:3] * identity)
        self._cache = {"channels": channels, "weights": weights}
        return output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        channels = self._cache["channels"]
        weights = self._cache["weights"]
        score_params = [self.score_low, self.score_high, self.score_id]

        # d output / d channel_c has a direct term (weight_c * grad) and an
        # indirect term through the softmax mixing weights.
        grad_weights = np.stack(
            [np.einsum("nf,nf->n", grad_output, channel) for channel in channels], axis=1)
        # Softmax backward over the channel axis.
        inner = np.sum(grad_weights * weights, axis=1, keepdims=True)
        grad_scores = weights * (grad_weights - inner)

        grad_channels: List[np.ndarray] = []
        for index, channel in enumerate(channels):
            grad_channel = weights[:, index:index + 1] * grad_output
            grad_channel = grad_channel + np.outer(grad_scores[:, index],
                                                   score_params[index].value)
            score_params[index].grad += channel.T @ grad_scores[:, index]
            grad_channels.append(grad_channel)

        grad_low_in = self.low_pass.backward(self.linear_low.backward(grad_channels[0]))
        grad_high_in = self.high_pass.backward(self.linear_high.backward(grad_channels[1]))
        grad_id_in = self.linear_id.backward(grad_channels[2])
        return grad_low_in + grad_high_in + grad_id_in


class ACMGCN(NodeClassifier):
    """Stack of adaptive channel-mixing layers with a linear head."""

    def __init__(self, graph: Graph, *, hidden: int = 64, num_layers: int = 2,
                 dropout: float = 0.5, rng: RngLike = None) -> None:
        super().__init__(graph, hidden=hidden)
        generator = ensure_rng(rng)
        with self.timing.measure("precompute"):
            normalized = symmetric_normalize(graph.adjacency)
            identity = sp.identity(self.num_nodes, format="csr")
            high_pass_operator = (identity - normalized).tocsr()
        self.low_pass = SparsePropagation(normalized, timing=self.timing)
        self.high_pass = SparsePropagation(high_pass_operator, timing=self.timing)
        self.layers: List[_ACMLayer] = []
        self.activations: List[ReLU] = []
        self.dropouts: List[Dropout] = []
        in_features = self.num_features
        for index in range(num_layers):
            self.layers.append(_ACMLayer(in_features, hidden, self.low_pass, self.high_pass,
                                         rng=generator, name=f"acmgcn.{index}"))
            self.activations.append(ReLU())
            self.dropouts.append(Dropout(dropout, rng=generator))
            in_features = hidden
        self.head = Linear(in_features, self.num_classes, rng=generator, name="acmgcn.head")

    def forward(self) -> np.ndarray:
        hidden = self.graph.features
        for layer, activation, dropout in zip(self.layers, self.activations, self.dropouts):
            hidden = dropout(activation(layer(hidden)))
        return self.head(hidden)

    def backward(self, grad_logits: np.ndarray) -> None:
        grad = self.head.backward(grad_logits)
        for layer, activation, dropout in zip(reversed(self.layers),
                                              reversed(self.activations),
                                              reversed(self.dropouts)):
            grad = dropout.backward(grad)
            grad = activation.backward(grad)
            grad = layer.backward(grad)


__all__ = ["ACMGCN"]
