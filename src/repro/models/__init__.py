"""Node-classification models: SIGMA and the paper's baselines."""

from repro.models.base import NodeClassifier
from repro.models.acmgcn import ACMGCN
from repro.models.appnp import APPNP
from repro.models.gat import GAT
from repro.models.gcn import GCN
from repro.models.gcnii import GCNII
from repro.models.glognn import GloGNN
from repro.models.gprgnn import GPRGNN
from repro.models.h2gcn import H2GCN
from repro.models.linkx import LINKX
from repro.models.mixhop import MixHop
from repro.models.mlp import MLPClassifier
from repro.models.pprgo import PPRGo
from repro.models.registry import create_model, default_hyperparameters, list_models
from repro.models.sgc import SGC
from repro.models.sigma import SIGMA
from repro.models.sigma_iterative import SIGMAIterative

__all__ = [
    "NodeClassifier",
    "MLPClassifier",
    "GCN",
    "SGC",
    "GAT",
    "APPNP",
    "MixHop",
    "GCNII",
    "GPRGNN",
    "H2GCN",
    "ACMGCN",
    "LINKX",
    "GloGNN",
    "PPRGo",
    "SIGMA",
    "SIGMAIterative",
    "create_model",
    "list_models",
    "default_hyperparameters",
]
