"""PPRGo baseline: predictions propagated with a precomputed top-k PPR matrix.

PPRGo is the closest architectural relative of SIGMA among homophilous
models: both precompute a constant aggregation matrix and apply it once.
The difference — local PPR mass versus global SimRank similarity — is what
the paper's Fig. 1 highlights.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import Graph
from repro.models.base import NodeClassifier
from repro.nn.mlp import MLP
from repro.ppr.matrix import ppr_operator
from repro.propagation.sparse_ops import SparsePropagation
from repro.utils.rng import RngLike


class PPRGo(NodeClassifier):
    """``Z = Π_ppr · MLP(X)`` with a top-k sparse PPR matrix ``Π_ppr``."""

    def __init__(self, graph: Graph, *, hidden: int = 64, num_layers: int = 2,
                 dropout: float = 0.5, alpha: float = 0.15, top_k: int = 32,
                 ppr_epsilon: float = 1e-4, rng: RngLike = None) -> None:
        super().__init__(graph, hidden=hidden)
        with self.timing.measure("precompute"):
            operator = ppr_operator(graph, alpha=alpha, epsilon=ppr_epsilon, top_k=top_k)
        self.ppr = operator
        self.propagation = SparsePropagation(operator.matrix, timing=self.timing)
        self.mlp = MLP(self.num_features, hidden, self.num_classes,
                       num_layers=num_layers, dropout=dropout, rng=rng, name="pprgo")

    def forward(self) -> np.ndarray:
        predictions = self.mlp(self.graph.features)
        return self.propagation(predictions)

    def backward(self, grad_logits: np.ndarray) -> None:
        grad = self.propagation.backward(grad_logits)
        self.mlp.backward(grad)


__all__ = ["PPRGo"]
