"""Base class for full-batch transductive node classifiers.

Every model in :mod:`repro.models` — SIGMA and all baselines — follows the
same contract:

* the constructor receives the :class:`~repro.graphs.graph.Graph` (features,
  labels and topology are fixed for transductive node classification) plus
  model hyper-parameters;
* any one-off operator construction (SimRank, PPR, normalised adjacencies)
  happens during construction and is charged to the ``"precompute"`` timing
  bucket;
* ``forward()`` returns ``(n, num_classes)`` logits for all nodes and
  ``backward(grad_logits)`` accumulates parameter gradients;
* time spent applying graph aggregation operators is charged to the
  ``"aggregation"`` bucket so experiments can reproduce the paper's
  Pre./AGG/Learn break-down (Table VII).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ModelError
from repro.graphs.graph import Graph
from repro.nn.losses import softmax, softmax_cross_entropy
from repro.nn.module import Module
from repro.utils.timer import TimingBreakdown


class NodeClassifier(Module):
    """Shared plumbing for full-batch node classification models."""

    def __init__(self, graph: Graph, *, hidden: int = 64) -> None:
        super().__init__()
        if graph.features is None or graph.labels is None:
            raise ModelError("node classifiers require a graph with features and labels")
        if hidden <= 0:
            raise ModelError(f"hidden size must be positive, got {hidden}")
        self.graph = graph
        self.hidden = int(hidden)
        self.num_nodes = graph.num_nodes
        self.num_features = graph.num_features
        self.num_classes = graph.num_classes
        self.timing = TimingBreakdown()

    # ------------------------------------------------------------------ #
    # Interface
    # ------------------------------------------------------------------ #
    def forward(self) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    def backward(self, grad_logits: np.ndarray) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Convenience helpers
    # ------------------------------------------------------------------ #
    def loss_and_grad(self, mask: Optional[np.ndarray] = None) -> tuple[float, np.ndarray]:
        """Cross-entropy loss of the current forward pass on ``mask`` nodes."""
        logits = self.forward()
        return softmax_cross_entropy(logits, self.graph.labels, mask)

    def predict(self) -> np.ndarray:
        """Predicted class per node (evaluation mode, no dropout)."""
        was_training = self.training
        self.eval()
        try:
            logits = self.forward()
        finally:
            self.train(was_training)
        return np.argmax(logits, axis=1)

    def predict_proba(self) -> np.ndarray:
        """Predicted class probabilities per node (evaluation mode)."""
        was_training = self.training
        self.eval()
        try:
            logits = self.forward()
        finally:
            self.train(was_training)
        return softmax(logits, axis=1)

    def accuracy(self, mask: Optional[np.ndarray] = None) -> float:
        """Accuracy on ``mask`` nodes (all nodes when ``mask`` is None)."""
        predictions = self.predict()
        labels = self.graph.labels
        if mask is None:
            return float(np.mean(predictions == labels))
        mask = np.asarray(mask)
        indices = np.flatnonzero(mask) if mask.dtype == bool else mask
        return float(np.mean(predictions[indices] == labels[indices]))


__all__ = ["NodeClassifier"]
