"""SIGMA: SimRank-based global message aggregation (the paper's contribution).

Pipeline (paper §III.B, Fig. 3):

1. **Precompute** the approximate SimRank matrix ``S`` with LocalPush
   (Algorithm 1) or an exact/series computation on small graphs, pruned to
   the top-k scores per node.  This happens once, before training, and is
   charged to the ``"precompute"`` timing bucket.
2. **Embed** adjacency rows and features with two MLPs and join them with a
   third (Eq. (4)):
   ``H = MLP_H(δ·MLP_X(X) + (1 − δ)·MLP_A(A))``.
3. **Aggregate once, globally** (Eq. (5)): ``Ẑ = S·H`` — cost ``O(k·n·f)``
   thanks to the top-k pruned operator.
4. **Update** (Eq. (6)): ``Z = (1 − α)·Ẑ + α·H`` with a learnable balance
   ``α`` (initialised at 0.5, reported per dataset in Table X), followed by
   a linear classification head.

Ablation switches reproduce the rows of Table VIII:

* ``use_simrank=False``      → "SIGMA w/o S" (α pinned to 1).
* ``operator_mode="simrank_adj"`` → "SIGMA w/ S·A" (localised operator).
* ``use_features=False``     → "SIGMA w/o X" (δ = 0).
* ``use_adjacency=False``    → "SIGMA w/o A" (δ = 1).
"""

from __future__ import annotations

from typing import Literal, Optional

import numpy as np
import scipy.sparse as sp

from repro.config import (
    SIGMA_DEFAULT_SIMRANK,
    UNSET,
    SimRankConfig,
    merge_deprecated_kwargs,
)
from repro.errors import ModelError
from repro.graphs.graph import Graph
from repro.graphs.sparse import sparse_row_normalize
from repro.models.base import NodeClassifier
from repro.nn.linear import Linear
from repro.nn.mlp import MLP
from repro.nn.module import Parameter
from repro.propagation.sparse_ops import SparsePropagation
from repro.simrank.topk import simrank_operator
from repro.utils.rng import RngLike, ensure_rng

OperatorMode = Literal["simrank", "simrank_adj"]


def resolve_sigma_simrank_config(simrank, *, simrank_method, decay, epsilon,
                                 top_k, simrank_backend, simrank_executor,
                                 simrank_workers, simrank_cache_dir,
                                 simrank_cache_max_bytes):
    """Shared deprecated-kwarg shim of the two SIGMA variants.

    Folds the pre-config keywords into ``simrank`` (defaulting to
    :data:`repro.config.SIGMA_DEFAULT_SIMRANK`), one
    :class:`DeprecationWarning` per keyword.  The pool/cache knobs had
    ``None`` for their legacy default, so an explicit ``None`` there
    means "default" — but ``top_k=None`` stays an explicit override: the
    legacy default was 32, and ``None`` is the documented "no pruning"
    request.
    """
    return merge_deprecated_kwargs(simrank, {
        "simrank_method": ("method", simrank_method),
        "decay": ("decay", decay),
        "epsilon": ("epsilon", epsilon),
        "top_k": ("top_k", top_k),
        "simrank_backend": ("backend", simrank_backend),
        "simrank_executor": (
            "executor", UNSET if simrank_executor is None else simrank_executor),
        "simrank_workers": (
            "workers", UNSET if simrank_workers is None else simrank_workers),
        "simrank_cache_dir": (
            "cache_dir", UNSET if simrank_cache_dir is None else simrank_cache_dir),
        "simrank_cache_max_bytes": (
            "cache_max_bytes",
            UNSET if simrank_cache_max_bytes is None else simrank_cache_max_bytes),
    }, default=SIGMA_DEFAULT_SIMRANK, api_hint="simrank=SimRankConfig(...)",
        stacklevel=4)


def _sigmoid(value: float) -> float:
    # Two-branch form so np.exp only ever sees a non-positive argument:
    # the naive 1/(1+exp(-x)) overflows once the learnable α logit drifts
    # far negative during training.
    if value >= 0.0:
        return float(1.0 / (1.0 + np.exp(-value)))
    z = np.exp(value)
    return float(z / (1.0 + z))


class SIGMA(NodeClassifier):
    """SIGMA node classifier.

    Parameters
    ----------
    graph:
        Labelled, attributed graph.
    hidden:
        Width of the hidden embeddings.
    delta:
        Feature factor δ balancing ``MLP_X(X)`` against ``MLP_A(A)``.
    alpha:
        Initial value of the local/global balance α; learnable unless
        ``learn_alpha=False``.
    simrank:
        A :class:`repro.config.SimRankConfig` describing the operator
        precompute: method, decay, ε, top-k, the LocalPush ``(backend,
        executor, workers)`` plan and the persistent operator cache.
        Defaults to :data:`repro.config.SIGMA_DEFAULT_SIMRANK` (the
        paper's ``ε = 0.1``, ``k = 32``).  The pre-config keywords
        (``simrank_method=``, ``epsilon=``, ``top_k=``, ``decay=``,
        ``simrank_backend=``, ``simrank_executor=``, ``simrank_workers=``,
        ``simrank_cache_dir=``, ``simrank_cache_max_bytes=``) remain
        accepted as deprecated shims: each emits a
        :class:`DeprecationWarning` and folds into an equivalent config
        with an identical operator and cache key.
    final_layers:
        Number of layers in ``MLP_H`` (1 for small datasets, 2 for large, as
        in the paper's parameter settings).
    """

    def __init__(self, graph: Graph, *, hidden: int = 64, delta: float = 0.5,
                 alpha: float = 0.5, learn_alpha: bool = True,
                 dropout: float = 0.5, final_layers: int = 1,
                 simrank: Optional[SimRankConfig] = None,
                 use_simrank: bool = True, use_features: bool = True,
                 use_adjacency: bool = True,
                 operator_mode: OperatorMode = "simrank",
                 rng: RngLike = None,
                 simrank_method: object = UNSET, epsilon: object = UNSET,
                 top_k: object = UNSET, decay: object = UNSET,
                 simrank_backend: object = UNSET,
                 simrank_executor: object = UNSET,
                 simrank_workers: object = UNSET,
                 simrank_cache_dir: object = UNSET,
                 simrank_cache_max_bytes: object = UNSET) -> None:
        super().__init__(graph, hidden=hidden)
        simrank = resolve_sigma_simrank_config(
            simrank, simrank_method=simrank_method, decay=decay,
            epsilon=epsilon, top_k=top_k, simrank_backend=simrank_backend,
            simrank_executor=simrank_executor,
            simrank_workers=simrank_workers,
            simrank_cache_dir=simrank_cache_dir,
            simrank_cache_max_bytes=simrank_cache_max_bytes)
        if not 0.0 <= delta <= 1.0:
            raise ModelError(f"delta must be in [0, 1], got {delta}")
        if not 0.0 <= alpha <= 1.0:
            raise ModelError(f"alpha must be in [0, 1], got {alpha}")
        if operator_mode not in ("simrank", "simrank_adj"):
            raise ModelError(f"unknown operator_mode {operator_mode!r}")
        if not use_features and not use_adjacency:
            raise ModelError("at least one of use_features/use_adjacency must be true")
        generator = ensure_rng(rng)

        self.delta = float(delta)
        self.use_simrank = use_simrank
        self.use_features = use_features
        self.use_adjacency = use_adjacency
        self.operator_mode = operator_mode
        self.learn_alpha = learn_alpha and use_simrank
        #: The resolved operator configuration (``self.simrank`` below is
        #: the computed operator itself, kept for backward compatibility).
        self.simrank_config = simrank

        # ---------------- precomputation (Algorithm 1 + top-k) ---------- #
        self.simrank = None
        self.propagation: Optional[SparsePropagation] = None
        if use_simrank:
            with self.timing.measure("precompute"):
                operator = simrank_operator(graph, config=simrank)
                matrix = operator.matrix
                if operator_mode == "simrank_adj":
                    # Localised ablation: restrict aggregation weights to the
                    # immediate neighbourhood (paper's "SIGMA w/ S·A").
                    matrix = sparse_row_normalize(matrix @ graph.adjacency.tocsr())
            self.simrank = operator
            self.propagation = SparsePropagation(matrix, timing=self.timing)

        # ---------------- feature transformation (Eq. (4)) -------------- #
        self._adjacency = graph.adjacency.tocsr()
        self.mlp_features = None
        self.mlp_adjacency = None
        if use_features:
            self.mlp_features = MLP(self.num_features, hidden, hidden, num_layers=1,
                                    rng=generator, name="sigma.mlp_x")
        if use_adjacency:
            self.mlp_adjacency = MLP(self.num_nodes, hidden, hidden, num_layers=1,
                                     rng=generator, name="sigma.mlp_a")
        self.mlp_hidden = MLP(hidden, hidden, hidden, num_layers=final_layers,
                              dropout=dropout, rng=generator, name="sigma.mlp_h")
        self.head = Linear(hidden, self.num_classes, rng=generator, name="sigma.head")

        # ---------------- local/global balance α ------------------------ #
        initial_logit = float(np.log(alpha / (1.0 - alpha))) if 0.0 < alpha < 1.0 else (
            10.0 if alpha >= 1.0 else -10.0)
        self._alpha_param = Parameter(np.array([initial_logit]), name="sigma.alpha")
        self._fixed_alpha = float(alpha)
        self._cache: Optional[dict] = None

    # ------------------------------------------------------------------ #
    @property
    def alpha(self) -> float:
        """Current value of the balance α (Eq. (6)); learnable by default."""
        if not self.use_simrank:
            return 1.0
        if self.learn_alpha:
            return _sigmoid(float(self._alpha_param.value[0]))
        return self._fixed_alpha

    @property
    def effective_delta(self) -> float:
        """δ actually used after the use_features / use_adjacency switches."""
        if not self.use_features:
            return 0.0
        if not self.use_adjacency:
            return 1.0
        return self.delta

    def parameters(self):
        params = super().parameters()
        if not self.learn_alpha:
            params = [p for p in params if p is not self._alpha_param]
        return params

    # ------------------------------------------------------------------ #
    def _combined_embedding(self) -> np.ndarray:
        delta = self.effective_delta
        hidden_x = self.mlp_features(self.graph.features) if self.use_features else None
        hidden_a = self.mlp_adjacency(self._adjacency) if self.use_adjacency else None
        if hidden_x is None:
            return hidden_a
        if hidden_a is None:
            return hidden_x
        return delta * hidden_x + (1.0 - delta) * hidden_a

    def forward(self) -> np.ndarray:
        combined = self._combined_embedding()
        hidden = self.mlp_hidden(combined)
        alpha = self.alpha
        if self.use_simrank:
            aggregated = self.propagation(hidden)   # Eq. (5): Ẑ = S·H
            updated = (1.0 - alpha) * aggregated + alpha * hidden  # Eq. (6)
        else:
            aggregated = None
            updated = hidden
        self._cache = {"hidden": hidden, "aggregated": aggregated, "alpha": alpha}
        return self.head(updated)

    def backward(self, grad_logits: np.ndarray) -> None:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        cache = self._cache
        grad_updated = self.head.backward(grad_logits)
        alpha = cache["alpha"]
        if self.use_simrank:
            aggregated, hidden = cache["aggregated"], cache["hidden"]
            if self.learn_alpha:
                # d loss / d α, then through the sigmoid parameterisation.
                grad_alpha = float(np.sum(grad_updated * (hidden - aggregated)))
                self._alpha_param.grad[0] += grad_alpha * alpha * (1.0 - alpha)
            grad_hidden = alpha * grad_updated
            grad_hidden = grad_hidden + self.propagation.backward((1.0 - alpha) * grad_updated)
        else:
            grad_hidden = grad_updated
        grad_combined = self.mlp_hidden.backward(grad_hidden)
        delta = self.effective_delta
        if self.use_features and self.use_adjacency:
            self.mlp_features.backward(delta * grad_combined)
            self.mlp_adjacency.backward((1.0 - delta) * grad_combined)
        elif self.use_features:
            self.mlp_features.backward(grad_combined)
        else:
            self.mlp_adjacency.backward(grad_combined)

    # ------------------------------------------------------------------ #
    def embeddings(self) -> np.ndarray:
        """The pre-head representation ``Z`` of Eq. (6) (Fig. 8 visualisation)."""
        was_training = self.training
        self.eval()
        try:
            combined = self._combined_embedding()
            hidden = self.mlp_hidden(combined)
            if not self.use_simrank:
                return hidden
            aggregated = self.propagation(hidden)
            alpha = self.alpha
            return (1.0 - alpha) * aggregated + alpha * hidden
        finally:
            self.train(was_training)


__all__ = ["SIGMA"]
