"""Model registry: build any model in the benchmark by name.

The registry centralises per-model default hyper-parameters so experiments
(Table V, VII, VIII, XI …) construct every baseline the same way.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.errors import ModelError
from repro.graphs.graph import Graph
from repro.models.acmgcn import ACMGCN
from repro.models.appnp import APPNP
from repro.models.base import NodeClassifier
from repro.models.gat import GAT
from repro.models.gcn import GCN
from repro.models.gcnii import GCNII
from repro.models.glognn import GloGNN
from repro.models.gprgnn import GPRGNN
from repro.models.h2gcn import H2GCN
from repro.models.linkx import LINKX
from repro.models.mixhop import MixHop
from repro.models.mlp import MLPClassifier
from repro.models.pprgo import PPRGo
from repro.models.sgc import SGC
from repro.models.sigma import SIGMA
from repro.models.sigma_iterative import SIGMAIterative
from repro.utils.rng import RngLike

ModelFactory = Callable[..., NodeClassifier]

_REGISTRY: Dict[str, ModelFactory] = {
    "mlp": MLPClassifier,
    "gcn": GCN,
    "sgc": SGC,
    "gat": GAT,
    "appnp": APPNP,
    "mixhop": MixHop,
    "gcnii": GCNII,
    "gprgnn": GPRGNN,
    "h2gcn": H2GCN,
    "acmgcn": ACMGCN,
    "linkx": LINKX,
    "glognn": GloGNN,
    "pprgo": PPRGo,
    "sigma": SIGMA,
    "sigma_iterative": SIGMAIterative,
}

# Default hyper-parameters used by the experiment harness; individual
# experiments override what they sweep (δ, α, k, ε, layer counts, ...).
#
# Entries hold *paper-table overrides only*: a key may appear here only
# when its value differs from the model's ``__init__`` default, so every
# number lives in exactly one place (the signature — or, for the SIGMA
# operator settings, ``repro.config.SIGMA_DEFAULT_SIMRANK``).
# ``tests/test_models_registry.py`` asserts no silently diverging
# duplicates.
_DEFAULTS: Dict[str, Dict[str, object]] = {
    "mlp": {},
    "gcn": {},
    "sgc": {},
    "gat": {},
    "appnp": {},
    "mixhop": {"hidden": 32},  # Table VI: narrower because of the 3 powers
    "gcnii": {},
    "gprgnn": {},
    "h2gcn": {},
    "acmgcn": {},
    "linkx": {},
    "glognn": {},
    "pprgo": {},
    # The SIGMA operator defaults (ε = 0.1, k = 32, backend auto) live in
    # repro.config.SIGMA_DEFAULT_SIMRANK, consumed by the model __init__.
    "sigma": {},
    "sigma_iterative": {},
}


def list_models() -> List[str]:
    """All registered model names."""
    return list(_REGISTRY)


def default_hyperparameters(name: str) -> Dict[str, object]:
    """A copy of the registry defaults for ``name``."""
    if name not in _DEFAULTS:
        raise ModelError(f"unknown model {name!r}; available: {', '.join(_REGISTRY)}")
    return dict(_DEFAULTS[name])


def create_model(name: str, graph: Graph, *, rng: RngLike = None,
                 **overrides: object) -> NodeClassifier:
    """Instantiate model ``name`` on ``graph`` with defaults plus ``overrides``."""
    key = name.lower()
    if key not in _REGISTRY:
        raise ModelError(f"unknown model {name!r}; available: {', '.join(_REGISTRY)}")
    hyperparameters = default_hyperparameters(key)
    hyperparameters.update(overrides)
    return _REGISTRY[key](graph, rng=rng, **hyperparameters)


__all__ = ["create_model", "list_models", "default_hyperparameters"]
