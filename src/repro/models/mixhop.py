"""MixHop baseline: each layer concatenates several adjacency powers."""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.graphs.graph import Graph
from repro.graphs.normalize import symmetric_normalize
from repro.models.base import NodeClassifier
from repro.nn.activations import ReLU
from repro.nn.dropout import Dropout
from repro.nn.linear import Linear
from repro.propagation.sparse_ops import SparsePropagation
from repro.utils.rng import RngLike, ensure_rng


class _MixHopLayer:
    """One MixHop layer: ``concat_p(Â^p H W_p)`` over the configured powers."""

    def __init__(self, in_features: int, out_features: int, powers: Sequence[int],
                 propagation: SparsePropagation, rng, name: str) -> None:
        self.powers = list(powers)
        self.propagation = propagation
        self.linears = [Linear(in_features, out_features, rng=rng, name=f"{name}.p{p}")
                        for p in self.powers]
        self.out_features = out_features * len(self.powers)
        self._cache: List[np.ndarray] = []

    def forward(self, hidden: np.ndarray) -> np.ndarray:
        outputs = []
        self._cache = []
        propagated = hidden
        by_power = {0: hidden}
        max_power = max(self.powers)
        for power in range(1, max_power + 1):
            propagated = self.propagation(propagated)
            by_power[power] = propagated
        for power, linear in zip(self.powers, self.linears):
            outputs.append(linear(by_power[power]))
        return np.concatenate(outputs, axis=1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        width = grad_output.shape[1] // len(self.powers)
        grad_input = None
        for index, (power, linear) in enumerate(zip(self.powers, self.linears)):
            grad_part = grad_output[:, index * width:(index + 1) * width]
            grad_hidden = linear.backward(grad_part)
            for _ in range(power):
                grad_hidden = self.propagation.backward(grad_hidden)
            grad_input = grad_hidden if grad_input is None else grad_input + grad_hidden
        return grad_input

    def parameters(self):
        params = []
        for linear in self.linears:
            params.extend(linear.parameters())
        return params


class MixHop(NodeClassifier):
    """Two MixHop layers followed by a linear classification head."""

    def __init__(self, graph: Graph, *, hidden: int = 64, powers: Sequence[int] = (0, 1, 2),
                 num_layers: int = 2, dropout: float = 0.5, rng: RngLike = None) -> None:
        super().__init__(graph, hidden=hidden)
        generator = ensure_rng(rng)
        with self.timing.measure("precompute"):
            operator = symmetric_normalize(graph.adjacency)
        self.propagation = SparsePropagation(operator, timing=self.timing)
        self.layers: List[_MixHopLayer] = []
        self.activations: List[ReLU] = []
        self.dropouts: List[Dropout] = []
        in_features = self.num_features
        for index in range(num_layers):
            layer = _MixHopLayer(in_features, hidden, powers, self.propagation,
                                 generator, name=f"mixhop.{index}")
            self.layers.append(layer)
            self.activations.append(ReLU())
            self.dropouts.append(Dropout(dropout, rng=generator))
            in_features = layer.out_features
        self.head = Linear(in_features, self.num_classes, rng=generator, name="mixhop.head")

    def parameters(self):
        params = []
        for layer in self.layers:
            params.extend(layer.parameters())
        params.extend(self.head.parameters())
        return params

    def forward(self) -> np.ndarray:
        hidden = self.graph.features
        for layer, activation, dropout in zip(self.layers, self.activations, self.dropouts):
            hidden = layer.forward(hidden)
            hidden = activation(hidden)
            hidden = dropout(hidden)
        return self.head(hidden)

    def backward(self, grad_logits: np.ndarray) -> None:
        grad = self.head.backward(grad_logits)
        for layer, activation, dropout in zip(reversed(self.layers),
                                              reversed(self.activations),
                                              reversed(self.dropouts)):
            grad = dropout.backward(grad)
            grad = activation.backward(grad)
            grad = layer.backward(grad)


__all__ = ["MixHop"]
