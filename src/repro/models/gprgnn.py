"""GPR-GNN baseline: MLP followed by propagation with learnable hop weights."""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import Graph
from repro.graphs.normalize import symmetric_normalize
from repro.models.base import NodeClassifier
from repro.nn.mlp import MLP
from repro.propagation.propagators import GPRPropagation
from repro.utils.rng import RngLike


class GPRGNN(NodeClassifier):
    """Generalized PageRank GNN.

    The learnable hop weights γ_ℓ can become negative, which lets the model
    act as a high-pass filter on heterophilous graphs.
    """

    def __init__(self, graph: Graph, *, hidden: int = 64, num_layers: int = 2,
                 dropout: float = 0.5, alpha: float = 0.1, num_steps: int = 10,
                 rng: RngLike = None) -> None:
        super().__init__(graph, hidden=hidden)
        self.mlp = MLP(self.num_features, hidden, self.num_classes,
                       num_layers=num_layers, dropout=dropout, rng=rng, name="gprgnn")
        with self.timing.measure("precompute"):
            operator = symmetric_normalize(graph.adjacency)
        self.propagation = GPRPropagation(operator, num_steps=num_steps, alpha=alpha,
                                          timing=self.timing, name="gprgnn.gpr")

    def forward(self) -> np.ndarray:
        predictions = self.mlp(self.graph.features)
        return self.propagation(predictions)

    def backward(self, grad_logits: np.ndarray) -> None:
        grad = self.propagation.backward(grad_logits)
        self.mlp.backward(grad)


__all__ = ["GPRGNN"]
