"""Command-line interface for training a single model on a benchmark.

Examples
--------
``python -m repro.cli --model sigma --dataset chameleon``
``python -m repro.cli --model glognn --dataset pokec --scale-factor 0.25 --repeats 2``
"""

from __future__ import annotations

import argparse
import json
from typing import Optional

from repro.datasets.registry import list_datasets, load_dataset
from repro.models.registry import list_models
from repro.training.config import TrainConfig
from repro.training.evaluation import repeated_evaluation


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        description="Train a heterophilous GNN (SIGMA or a baseline) on a benchmark.")
    parser.add_argument("--model", default="sigma", choices=list_models(),
                        help="model name (default: sigma)")
    parser.add_argument("--dataset", default="texas",
                        help=f"benchmark name; one of {', '.join(list_datasets())}")
    parser.add_argument("--repeats", type=int, default=None,
                        help="number of repeated splits (default: the paper's 5/10)")
    parser.add_argument("--scale-factor", type=float, default=1.0,
                        help="node-count multiplier for quicker runs")
    parser.add_argument("--epochs", type=int, default=300, help="maximum epochs")
    parser.add_argument("--patience", type=int, default=60, help="early-stopping patience")
    parser.add_argument("--lr", type=float, default=0.01, help="learning rate")
    parser.add_argument("--weight-decay", type=float, default=1e-3, help="weight decay")
    parser.add_argument("--hidden", type=int, default=None, help="hidden width override")
    parser.add_argument("--delta", type=float, default=None,
                        help="feature factor δ (SIGMA / GloGNN)")
    parser.add_argument("--top-k", type=int, default=None,
                        help="top-k pruning of the SimRank/PPR operator")
    parser.add_argument("--epsilon", type=float, default=None,
                        help="LocalPush error threshold ε")
    parser.add_argument("--simrank-backend", default=None,
                        choices=("dict", "vectorized", "sharded", "auto"),
                        help="LocalPush engine family for SIGMA's precompute "
                             "(SIGMA models only; default: auto — the "
                             "unified core on large graphs)")
    parser.add_argument("--simrank-executor", default=None,
                        choices=("serial", "thread", "process", "auto"),
                        help="unified-core executor for the LocalPush shard "
                             "pushes (SIGMA models only; every executor is "
                             "bit-identical — 'process' shares the walk "
                             "matrix across a process pool for multi-core "
                             "scaling)")
    parser.add_argument("--simrank-workers", type=int, default=None,
                        help="worker-pool size for the thread/process "
                             "LocalPush executors (SIGMA models only; "
                             "results are identical for every worker count)")
    parser.add_argument("--simrank-cache-dir", default=None,
                        help="directory of a persistent SimRank operator "
                             "cache; repeated runs on the same graph and "
                             "hyper-parameters skip precompute (SIGMA "
                             "models only)")
    parser.add_argument("--simrank-cache-max-bytes", type=int, default=None,
                        help="byte cap on the operator cache directory; "
                             "stores beyond it evict least-recently-used "
                             "entries (SIGMA models only)")
    parser.add_argument("--seed", type=int, default=0, help="master random seed")
    parser.add_argument("--json", action="store_true", help="print the summary as JSON")
    return parser


def main(argv: Optional[list[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    config = TrainConfig(learning_rate=args.lr, weight_decay=args.weight_decay,
                         max_epochs=args.epochs, patience=args.patience,
                         track_test_history=False)
    dataset = load_dataset(args.dataset, seed=args.seed, scale_factor=args.scale_factor)

    overrides = {}
    for name in ("hidden", "delta", "top_k", "epsilon", "simrank_backend",
                 "simrank_executor", "simrank_workers", "simrank_cache_dir",
                 "simrank_cache_max_bytes"):
        value = getattr(args, name)
        if value is not None:
            overrides[name] = value
    if args.model not in ("sigma", "sigma_iterative"):
        rejected = [name for name in overrides if name.startswith("simrank_")]
        if rejected:
            flags = ", ".join("--" + name.replace("_", "-") for name in rejected)
            parser.error(f"{flags}: only supported by SIGMA models, "
                         f"not {args.model!r}")

    summary = repeated_evaluation(args.model, dataset, num_repeats=args.repeats,
                                  config=config, seed=args.seed, **overrides)
    row = summary.as_row()
    if args.json:
        print(json.dumps(row, indent=2))
    else:
        print(f"model={row['model']} dataset={row['dataset']}")
        print(f"accuracy: {row['accuracy_mean']} ± {row['accuracy_std']} %")
        print(f"learning time: {row['learning_time']} s "
              f"(precompute {row['precompute_time']} s, "
              f"aggregation {row['aggregation_time']} s)")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
