"""Command-line interface for training a single model on a benchmark.

The CLI is a thin shell over the public API: flags are parsed straight
into a :class:`repro.config.RunSpec` (:func:`build_runspec`) — with the
SimRank flags collected by :meth:`repro.config.SimRankConfig.from_cli_args`
— and executed by :func:`repro.api.run`.

The ``experiment`` subcommand exposes the declarative experiment
registry (one :class:`repro.config.ExperimentSpec` per paper artefact):
``python -m repro.cli experiment --list`` /
``python -m repro.cli experiment fig6 --scale-factor 0.25`` delegate to
:mod:`repro.experiments.runner` (also installed as ``repro-experiment``).

The ``serve`` subcommand starts the long-lived query daemon
(:mod:`repro.serve`): ``python -m repro.cli serve texas --port 8571``
loads a registry dataset and answers ``/topk``, ``/score``, ``/metrics``
and ``/healthz`` over HTTP, configured by
:class:`repro.config.ServeConfig` flags (see ``serve --help``).

Training-loop defaults (``--lr``, ``--weight-decay``, ``--epochs``,
``--patience``) are sourced from :class:`repro.training.config.TrainConfig`
so the numbers live in exactly one place.

Examples
--------
``python -m repro.cli --model sigma --dataset chameleon``
``python -m repro.cli --model glognn --dataset pokec --scale-factor 0.25 --repeats 2``
``python -m repro.cli experiment fig6 --scale-factor 0.25 --store artifacts/``
"""

from __future__ import annotations

import argparse
import json
from typing import Optional

from repro.api import run
from repro.config import (
    SIGMA_DEFAULT_SIMRANK,
    SIMRANK_BACKENDS,
    SIMRANK_DTYPES,
    SIMRANK_EXECUTORS,
    SIMRANK_KERNELS,
    SIMRANK_METHODS,
    SIMRANK_MODELS,
    RunSpec,
    SimRankConfig,
)
from repro.datasets.registry import list_datasets
from repro.models.registry import list_models
from repro.training.config import TrainConfig

#: Single source of the training-loop defaults shown in ``--help``.
_TRAIN_DEFAULTS = TrainConfig()


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        description="Train a heterophilous GNN (SIGMA or a baseline) on a "
                    "benchmark. Use the 'experiment' subcommand "
                    "(python -m repro.cli experiment --list) to regenerate "
                    "a registered paper artefact instead.")
    parser.add_argument("--model", default="sigma", choices=list_models(),
                        help="model name (default: sigma)")
    parser.add_argument("--dataset", default="texas",
                        help=f"benchmark name; one of {', '.join(list_datasets())}")
    parser.add_argument("--repeats", type=int, default=None,
                        help="number of repeated splits (default: the paper's 5/10)")
    parser.add_argument("--scale-factor", type=float, default=1.0,
                        help="node-count multiplier for quicker runs")
    parser.add_argument("--epochs", type=int, default=_TRAIN_DEFAULTS.max_epochs,
                        help="maximum epochs")
    parser.add_argument("--patience", type=int, default=_TRAIN_DEFAULTS.patience,
                        help="early-stopping patience")
    parser.add_argument("--lr", type=float, default=_TRAIN_DEFAULTS.learning_rate,
                        help="learning rate")
    parser.add_argument("--weight-decay", type=float,
                        default=_TRAIN_DEFAULTS.weight_decay, help="weight decay")
    parser.add_argument("--hidden", type=int, default=None, help="hidden width override")
    parser.add_argument("--delta", type=float, default=None,
                        help="feature factor δ (SIGMA / GloGNN)")
    parser.add_argument("--top-k", type=int, default=None,
                        help="top-k pruning of the SimRank/PPR operator")
    parser.add_argument("--epsilon", type=float, default=None,
                        help="LocalPush error threshold ε")
    parser.add_argument("--decay", type=float, default=None,
                        help="SimRank decay factor c (SIGMA models only)")
    parser.add_argument("--simrank-method", default=None,
                        choices=SIMRANK_METHODS,
                        help="SimRank computation method for SIGMA's "
                             "precompute (default: auto — exactness on "
                             "small graphs, LocalPush above)")
    parser.add_argument("--simrank-backend", default=None,
                        choices=SIMRANK_BACKENDS,
                        help="LocalPush engine family for SIGMA's precompute "
                             "(SIGMA models only; default: auto — the "
                             "unified core on large graphs)")
    parser.add_argument("--simrank-executor", default=None,
                        choices=SIMRANK_EXECUTORS,
                        help="unified-core executor for the LocalPush shard "
                             "pushes (SIGMA models only; every executor is "
                             "bit-identical — 'process' shares the walk "
                             "matrix across a process pool for multi-core "
                             "scaling)")
    parser.add_argument("--simrank-kernel", default=None,
                        choices=SIMRANK_KERNELS,
                        help="push-round kernel for the LocalPush core "
                             "(SIGMA models only; every kernel is "
                             "bit-identical per dtype — 'fused' merges "
                             "shard partials in one pass, 'numba' JITs the "
                             "frontier extraction when numba is installed, "
                             "'auto' picks fused)")
    parser.add_argument("--simrank-dtype", default=None,
                        choices=SIMRANK_DTYPES,
                        help="working precision of the SimRank operator "
                             "(SIGMA models only; float32 halves operator "
                             "memory under the adjusted error bound "
                             "documented on repro.simrank.kernels."
                             "float32_error_bound)")
    parser.add_argument("--simrank-workers", type=int, default=None,
                        help="worker-pool size for the thread/process "
                             "LocalPush executors (SIGMA models only; "
                             "results are identical for every worker count)")
    parser.add_argument("--simrank-cache-dir", default=None,
                        help="directory of a persistent SimRank operator "
                             "cache; repeated runs on the same graph and "
                             "hyper-parameters skip precompute (SIGMA "
                             "models only)")
    parser.add_argument("--simrank-cache-max-bytes", type=int, default=None,
                        help="byte cap on the operator cache directory; "
                             "stores beyond it evict least-recently-used "
                             "entries (SIGMA models only)")
    parser.add_argument("--seed", type=int, default=0, help="master random seed")
    parser.add_argument("--json", action="store_true", help="print the summary as JSON")
    return parser


def _simrank_flags_used(args: argparse.Namespace) -> list[str]:
    """The SIGMA-only flags present on this command line."""
    sigma_only = ("decay", "simrank_method", "simrank_backend",
                  "simrank_executor", "simrank_kernel", "simrank_dtype",
                  "simrank_workers", "simrank_cache_dir",
                  "simrank_cache_max_bytes")
    return [name for name in sigma_only if getattr(args, name) is not None]


def build_runspec(args: argparse.Namespace) -> RunSpec:
    """Translate parsed CLI flags into the :class:`RunSpec` that runs.

    For the SIGMA models every SimRank flag folds into one
    :class:`SimRankConfig` (flags left unset inherit the model default,
    :data:`SIGMA_DEFAULT_SIMRANK`); for the baselines ``--top-k`` /
    ``--epsilon`` stay plain model overrides and the SIGMA-only flags are
    rejected by :func:`main` before this point.
    """
    train = TrainConfig(learning_rate=args.lr, weight_decay=args.weight_decay,
                        max_epochs=args.epochs, patience=args.patience,
                        track_test_history=False)
    overrides = {}
    for name in ("hidden", "delta"):
        value = getattr(args, name)
        if value is not None:
            overrides[name] = value
    simrank: Optional[SimRankConfig] = None
    if args.model in SIMRANK_MODELS:
        simrank = SimRankConfig.from_cli_args(args, base=SIGMA_DEFAULT_SIMRANK)
    else:
        for name in ("top_k", "epsilon"):
            value = getattr(args, name)
            if value is not None:
                overrides[name] = value
    return RunSpec(model=args.model, dataset=args.dataset,
                   overrides=overrides, train=train, simrank=simrank,
                   seed=args.seed, repeats=args.repeats,
                   scale_factor=args.scale_factor)


def main(argv: Optional[list[str]] = None) -> int:
    if argv is None:
        import sys

        argv = sys.argv[1:]
    argv = list(argv)
    if argv and argv[0] == "experiment":
        from repro.experiments.runner import main as experiment_main

        return experiment_main(argv[1:])
    if argv and argv[0] == "serve":
        from repro.serve.daemon import main as serve_main

        return serve_main(argv[1:])
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.model not in SIMRANK_MODELS:
        rejected = _simrank_flags_used(args)
        if rejected:
            flags = ", ".join("--" + name.replace("_", "-") for name in rejected)
            parser.error(f"{flags}: only supported by SIGMA models, "
                         f"not {args.model!r}")

    result = run(build_runspec(args))
    row = result.as_row()
    if args.json:
        print(json.dumps(row, indent=2))
    else:
        print(f"model={row['model']} dataset={row['dataset']}")
        print(f"accuracy: {row['accuracy_mean']} ± {row['accuracy_std']} %")
        print(f"learning time: {row['learning_time']} s "
              f"(precompute {row['precompute_time']} s, "
              f"aggregation {row['aggregation_time']} s)")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
