"""Personalized PageRank substrate.

PPR serves two roles in the reproduction: it is the aggregation operator of
the PPRGo baseline, and it is the "local" aggregation contrasted against
SimRank in the paper's Fig. 1(b)/(c).
"""

from repro.ppr.power import ppr_matrix_power, ppr_vector_power
from repro.ppr.push import forward_push_ppr
from repro.ppr.matrix import ppr_operator, topk_ppr_matrix

__all__ = [
    "ppr_vector_power",
    "ppr_matrix_power",
    "forward_push_ppr",
    "topk_ppr_matrix",
    "ppr_operator",
]
