"""Sparse top-k PPR matrices (the PPRGo aggregation operator)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
import scipy.sparse as sp

from repro.graphs.graph import Graph
from repro.graphs.sparse import top_k_per_row
from repro.ppr.power import ppr_matrix_power
from repro.ppr.push import forward_push_ppr
from repro.utils.timer import Timer


def topk_ppr_matrix(graph: Graph, *, alpha: float = 0.15, epsilon: float = 1e-4,
                    top_k: int = 32) -> sp.csr_matrix:
    """Build a sparse PPR matrix keeping the top-k entries per source node.

    Uses forward push per source node (sparse, scalable) and prunes each row
    to its ``top_k`` largest scores — the construction PPRGo relies on.
    """
    n = graph.num_nodes
    rows, cols, data = [], [], []
    for source in range(n):
        scores = forward_push_ppr(graph, source, alpha=alpha, epsilon=epsilon)
        if not scores:
            scores = {source: 1.0}
        for node, value in scores.items():
            rows.append(source)
            cols.append(node)
            data.append(value)
    matrix = sp.coo_matrix((data, (rows, cols)), shape=(n, n)).tocsr()
    return top_k_per_row(matrix, top_k, keep_diagonal=True)


@dataclass
class PPROperator:
    """A precomputed PPR aggregation operator with provenance metadata."""

    matrix: sp.csr_matrix
    alpha: float
    epsilon: Optional[float]
    top_k: Optional[int]
    precompute_seconds: float


def ppr_operator(graph: Graph, *, alpha: float = 0.15, epsilon: float = 1e-4,
                 top_k: Optional[int] = 32, dense_size_limit: int = 1500) -> PPROperator:
    """Precompute a PPR operator, choosing dense or push-based construction.

    Graphs with at most ``dense_size_limit`` nodes use the exact power
    iteration matrix; larger graphs use forward push.  Rows are pruned to
    ``top_k`` entries when requested.
    """
    timer = Timer()
    with timer:
        if graph.num_nodes <= dense_size_limit:
            dense = ppr_matrix_power(graph, alpha=alpha)
            matrix = sp.csr_matrix(np.where(dense > 1e-12, dense, 0.0))
            if top_k is not None:
                matrix = top_k_per_row(matrix, top_k, keep_diagonal=True)
            eps: Optional[float] = None
        else:
            matrix = topk_ppr_matrix(graph, alpha=alpha, epsilon=epsilon,
                                     top_k=top_k if top_k is not None else 32)
            eps = epsilon
    return PPROperator(matrix=matrix, alpha=alpha, epsilon=eps, top_k=top_k,
                       precompute_seconds=timer.elapsed)


__all__ = ["topk_ppr_matrix", "ppr_operator", "PPROperator"]
