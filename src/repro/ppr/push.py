"""Forward-push (Andersen–Chung–Lang style) approximate PPR.

Forward push maintains per-node estimates and residuals for one source and
pushes residual mass along out-edges until every residual is below
``epsilon · degree``.  It is the standard building block for scalable PPR
matrices (PPRGo) and mirrors the role LocalPush plays for SimRank.
"""

from __future__ import annotations

from collections import deque
from typing import Dict

import numpy as np

from repro.errors import GraphError
from repro.graphs.graph import Graph


def forward_push_ppr(graph: Graph, source: int, *, alpha: float = 0.15,
                     epsilon: float = 1e-4) -> Dict[int, float]:
    """Approximate PPR vector of ``source`` as a sparse ``{node: score}`` dict.

    Parameters
    ----------
    alpha:
        Teleport probability.
    epsilon:
        Push threshold relative to node degree; smaller values give more
        accurate (and larger) results.
    """
    if not 0.0 < alpha < 1.0:
        raise GraphError(f"alpha must be in (0, 1), got {alpha}")
    if epsilon <= 0:
        raise GraphError(f"epsilon must be positive, got {epsilon}")
    if not 0 <= source < graph.num_nodes:
        raise GraphError(f"source {source} out of range")

    adjacency = graph.adjacency
    indptr, indices = adjacency.indptr, adjacency.indices
    degrees = np.diff(indptr)

    estimate: Dict[int, float] = {}
    residual: Dict[int, float] = {source: 1.0}
    queue: deque[int] = deque([source])
    queued = {source}

    while queue:
        node = queue.popleft()
        queued.discard(node)
        degree = max(int(degrees[node]), 1)
        value = residual.get(node, 0.0)
        if value < epsilon * degree:
            continue
        estimate[node] = estimate.get(node, 0.0) + alpha * value
        push_amount = (1.0 - alpha) * value / degree
        residual[node] = 0.0
        for neighbor in indices[indptr[node]:indptr[node + 1]]:
            neighbor = int(neighbor)
            residual[neighbor] = residual.get(neighbor, 0.0) + push_amount
            neighbor_degree = max(int(degrees[neighbor]), 1)
            if residual[neighbor] >= epsilon * neighbor_degree and neighbor not in queued:
                queue.append(neighbor)
                queued.add(neighbor)
    return estimate


__all__ = ["forward_push_ppr"]
