"""Power-iteration personalized PageRank.

The PPR vector of a source node ``s`` with teleport probability ``α`` is the
fixed point of ``π = α·e_s + (1 − α)·Pᵀ π`` where ``P = D⁻¹A`` is the
random-walk transition matrix.  Power iteration converges geometrically with
rate ``1 − α``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphError
from repro.graphs.graph import Graph
from repro.graphs.normalize import row_normalize


def _check_alpha(alpha: float) -> float:
    if not 0.0 < alpha < 1.0:
        raise GraphError(f"teleport probability alpha must be in (0, 1), got {alpha}")
    return float(alpha)


def ppr_vector_power(graph: Graph, source: int, *, alpha: float = 0.15,
                     num_iterations: int = 100, tolerance: float = 1e-10) -> np.ndarray:
    """PPR vector of a single source node by power iteration."""
    alpha = _check_alpha(alpha)
    if not 0 <= source < graph.num_nodes:
        raise GraphError(f"source {source} out of range")
    transition = row_normalize(graph.adjacency)
    restart = np.zeros(graph.num_nodes)
    restart[source] = 1.0
    scores = restart.copy()
    for _ in range(num_iterations):
        updated = alpha * restart + (1.0 - alpha) * (transition.T @ scores)
        if np.abs(updated - scores).max() < tolerance:
            scores = updated
            break
        scores = updated
    return scores


def ppr_matrix_power(graph: Graph, *, alpha: float = 0.15,
                     num_iterations: int = 100, tolerance: float = 1e-10) -> np.ndarray:
    """Dense ``(n, n)`` PPR matrix: row ``u`` is the PPR vector of source ``u``.

    Intended for small graphs; large graphs should use
    :func:`repro.ppr.matrix.topk_ppr_matrix` instead.
    """
    alpha = _check_alpha(alpha)
    n = graph.num_nodes
    transition_t = row_normalize(graph.adjacency).T.tocsr()
    scores = np.eye(n)
    restart = np.eye(n)
    for _ in range(num_iterations):
        propagated = (transition_t @ scores.T).T  # equals scores @ P
        updated = alpha * restart + (1.0 - alpha) * propagated
        if np.abs(updated - scores).max() < tolerance:
            scores = updated
            break
        scores = updated
    return scores


__all__ = ["ppr_vector_power", "ppr_matrix_power"]
