"""Request coalescing: concurrent queries share one frontier round.

:class:`QueryBatcher` sits between the daemon's thread-per-request
handlers and the :class:`repro.serve.service.SimRankService`.  The first
thread to submit while no batch is forming becomes the *leader*: it
waits ``ServeConfig.batch_window_seconds`` for company (cut short when
``max_batch_size`` queries have piled up), snapshots the queue, and
answers the whole batch through one ``topk_batch`` call — a single
shared frontier-round walk of the ladder.  Followers block on an event
and receive their answer (or the batch's exception) from the leader.

Coalescing never changes an answer: the single-source engine's batch
guarantee makes a coalesced query bit-identical to the same query served
alone (pinned by the concurrent-client test in ``tests/test_serve.py``).
Queries with different ``k`` are grouped and served per ``k``, smallest
batch-internal order first, so grouping is deterministic.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional, Tuple

from repro.config import ServeConfig
from repro.serve.service import QueryAnswer, SimRankService


class _Pending:
    """One submitted query waiting for its batch to be served."""

    def __init__(self, source: int, k: Optional[int]) -> None:
        self.source = source
        self.k = k
        self.done = threading.Event()
        self.answer: Optional[QueryAnswer] = None
        self.error: Optional[BaseException] = None


class QueryBatcher:
    """Coalesce concurrent ``topk`` submissions into shared batches."""

    def __init__(self, service: SimRankService, *,
                 window_seconds: Optional[float] = None,
                 max_batch_size: Optional[int] = None) -> None:
        serve: ServeConfig = service.serve
        self.service = service
        self.window_seconds = (window_seconds if window_seconds is not None
                               else serve.batch_window_seconds)
        self.max_batch_size = (max_batch_size if max_batch_size is not None
                               else serve.max_batch_size)
        self._condition = threading.Condition()
        self._pending: List[_Pending] = []
        self._leader_active = False

    def submit(self, source: int, k: Optional[int] = None) -> QueryAnswer:
        """Answer one query, possibly coalesced with concurrent ones.

        Blocks until the query's batch has been served.  Re-raises the
        batch's exception when its ladder walk failed.
        """
        entry = _Pending(source, k)
        with self._condition:
            self._pending.append(entry)
            self._condition.notify_all()
            lead = not self._leader_active
            if lead:
                self._leader_active = True
        if lead:
            self._drain()
        entry.done.wait()
        if entry.error is not None:
            raise entry.error
        assert entry.answer is not None
        return entry.answer

    # ------------------------------------------------------------------ #
    def _drain(self) -> None:
        """Leader loop: serve batches until the queue is empty."""
        while True:
            self._wait_for_window()
            with self._condition:
                batch = self._pending[:self.max_batch_size]
                del self._pending[:self.max_batch_size]
            if batch:
                self._serve(batch)
            with self._condition:
                if not self._pending:
                    self._leader_active = False
                    return

    def _wait_for_window(self) -> None:
        """Give concurrent submitters the batch window to pile up."""
        if self.window_seconds <= 0.0:
            return
        deadline = time.perf_counter() + self.window_seconds
        with self._condition:
            while len(self._pending) < self.max_batch_size:
                remaining = deadline - time.perf_counter()
                if remaining <= 0.0:
                    return
                self._condition.wait(remaining)

    def _serve(self, batch: List[_Pending]) -> None:
        """Answer one snapshot of the queue, grouped by requested ``k``."""
        groups: Dict[Tuple[bool, int], List[_Pending]] = {}
        for entry in batch:
            key = (entry.k is None, entry.k if entry.k is not None else 0)
            groups.setdefault(key, []).append(entry)
        for key in sorted(groups):
            group = groups[key]
            try:
                answers = self.service.topk_batch(
                    [entry.source for entry in group], group[0].k)
            except Exception as error:  # propagate to every submitter
                for entry in group:
                    entry.error = error
            else:
                for entry, answer in zip(group, answers):
                    entry.answer = answer
            finally:
                for entry in group:
                    entry.done.set()


__all__ = ["QueryBatcher"]
