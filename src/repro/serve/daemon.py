"""Long-lived HTTP daemon exposing the serving layer (stdlib only).

Endpoints (all ``GET``, all JSON):

``/topk?u=<node>[&k=<k>]``
    Top-k most similar nodes to ``u``; coalesced with concurrent
    requests through the :class:`repro.serve.batching.QueryBatcher`.
    The response carries the serving ``path`` (exact/cached/degraded),
    the ``epsilon`` the answer satisfies and the live counters.
``/score?u=<node>&v=<node>``
    The single-pair score, same provenance fields.
``/metrics``
    :meth:`repro.serve.service.SimRankService.metrics` — per-path
    counters, operator/row cache statistics, graph and config echo.
``/metrics/prometheus``
    The same registry in the Prometheus text exposition format
    (:meth:`repro.serve.service.SimRankService.prometheus_metrics`);
    the one non-JSON endpoint, served with the standard
    ``text/plain; version=0.0.4`` content type for scrapers.
``/healthz``
    Liveness probe.
``/update`` (``POST``)
    Apply an edge-update batch to the served graph.  The JSON body is
    the :meth:`repro.graphs.delta.UpdateBatch.to_dict` shape —
    ``{"deltas": [{"kind": "insert", "u": 0, "v": 1}, ...]}`` — plus an
    optional ``"wait": true`` to block until the repair lands (and get
    its telemetry back).  By default the repair runs in the background
    and queries keep answering from the pre-update graph
    (``stale_served`` counts them) until the repaired operator swaps in.

Bad parameters (and invalid deltas) are a 400, an exhausted degradation
ladder a 503 — the daemon never dies on a query.  ``main`` is the
``repro.cli serve`` subcommand: it loads a registry dataset, builds the
service stack and blocks in ``serve_forever``.
"""

from __future__ import annotations

import argparse
import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple
from urllib.parse import parse_qs, urlparse

from repro.config import DynamicConfig, ServeConfig, SimRankConfig

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from repro.telemetry.runtime import Telemetry
from repro.errors import (ConfigError, GraphError, ReproError, ServeError,
                          SimRankError)
from repro.graphs.graph import Graph
from repro.serve.batching import QueryBatcher
from repro.serve.service import SimRankService


class ServeDaemon(ThreadingHTTPServer):
    """A ``ThreadingHTTPServer`` bound to one service + batcher stack."""

    daemon_threads = True

    def __init__(self, address: Tuple[str, int], service: SimRankService,
                 batcher: Optional[QueryBatcher] = None) -> None:
        super().__init__(address, _Handler)
        self.service = service
        self.batcher = batcher if batcher is not None else QueryBatcher(service)


def _query_int(params: Dict[str, List[str]], name: str,
               required: bool = True) -> Optional[int]:
    values = params.get(name, [])
    if not values:
        if required:
            raise ConfigError(f"missing required query parameter {name!r}")
        return None
    try:
        return int(values[-1])
    except ValueError:
        raise ConfigError(
            f"query parameter {name!r} must be an integer, "
            f"got {values[-1]!r}") from None


class _Handler(BaseHTTPRequestHandler):
    server: ServeDaemon

    def log_message(self, format: str, *args: object) -> None:
        """Silence per-request stderr logging; /metrics is the record."""

    def _send_json(self, status: int, payload: Dict[str, object]) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, text: str, content_type: str) -> None:
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        parsed = urlparse(self.path)
        params = parse_qs(parsed.query)
        service = self.server.service
        try:
            if parsed.path == "/healthz":
                self._send_json(200, {
                    "status": "ok",
                    "num_nodes": int(service.graph.num_nodes),
                })
            elif parsed.path == "/metrics":
                self._send_json(200, service.metrics())
            elif parsed.path == "/metrics/prometheus":
                from repro.telemetry.exposition import PROMETHEUS_CONTENT_TYPE

                self._send_text(200, service.prometheus_metrics(),
                                PROMETHEUS_CONTENT_TYPE)
            elif parsed.path == "/topk":
                u = _query_int(params, "u")
                k = _query_int(params, "k", required=False)
                assert u is not None
                answer = self.server.batcher.submit(u, k)
                self._send_json(200, {
                    "source": answer.source,
                    "k": answer.k,
                    "entries": [[node, value]
                                for node, value in answer.entries],
                    "path": answer.path,
                    "epsilon": answer.epsilon,
                    "elapsed_seconds": answer.elapsed_seconds,
                    "batch_size": answer.batch_size,
                    "counters": service.counters.to_dict(),
                })
            elif parsed.path == "/score":
                u = _query_int(params, "u")
                v = _query_int(params, "v")
                assert u is not None and v is not None
                answer = service.score(u, v)
                self._send_json(200, {
                    "u": answer.u,
                    "v": answer.v,
                    "score": answer.value,
                    "path": answer.path,
                    "epsilon": answer.epsilon,
                    "elapsed_seconds": answer.elapsed_seconds,
                    "counters": service.counters.to_dict(),
                })
            else:
                self._send_json(404, {"error": f"unknown path {parsed.path!r}"})
        except ServeError as error:
            self._send_json(503, {"error": str(error)})
        except (ConfigError, GraphError, SimRankError) as error:
            self._send_json(400, {"error": str(error)})

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        parsed = urlparse(self.path)
        service = self.server.service
        try:
            if parsed.path != "/update":
                self._send_json(404, {"error": f"unknown path {parsed.path!r}"})
                return
            length = int(self.headers.get("Content-Length") or 0)
            raw = self.rfile.read(length) if length else b""
            try:
                payload = json.loads(raw.decode("utf-8")) if raw else {}
            except (UnicodeDecodeError, json.JSONDecodeError) as error:
                raise ConfigError(
                    f"/update body must be a JSON object: {error}") from None
            if not isinstance(payload, dict):
                raise ConfigError("/update body must be a JSON object with "
                                  "a 'deltas' list")
            wait = payload.pop("wait", None)
            if wait is not None and not isinstance(wait, bool):
                raise ConfigError(f"'wait' must be a boolean, got {wait!r}")
            from repro.graphs.delta import UpdateBatch

            batch = UpdateBatch.from_dict(payload)
            result = service.apply_update(batch, wait=wait)
            self._send_json(200, {
                **result,
                "counters": service.counters.to_dict(),
            })
        except ServeError as error:
            self._send_json(503, {"error": str(error)})
        except (ConfigError, GraphError, SimRankError) as error:
            self._send_json(400, {"error": str(error)})


def make_daemon(graph: Graph, *, simrank: Optional[SimRankConfig] = None,
                serve: Optional[ServeConfig] = None,
                dynamic: Optional[DynamicConfig] = None,
                telemetry: Optional["Telemetry"] = None) -> ServeDaemon:
    """Build the full daemon stack (service → batcher → HTTP server).

    Binds immediately; ``serve.port=0`` picks a free port
    (``daemon.server_address`` reports the bound one).  The caller owns
    the lifecycle: ``serve_forever()`` to run, ``shutdown()`` +
    ``server_close()`` to stop.  ``telemetry`` threads an enabled
    handle through the whole stack (service counters, cache events,
    spans — see :class:`repro.serve.service.SimRankService`).
    """
    serve = serve if serve is not None else ServeConfig()
    service = SimRankService(graph, simrank=simrank, serve=serve,
                             dynamic=dynamic, telemetry=telemetry)
    return ServeDaemon((serve.host, serve.port), service)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli serve",
        description="Serve single-source SimRank queries over HTTP.")
    parser.add_argument("dataset",
                        help="registry dataset to load and serve")
    parser.add_argument("--seed", type=int, default=0,
                        help="dataset generation seed (default 0)")
    parser.add_argument("--scale-factor", type=float, default=1.0,
                        help="dataset down-scaling factor")
    parser.add_argument("--host", default=None, help="bind host")
    parser.add_argument("--port", type=int, default=None,
                        help="bind port (0 picks a free one)")
    parser.add_argument("--serve-top-k", type=int, default=None,
                        help="default k for /topk requests")
    parser.add_argument("--batch-window", type=float, default=None,
                        help="request-coalescing window in seconds")
    parser.add_argument("--max-batch-size", type=int, default=None,
                        help="max coalesced queries per frontier round")
    parser.add_argument("--time-budget", type=float, default=None,
                        help="per-query exact-path wall budget in seconds")
    parser.add_argument("--max-pushes-per-query", type=int, default=None,
                        help="admission cap on frontier absorptions")
    parser.add_argument("--degraded-epsilon-factor", type=float, default=None,
                        help="looser-ε fallback multiplier")
    parser.add_argument("--no-exact", action="store_true",
                        help="disable the exact rung of the ladder")
    parser.add_argument("--no-cached-rows", action="store_true",
                        help="disable the cached rung of the ladder")
    parser.add_argument("--epsilon", type=float, default=None,
                        help="operator error bound ε")
    parser.add_argument("--decay", type=float, default=None,
                        help="SimRank decay factor c")
    parser.add_argument("--executor", default=None,
                        choices=("serial", "thread", "process"),
                        help="LocalPush executor for query rounds")
    parser.add_argument("--workers", type=int, default=None,
                        help="executor worker count")
    parser.add_argument("--cache-dir", default=None,
                        help="operator cache directory (the cached rung)")
    parser.add_argument("--max-batch-edges", type=int, default=None,
                        help="largest /update batch accepted")
    parser.add_argument("--repair-max-pushes", type=int, default=None,
                        help="admission cap on repair frontier absorptions")
    parser.add_argument("--synchronous-repair", action="store_true",
                        help="block /update until the repair lands "
                             "(default: repair in the background)")
    parser.add_argument("--no-store-repaired", action="store_true",
                        help="do not write repaired snapshots to the "
                             "operator cache")
    parser.add_argument("--telemetry", action="store_true",
                        help="enable the telemetry subsystem: spans are "
                             "recorded in memory and every instrumented "
                             "layer shares the /metrics/prometheus registry")
    parser.add_argument("--trace-path", default=None, metavar="PATH",
                        help="append finished spans to a JSONL trace file "
                             "(implies --telemetry; summarise with "
                             "repro-trace)")
    parser.add_argument("--max-recorded-spans", type=int, default=None,
                        help="cap on the in-memory span recorder")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """``repro.cli serve`` entry point: load, bind, serve forever."""
    args = build_parser().parse_args(
        list(argv) if argv is not None else None)
    serve_config = ServeConfig.from_cli_args(args)
    simrank_overrides: Dict[str, object] = {}
    for attr, field_name in (("epsilon", "epsilon"), ("decay", "decay"),
                             ("executor", "executor"), ("workers", "workers"),
                             ("cache_dir", "cache_dir")):
        value = getattr(args, attr)
        if value is not None:
            simrank_overrides[field_name] = value
    simrank_config = SimRankConfig(**simrank_overrides)  # type: ignore[arg-type]

    from repro.datasets.registry import load_dataset

    try:
        dataset = load_dataset(args.dataset, seed=args.seed,
                               scale_factor=args.scale_factor)
    except ReproError as error:
        print(f"error: {error}")
        return 2
    from repro.config import TelemetryConfig
    from repro.telemetry import telemetry_from_config

    telemetry = telemetry_from_config(TelemetryConfig.from_cli_args(args))
    daemon = make_daemon(dataset.graph, simrank=simrank_config,
                         serve=serve_config,
                         dynamic=DynamicConfig.from_cli_args(args),
                         telemetry=telemetry)
    host, port = daemon.server_address[0], daemon.server_address[1]
    print(f"serving {args.dataset} ({dataset.graph.num_nodes} nodes) "
          f"on http://{host}:{port} — endpoints: /topk /score /metrics "
          f"/metrics/prometheus /healthz /update")
    try:
        daemon.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
        pass
    finally:
        daemon.server_close()
        telemetry.close()
    return 0


__all__ = ["ServeDaemon", "make_daemon", "build_parser", "main"]
