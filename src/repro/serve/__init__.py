"""Online serving layer: SimRank-as-a-service on the LocalPush engine.

The package turns the batch reproduction into a query system: a
long-lived daemon holds one graph plus a warm operator cache and answers
``topk(u, k)`` / ``score(u, v)`` over HTTP, with request coalescing and
admission-controlled graceful degradation.  Configure it with
:class:`repro.config.ServeConfig` (plus the usual
:class:`repro.config.SimRankConfig` operator contract) and start it with
``python -m repro.cli serve <dataset>``.

The degradation ladder
----------------------
Every query walks the same three rungs, falling through on failure and
reporting the rung that answered in its response ``path`` field:

1. ``exact`` — the single-source LocalPush engine
   (:func:`repro.simrank.engine.multi_source_localpush`) at the
   configured ε, one shared frontier round per coalesced batch.
   Admission control: ``max_pushes_per_query`` caps the frontier work
   (the engine raises past it) and ``time_budget_seconds`` discards a
   completed answer that arrived too late.
2. ``cached`` — any dominating all-pairs operator-cache entry
   (tighter ε′ ≤ ε, larger k′ ≥ k, same graph/decay/normalisation)
   serves the row with zero push work via
   :meth:`repro.simrank.cache.OperatorCache.lookup_row`.
3. ``degraded`` — a looser-ε recompute at
   ``ε × degraded_epsilon_factor``; the answer still satisfies the
   Lemma III.5 bound at that loosened ε, which the response reports.

Only when the last rung fails does the query raise
:class:`repro.errors.ServeError` (HTTP 503); the daemon itself never
dies on a query.

Counter semantics
-----------------
:class:`repro.serve.service.ServiceCounters` counts *queries* (not
batches, except where noted), exposed in every response and at
``/metrics``:

- ``queries`` — total answered; each is also counted in exactly one of
  ``exact_served`` / ``cached_served`` / ``degraded_served`` /
  ``failed``.
- ``exact_failures`` — queries whose exact rung faulted (admission cap
  or compute error) before falling through; ``budget_overruns`` —
  queries whose completed exact answer was discarded as over-budget.
  Both are *in addition to* the rung that finally served them.
- ``batches`` — shared exact frontier rounds; ``coalesced`` — queries
  that shared their round with at least one other query.  Coalescing
  never changes an answer (the engine's batch guarantee; pinned by
  ``tests/test_serve.py``).
- The row-cache pair ``row_hits``/``row_misses`` lives on the
  :class:`repro.simrank.cache.OperatorCache` and appears under
  ``cache`` in ``/metrics``.

Every counter is backed by a :mod:`repro.telemetry` registry counter
(``repro_serve_<name>_total``), making increments atomic under the
daemon's thread-per-request server.  ``GET /metrics/prometheus`` serves
the registry in the Prometheus text format (latency quantiles and QPS
are refreshed as gauges at scrape time); the JSON ``/metrics`` shape is
unchanged.  Start the daemon with ``--telemetry`` (and optionally
``--trace-path``) to additionally record spans — ``serve.exact_batch``
per shared frontier round, ``dynamic.repair`` per update batch — and to
mirror operator-cache events into the scraped registry.
"""

from repro.serve.batching import QueryBatcher
from repro.serve.daemon import ServeDaemon, build_parser, main, make_daemon
from repro.serve.service import (
    SERVE_PATHS,
    QueryAnswer,
    ScoreAnswer,
    ServiceCounters,
    SimRankService,
)

__all__ = ["SimRankService", "QueryAnswer", "ScoreAnswer",
           "ServiceCounters", "QueryBatcher", "ServeDaemon", "make_daemon",
           "build_parser", "main", "SERVE_PATHS"]
