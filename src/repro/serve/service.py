"""The serving core: single-source queries behind a degradation ladder.

:class:`SimRankService` answers ``topk``/``score`` queries against one
long-lived graph.  Every query walks the same three-rung ladder:

1. **exact** — the single-source LocalPush engine at the configured ε,
   admission-controlled by ``ServeConfig.max_pushes_per_query`` (the
   engine raises past the cap) and ``ServeConfig.time_budget_seconds``
   (a completed answer that took longer is discarded as over-budget).
2. **cached** — any dominating all-pairs operator-cache entry serves the
   row via :meth:`repro.simrank.cache.OperatorCache.lookup_row`, with no
   push work at all.
3. **degraded** — a looser-ε recompute at
   ``ε × ServeConfig.degraded_epsilon_factor``; cheap because the push
   threshold ``(1−c)·ε`` grows with ε.

Only when the last rung fails does the query raise
:class:`repro.errors.ServeError`; every earlier failure falls through
and is recorded in the per-path counters (see :class:`ServiceCounters`).
The ``compute_exact``/``compute_degraded`` callables are injectable so
the fault-injection suite can force any rung to fail.

This module is in the R3 determinism lint scope: given one service
instance, equal queries return bit-identical answers regardless of
batch composition (the engine guarantee) — no wall-clock reads, global
RNG or unordered-set iteration may influence an answer.  The latency
metrics below read the *monotonic* clock (R3-exempt) and feed only the
``/metrics`` observability payload, never an answer.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from threading import Lock, Thread
from time import monotonic
from typing import (TYPE_CHECKING, Callable, Deque, Dict, List, Optional,
                    Sequence, Tuple)

import numpy as np
import scipy.sparse as sp

from repro.config import DynamicConfig, ServeConfig, SimRankConfig
from repro.errors import GraphError, ServeError, SimRankError
from repro.graphs.graph import Graph

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from repro.dynamic.operator import DynamicOperator, RepairResult
    from repro.graphs.delta import Updates
    from repro.simrank.cache import OperatorCache
    from repro.telemetry.metrics import Counter, MetricsRegistry
    from repro.telemetry.runtime import Telemetry

#: The ladder rungs, in fall-through order; every answer names its rung.
SERVE_PATHS = ("exact", "cached", "degraded")

#: Injectable row computation: ``(sources, top_k, epsilon) -> {source: row}``
#: where each row is a ``1×n`` CSR matrix.
RowCompute = Callable[[Sequence[int], Optional[int], float],
                      Dict[int, sp.csr_matrix]]

#: Rolling per-path sample window of the latency percentiles — big enough
#: for stable p99 estimates, small enough that a long-lived service never
#: grows unboundedly.
LATENCY_WINDOW = 1024

#: Registry help strings for the twelve service counters, in the
#: ``ServiceCounters.to_dict`` key order.
_COUNTER_HELP = {
    "queries": "Total queries answered.",
    "batches": "Shared exact frontier rounds executed.",
    "coalesced": "Queries that shared their exact round with another.",
    "exact_served": "Queries answered by the exact rung.",
    "cached_served": "Queries answered from a cached operator row.",
    "degraded_served": "Queries answered at the degraded epsilon.",
    "failed": "Queries for which every serving rung failed.",
    "exact_failures": "Queries whose exact rung faulted.",
    "budget_overruns": "Exact answers discarded as over the time budget.",
    "updates_applied": "Update batches whose incremental repair landed.",
    "repair_seconds": "Cumulative wall seconds of landed repairs.",
    "stale_served": "Queries answered while a repair was in flight.",
}


def _serve_metric_name(name: str) -> str:
    """Prometheus name for one service counter (``repro_serve_...``)."""
    if name.endswith("_seconds"):
        return f"repro_serve_{name}"
    return f"repro_serve_{name}_total"


@dataclass
class QueryAnswer:
    """One answered ``topk`` query: the entries plus serving provenance."""

    source: int
    k: Optional[int]
    entries: List[Tuple[int, float]]
    path: str
    epsilon: float
    elapsed_seconds: float
    batch_size: int = 1


@dataclass
class ScoreAnswer:
    """One answered single-pair query."""

    u: int
    v: int
    value: float
    path: str
    epsilon: float
    elapsed_seconds: float


class ServiceCounters:
    """Per-path query accounting (all counts are *queries*, not batches).

    ``queries`` is the total answered; each one is also counted in
    exactly one of ``exact_served``/``cached_served``/``degraded_served``
    or ``failed``.  ``exact_failures`` counts queries whose exact rung
    faulted (admission cap or injected error) and ``budget_overruns``
    those whose completed exact answer was discarded for exceeding the
    time budget — both then fell through the ladder.  ``batches`` counts
    shared exact frontier rounds and ``coalesced`` the queries that
    shared their round with at least one other query.

    The dynamic-update integration adds ``updates_applied`` (update
    batches whose repair landed), ``repair_seconds`` (cumulative wall
    time those repairs took — the only non-integer counter) and
    ``stale_served`` (queries answered from the pre-update graph while a
    repair was still in flight — the documented freshness trade of
    background repair, see :meth:`SimRankService.apply_update`).

    The counters also accumulate per-path latency samples
    (:meth:`record_latency`, a rolling :data:`LATENCY_WINDOW` per path)
    summarised by :meth:`latency_summary` into the ``/metrics`` latency
    section: per-path p50/p95/p99 seconds plus queries-per-second over
    the observed query span.  Latency is observability only — it never
    influences an answer (see the module docstring's R3 note).

    Thread safety
    -------------
    Every count is backed by a
    :class:`repro.telemetry.metrics.MetricsRegistry` counter named
    ``repro_serve_<name>_total`` (``repro_serve_repair_seconds`` for the
    one non-count sum), so increments are atomic under the registry's
    lock and survive the daemon's thread-per-request server without lost
    updates; the latency window has its own lock.  Mutate through
    :meth:`inc` — the old bare integer attributes are gone precisely
    because ``+=`` on them was a read-modify-write race.
    """

    #: The twelve counter names, in ``to_dict`` key order.
    NAMES = tuple(_COUNTER_HELP)

    def __init__(self, registry: Optional["MetricsRegistry"] = None) -> None:
        if registry is None:
            from repro.telemetry.metrics import MetricsRegistry

            registry = MetricsRegistry()
        self.registry = registry
        self._counters: Dict[str, "Counter"] = {
            name: registry.counter(_serve_metric_name(name),
                                   _COUNTER_HELP[name])
            for name in self.NAMES}
        self._latency_lock = Lock()
        self._latency: Dict[str, Deque[float]] = {
            path: deque(maxlen=LATENCY_WINDOW) for path in SERVE_PATHS}
        self._latency_counts: Dict[str, int] = {
            path: 0 for path in SERVE_PATHS}
        self._first_query_at: Optional[float] = None
        self._last_query_at: Optional[float] = None

    def inc(self, name: str, amount: float = 1.0) -> None:
        """Atomically add ``amount`` to counter ``name``."""
        self._counters[name].inc(amount)

    def value(self, name: str) -> float:
        """Current value of counter ``name``."""
        return self._counters[name].value()

    def record_latency(self, path: str, seconds: float) -> None:
        """Record one answered query's wall time under its serving path."""
        with self._latency_lock:
            self._latency[path].append(seconds)
            self._latency_counts[path] += 1
            now = monotonic()
            if self._first_query_at is None:
                self._first_query_at = now
            self._last_query_at = now

    def latency_summary(self) -> Dict[str, object]:
        """The ``/metrics`` latency section.

        ``paths`` maps every serving path to ``None`` (no queries yet) or
        to its cumulative ``count`` plus ``p50/p95/p99_seconds`` over the
        rolling window; ``qps`` is queries-per-second across the span
        from the first to the last recorded query (``None`` until two
        distinct instants exist).
        """
        paths: Dict[str, Optional[Dict[str, object]]] = {}
        with self._latency_lock:
            windows = {path: list(self._latency[path])
                       for path in SERVE_PATHS}
            counts = dict(self._latency_counts)
            first, last = self._first_query_at, self._last_query_at
        for path in SERVE_PATHS:
            window = windows[path]
            if not window:
                paths[path] = None
                continue
            p50, p95, p99 = np.percentile(np.asarray(window), (50, 95, 99))
            paths[path] = {
                "count": counts[path],
                "p50_seconds": float(p50),
                "p95_seconds": float(p95),
                "p99_seconds": float(p99),
            }
        qps: Optional[float] = None
        if first is not None:
            assert last is not None
            span = last - first
            if span > 0.0:
                qps = sum(counts.values()) / span
        return {"paths": paths, "qps": qps,
                "window_size": LATENCY_WINDOW}

    def to_dict(self) -> Dict[str, float]:
        values: Dict[str, float] = {}
        for name in self.NAMES:
            raw = self._counters[name].value()
            values[name] = raw if name == "repair_seconds" else int(raw)
        return values


def _row_entries(row: sp.csr_matrix) -> List[Tuple[int, float]]:
    """Stored row entries sorted by descending score, ties to smaller id."""
    order = np.lexsort((row.indices, -row.data))
    return [(int(row.indices[i]), float(row.data[i])) for i in order]


class SimRankService:
    """Long-lived query service over one graph and one warm cache.

    Parameters
    ----------
    graph:
        The graph every query runs against.
    simrank:
        The operator contract (ε, decay, top-k semantics, normalisation,
        executor plan).  Its ``cache_dir`` provides the cached rung.
    serve:
        The :class:`repro.config.ServeConfig` ladder/batching knobs.
    cache:
        Explicit :class:`repro.simrank.cache.OperatorCache` for the
        cached rung; defaults to ``simrank.cache_dir``'s shared instance
        (no cached rung when both are absent).
    compute_exact / compute_degraded:
        Injectable row computations (fault-injection hooks).  Defaults
        run the single-source engine at ε and at the degraded ε
        respectively.  A rung fails by raising :class:`SimRankError`.
    telemetry:
        Optional :class:`repro.telemetry.Telemetry` handle.  When
        enabled, the counters land in its registry (so
        :meth:`prometheus_metrics` exposes them alongside every other
        instrumented layer), the operator cache mirrors its events onto
        ``repro_cache_events_total`` and each shared exact frontier
        round is traced as a ``serve.exact_batch`` span.  The default is
        the inert handle: counters still live on a private registry
        (they are always-on service state), but no spans are recorded.
    """

    def __init__(self, graph: Graph, *,
                 simrank: Optional[SimRankConfig] = None,
                 serve: Optional[ServeConfig] = None,
                 dynamic: Optional[DynamicConfig] = None,
                 cache: Optional["OperatorCache"] = None,
                 compute_exact: Optional[RowCompute] = None,
                 compute_degraded: Optional[RowCompute] = None,
                 telemetry: Optional["Telemetry"] = None) -> None:
        self.graph = graph
        self.simrank = simrank if simrank is not None else SimRankConfig()
        self.serve = serve if serve is not None else ServeConfig()
        self.dynamic = dynamic if dynamic is not None else DynamicConfig()
        if cache is None and self.simrank.cache_dir is not None:
            from repro.simrank.cache import get_operator_cache

            cache = get_operator_cache(self.simrank.cache_dir,
                                       max_bytes=self.simrank.cache_max_bytes)
        self.cache = cache
        self._compute_exact = (compute_exact if compute_exact is not None
                               else self._engine_rows)
        self._compute_degraded = (compute_degraded
                                  if compute_degraded is not None
                                  else self._engine_rows)
        from repro.telemetry.runtime import resolve_telemetry

        self.telemetry = resolve_telemetry(telemetry)
        self._tracer = self.telemetry.tracer
        # Counters need a registry either way (they are always-on service
        # state); an enabled handle contributes its own so one scrape
        # sees every layer, the inert default gets a private one — never
        # DISABLED's module-global registry, which is shared.
        self.counters = ServiceCounters(
            self.telemetry.registry if self.telemetry.enabled else None)
        if self.cache is not None:
            self.cache.attach_telemetry(self.telemetry)
        # One query batch at a time: the engine already parallelises via
        # its executor, and serialising here keeps the counters and the
        # coalescing story simple under the daemon's thread-per-request
        # server.  Concurrency comes from the batcher coalescing queries
        # into one shared round, not from racing rounds.
        self._lock = Lock()
        # Updates repair on a separate lock so queries keep flowing (from
        # the pre-update graph) while a repair is in flight; only the
        # final graph/operator swap takes the query lock.
        self._update_lock = Lock()
        self._dynamic_op: Optional["DynamicOperator"] = None
        self._repairs_pending = 0
        self.last_update_error: Optional[str] = None

    # ------------------------------------------------------------------ #
    # Default (real) row computations
    # ------------------------------------------------------------------ #
    def _engine_rows(self, sources: Sequence[int], top_k: Optional[int],
                     epsilon: float) -> Dict[int, sp.csr_matrix]:
        """Single-source engine rows for ``sources`` in one shared round."""
        from repro.graphs.sparse import sparse_row_normalize
        from repro.simrank.engine import multi_source_localpush
        from repro.simrank.localpush import resolve_execution

        cfg = self.simrank
        _, executor = resolve_execution(cfg.backend, cfg.executor,
                                        self.graph.num_nodes,
                                        dtype=cfg.dtype)
        results = multi_source_localpush(
            self.graph, list(sources), decay=cfg.decay, epsilon=epsilon,
            prune=True, absorb_residual=True,
            max_pushes=self.serve.max_pushes_per_query,
            executor=executor or "serial", num_workers=cfg.workers,
            top_k=top_k, kernel=cfg.kernel, dtype=cfg.dtype)
        rows: Dict[int, sp.csr_matrix] = {}
        for result in results:
            row = result.row
            if cfg.row_normalize:
                row = sparse_row_normalize(row)
            rows[result.source] = row
        return rows

    # ------------------------------------------------------------------ #
    # The degradation ladder
    # ------------------------------------------------------------------ #
    def _validate(self, sources: Sequence[int]) -> List[int]:
        n = self.graph.num_nodes
        cleaned: List[int] = []
        for source in sources:
            if isinstance(source, bool) or not isinstance(source, int):
                raise SimRankError(
                    f"query node must be an integer, got {source!r}")
            if not 0 <= source < n:
                raise SimRankError(
                    f"query node {source} out of range for a graph "
                    f"with {n} nodes")
            cleaned.append(int(source))
        if not cleaned:
            raise SimRankError("a query batch needs at least one source")
        return cleaned

    def _serve_rows(self, sources: Sequence[int], top_k: Optional[int]
                    ) -> Dict[int, Tuple[sp.csr_matrix, str, float]]:
        """Walk the ladder for the deduplicated ``sources``.

        Returns ``{source: (row, path, epsilon)}`` where ``epsilon`` is
        the error bound the served row actually satisfies.  Must be
        called under ``self._lock``.
        """
        counters = self.counters
        cfg = self.simrank
        unique = sorted(dict.fromkeys(sources))
        count = len(unique)

        # Rung 1: exact, all sources in one shared frontier round.
        if self.serve.exact_enabled:
            from repro.utils.timer import Timer

            timer = Timer()
            timer.start()
            try:
                with self._tracer.span("serve.exact_batch",
                                       batch_size=count):
                    rows = self._compute_exact(unique, top_k, cfg.epsilon)
            except SimRankError:
                counters.inc("exact_failures", count)
            else:
                elapsed = timer.stop()
                budget = self.serve.time_budget_seconds
                if budget is not None and elapsed > budget:
                    counters.inc("budget_overruns", count)
                else:
                    counters.inc("batches")
                    counters.inc("exact_served", count)
                    return {source: (rows[source], "exact", cfg.epsilon)
                            for source in unique}

        # Rungs 2 and 3, per source.
        served: Dict[int, Tuple[sp.csr_matrix, str, float]] = {}
        degraded_epsilon = cfg.epsilon * self.serve.degraded_epsilon_factor
        for source in unique:
            if self.serve.serve_cached_rows and self.cache is not None:
                hit = self.cache.lookup_row(
                    self.graph, source, decay=cfg.decay, epsilon=cfg.epsilon,
                    top_k=top_k, row_normalize=cfg.row_normalize,
                    dtype=None if cfg.dtype == "float64" else cfg.dtype)
                if hit is not None:
                    row, entry_epsilon = hit
                    counters.inc("cached_served")
                    served[source] = (row, "cached", entry_epsilon)
                    continue
            try:
                rows = self._compute_degraded([source], top_k,
                                              degraded_epsilon)
            except SimRankError as error:
                counters.inc("failed")
                raise ServeError(
                    f"every serving rung failed for source {source} "
                    f"(exact {'disabled' if not self.serve.exact_enabled else 'failed'}, "
                    f"no cached row, degraded ε={degraded_epsilon} failed): "
                    f"{error}") from error
            counters.inc("degraded_served")
            served[source] = (rows[source], "degraded", degraded_epsilon)
        return served

    # ------------------------------------------------------------------ #
    # Public queries
    # ------------------------------------------------------------------ #
    def topk_batch(self, sources: Sequence[int],
                   k: Optional[int] = None) -> List[QueryAnswer]:
        """Answer a batch of ``topk`` queries from one shared ladder walk.

        Results align with ``sources`` (duplicates share the computed
        row) and are identical to issuing each query alone — the
        single-source engine's batch guarantee.
        """
        from repro.utils.timer import Timer

        cleaned = self._validate(sources)
        k = k if k is not None else self.serve.default_top_k
        timer = Timer()
        timer.start()
        with self._lock:
            served = self._serve_rows(cleaned, k)
            self.counters.inc("queries", len(cleaned))
            if len(cleaned) > 1:
                self.counters.inc("coalesced", len(cleaned))
            if self._repairs_pending:
                self.counters.inc("stale_served", len(cleaned))
        elapsed = timer.stop()
        with self._lock:
            for source in cleaned:
                self.counters.record_latency(served[source][1], elapsed)
        return [QueryAnswer(
            source=source,
            k=k,
            entries=_row_entries(served[source][0]),
            path=served[source][1],
            epsilon=served[source][2],
            elapsed_seconds=elapsed,
            batch_size=len(cleaned),
        ) for source in cleaned]

    def topk(self, source: int, k: Optional[int] = None) -> QueryAnswer:
        """Answer one ``topk`` query (a batch of one)."""
        return self.topk_batch([source], k)[0]

    def score(self, u: int, v: int) -> ScoreAnswer:
        """Answer a single-pair query from the full (un-truncated) row."""
        from repro.utils.timer import Timer

        cleaned = self._validate([u, v])
        timer = Timer()
        timer.start()
        with self._lock:
            served = self._serve_rows([cleaned[0]], None)
            self.counters.inc("queries")
            if self._repairs_pending:
                self.counters.inc("stale_served")
        elapsed = timer.stop()
        row, path, epsilon = served[cleaned[0]]
        with self._lock:
            self.counters.record_latency(path, elapsed)
        return ScoreAnswer(u=cleaned[0], v=cleaned[1],
                           value=float(row[0, cleaned[1]]), path=path,
                           epsilon=epsilon, elapsed_seconds=elapsed)

    # ------------------------------------------------------------------ #
    # Dynamic updates
    # ------------------------------------------------------------------ #
    def apply_update(self, updates: "Updates",
                     wait: Optional[bool] = None) -> Dict[str, object]:
        """Apply an edge-update batch to the served graph.

        The batch is validated against the currently served graph (a bad
        delta raises :class:`repro.errors.GraphError` immediately), then
        the maintained :class:`repro.dynamic.operator.DynamicOperator`
        repairs incrementally — in a background thread by default
        (``DynamicConfig.background_repair``), synchronously when
        ``wait=True``.  Until the repair lands, queries keep answering
        from the pre-update graph and count ``stale_served``; the landing
        atomically swaps in the updated graph (and, with
        ``store_repaired``, writes the repaired full-fidelity snapshot to
        the operator cache so the *cached* rung serves post-update rows
        without push work).

        Returns an acknowledgement payload; synchronous repairs include
        the repair telemetry (``num_pushes``, ``repair_seconds``,
        ``warm_start``).  Concurrent updates serialise on an update lock
        in submission order.
        """
        from repro.graphs.delta import UpdateBatch

        batch = UpdateBatch.coerce(updates)
        if len(batch) == 0:
            return {"accepted": True, "num_deltas": 0, "background": False}
        if len(batch) > self.dynamic.max_batch_edges:
            raise SimRankError(
                f"update batch has {len(batch)} deltas, exceeding "
                f"max_batch_edges={self.dynamic.max_batch_edges}")
        # Eager validation against the graph being served right now —
        # the daemon maps the GraphError to a 400 before any repair work.
        self.graph.apply_delta(batch)
        background = (self.dynamic.background_repair if wait is None
                      else not wait)
        with self._lock:
            self._repairs_pending += 1
        if background:
            Thread(target=self._repair, args=(batch, False),
                   daemon=True).start()
            return {"accepted": True, "num_deltas": len(batch),
                    "background": True}
        result = self._repair(batch, True)
        assert result is not None
        return {"accepted": True, "num_deltas": len(batch),
                "background": False, "num_pushes": result.num_pushes,
                "num_rounds": result.num_rounds,
                "repair_seconds": result.repair_seconds,
                "warm_start": result.warm_start}

    def _repair(self, batch: "Updates", reraise: bool
                ) -> Optional["RepairResult"]:
        """Run one repair to convergence and land its graph swap.

        Serialised on ``self._update_lock`` so concurrent submissions
        repair one at a time against a consistent operator.  A failed
        repair (e.g. the batch conflicts with an earlier update that
        landed after its validation) leaves the service on the previous
        graph, still answering; background failures are recorded in
        ``last_update_error`` instead of raised.
        """
        with self._update_lock:
            try:
                operator = self._ensure_operator()
                result = operator.apply(batch)
            except (GraphError, SimRankError) as error:
                with self._lock:
                    self._repairs_pending -= 1
                self.last_update_error = str(error)
                if reraise:
                    raise
                return None
            with self._lock:
                self.graph = operator.graph
                self._repairs_pending -= 1
                self.counters.inc("updates_applied")
                self.counters.inc("repair_seconds", result.repair_seconds)
        return result

    def _ensure_operator(self) -> "DynamicOperator":
        """The maintained operator, built lazily on the first update.

        The build happens inside the repair (so a background update's
        initial full-fidelity precompute never blocks queries) and warm
        starts from any cached base-graph entry.  Once built, only
        :meth:`_repair` advances it, under the update lock, so its graph
        tracks ``self.graph`` exactly.
        """
        if self._dynamic_op is None:
            from repro.dynamic.operator import DynamicOperator

            self._dynamic_op = DynamicOperator(
                self.graph, simrank=self.simrank, dynamic=self.dynamic,
                cache=self.cache, telemetry=self.telemetry)
        return self._dynamic_op

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def metrics(self) -> Dict[str, object]:
        """The ``/metrics`` payload: counters, latency, cache, graph, config."""
        cache_stats: Optional[Dict[str, int]] = None
        if self.cache is not None:
            cache_stats = {
                "hits": self.cache.hits,
                "exact_hits": self.cache.exact_hits,
                "reuse_hits": self.cache.reuse_hits,
                "misses": self.cache.misses,
                "row_hits": self.cache.row_hits,
                "row_misses": self.cache.row_misses,
                "stores": self.cache.stores,
            }
        return {
            "counters": self.counters.to_dict(),
            "latency": self.counters.latency_summary(),
            "cache": cache_stats,
            "graph": {
                "num_nodes": int(self.graph.num_nodes),
                "num_edges": int(self.graph.num_edges),
            },
            "config": {
                "epsilon": self.simrank.epsilon,
                "decay": self.simrank.decay,
                "kernel": self.simrank.kernel,
                "dtype": self.simrank.dtype,
                "default_top_k": self.serve.default_top_k,
                "exact_enabled": self.serve.exact_enabled,
                "time_budget_seconds": self.serve.time_budget_seconds,
                "max_pushes_per_query": self.serve.max_pushes_per_query,
                "degraded_epsilon_factor": self.serve.degraded_epsilon_factor,
                "serve_cached_rows": self.serve.serve_cached_rows,
                "batch_window_seconds": self.serve.batch_window_seconds,
                "max_batch_size": self.serve.max_batch_size,
            },
        }

    def prometheus_metrics(self) -> str:
        """The Prometheus text exposition of the service's registry.

        The counters are live in the registry already; this refreshes
        the scrape-time gauges first —
        ``repro_serve_latency_seconds{path,quantile}`` and
        ``repro_serve_qps`` from the rolling latency window, plus the
        served graph size — then renders the whole registry (including
        ``repro_cache_events_total`` and any other instrumented layer
        sharing it through an enabled telemetry handle).
        """
        from typing import cast

        from repro.telemetry.exposition import prometheus_text

        registry = self.counters.registry
        summary = self.counters.latency_summary()
        latency_gauge = registry.gauge(
            "repro_serve_latency_seconds",
            "Rolling-window latency quantiles per serving path.")
        paths = cast("Dict[str, Optional[Dict[str, object]]]",
                     summary["paths"])
        for path, percentiles in paths.items():
            if percentiles is None:
                continue
            for quantile in ("p50", "p95", "p99"):
                latency_gauge.set(
                    float(cast(float, percentiles[f"{quantile}_seconds"])),
                    path=path, quantile=quantile)
        qps_gauge = registry.gauge(
            "repro_serve_qps",
            "Queries per second over the observed query span.")
        qps = cast(Optional[float], summary["qps"])
        if qps is not None:
            qps_gauge.set(qps)
        registry.gauge("repro_serve_graph_nodes",
                       "Nodes in the served graph.").set(
            float(self.graph.num_nodes))
        registry.gauge("repro_serve_graph_edges",
                       "Edges in the served graph.").set(
            float(self.graph.num_edges))
        return prometheus_text(registry)


__all__ = ["SimRankService", "QueryAnswer", "ScoreAnswer",
           "ServiceCounters", "RowCompute", "SERVE_PATHS"]
