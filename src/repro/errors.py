"""Exception hierarchy for the :mod:`repro` package.

All library-raised exceptions derive from :class:`ReproError` so that callers
can distinguish library failures from programming errors with a single
``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the repro library."""


class GraphError(ReproError):
    """Raised when a graph is malformed or an operation on it is invalid."""


class DatasetError(ReproError):
    """Raised when a dataset specification or split is invalid."""


class SimRankError(ReproError):
    """Raised when SimRank computation receives invalid parameters."""


class ConfigError(SimRankError, ValueError):
    """Raised when a configuration object fails validation.

    Subclasses :class:`SimRankError` and :class:`ValueError` so callers
    that guarded the pre-config pipeline (``simrank_operator`` raised
    ``SimRankError`` for bad parameters; the cache cap raised
    ``ValueError``) keep catching what they caught before the config
    objects took over validation.
    """


class ServeError(ReproError):
    """Raised when the serving layer cannot answer a query.

    The :mod:`repro.serve` degradation ladder (exact → cached → looser-ε)
    raises this only when its *last* rung fails — any earlier failure
    falls through to the next rung and is recorded in the service
    counters instead.
    """


class TelemetryError(ReproError):
    """Raised when the telemetry subsystem is misused.

    Covers invalid metric names or label values, registering one metric
    name under two instrument kinds, and malformed trace files handed to
    the ``repro-trace`` summariser.  Telemetry is observability only —
    this error never fires on a default-off (no-op) handle, so the hot
    paths it instruments cannot start failing because of it.
    """


class ModelError(ReproError):
    """Raised when a model is mis-configured or used before being built."""


class TrainingError(ReproError):
    """Raised when a training run cannot proceed."""


class ExperimentError(ReproError):
    """Raised when an experiment request is invalid.

    Covers the declarative experiment layer end to end: unknown experiment
    names, unsupported builder keywords (a knob that cannot apply is a hard
    error, never silently dropped), malformed grids at execution time and
    invalid sweep-engine options (executor, workers).
    """


class ArtifactError(ExperimentError):
    """Raised when an :class:`repro.experiments.store.ArtifactStore`
    directory cannot be used (unwritable path, malformed artifact file
    that cannot be evicted).  Corrupt *cell* entries are never an error —
    they are evicted and recomputed like operator-cache corruption."""
