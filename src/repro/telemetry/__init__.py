"""Unified tracing + metrics: the observability subsystem.

ROADMAP item 5 asked for one machine-readable observability layer
instead of the four ad-hoc mechanisms that grew alongside the system
(``ServiceCounters``, the ``OperatorCache`` hit/miss integers, per-cell
``seconds`` in the ``ArtifactStore``, the benchmark's one-off phase
table).  This package is that layer; everything below it is default-off
and injectable.

The span model
--------------
A **span** is one timed operation: ``name``, ``span_id``, ``parent_id``,
``start``, ``duration``, ``attributes``.  Spans are produced by a
:class:`Tracer` as context managers and form a tree per thread (each
thread keeps its own active-span stack).  Spans are stored *flat* with
parent links — in the in-memory :class:`SpanRecorder` (bounded,
thread-safe), in the append-only :class:`JsonlSpanSink` (one JSON object
per line, ``repro-trace``'s input) and in the versioned
``{"version", "spans", "dropped"}`` trees embedded in experiment run
artefacts.  :data:`TRACE_FORMAT_VERSION` stamps all three.

Span names are dotted ``layer.operation``:

===========================  ====================================================
``localpush.<phase>``        one engine phase measurement (frontier/push/
                             merge/prune), attributes ``phase``/``round``
``serve.exact_batch``        one shared exact frontier round, attr ``batch_size``
``dynamic.repair``           one update-batch repair, attrs ``batch_size``/
                             ``num_pushes``/``num_rounds``/``warm_start``
``experiment.cell``          one sweep cell, attrs ``index``/``experiment``;
                             child ``experiment.cell.run`` is the runner call
===========================  ====================================================

The metric naming scheme
------------------------
Instruments live in a :class:`MetricsRegistry` (typed
:class:`Counter`/:class:`Gauge`/:class:`Histogram`, label support, all
mutation atomic under the registry's single lock).  Names follow the
Prometheus convention ``repro_<layer>_<what>[_total|_seconds]``:

* ``repro_serve_<counter>_total`` — the twelve ``ServiceCounters``
  names (``queries``, ``exact_served``, …) re-based on the registry
  (``repro_serve_repair_seconds`` is the one non-counter-suffixed sum);
* ``repro_cache_events_total{event=...}`` — operator-cache hit/miss/
  eviction/reuse/row events;
* ``repro_serve_latency_seconds{path=...,quantile=...}`` plus
  ``repro_serve_qps`` — gauges refreshed at scrape time from the
  rolling latency window.

Exposition is dual: :func:`prometheus_text` renders the registry in the
Prometheus text format (deterministic ordering, spec label escaping —
pinned byte-for-byte by the round-trip test) and :func:`json_snapshot`
is its versioned JSON twin.  The daemon serves both
(``GET /metrics/prometheus``; the legacy ``/metrics`` JSON shape is
unchanged).

Overhead guarantees
-------------------
Telemetry is **default-off** everywhere: every instrumented layer takes
an optional handle (:class:`Telemetry`) resolving to :data:`DISABLED`,
whose tracer returns one preallocated inert span — entering it is two
attribute lookups, no allocation, no clock read.  The engine is only
traced through its pre-existing ``profile=`` hook
(:class:`TracingPhaseProfile`), so the disabled path is *byte-identical*
to the pre-telemetry code and the R3 bit-identical guarantee is
untouched.  ``benchmarks/check_telemetry_overhead.py`` asserts the
no-op span cost in CI's perf-gate job, and tracers read only the
monotonic clock (``time.perf_counter``) — this package sits inside the
R3 determinism lint scope to keep it that way.

Entry points
------------
``repro-trace`` (= ``python -m repro.telemetry``) summarises a JSONL
trace: top spans by self time, per-name and per-phase aggregates.
:class:`repro.config.TelemetryConfig` is the frozen public config;
``repro.cli serve --telemetry [--trace-path …]`` and
``repro-experiment … --trace …`` are the CLI bridges.
"""

from repro.telemetry.exposition import (METRICS_FORMAT_VERSION,
                                        PROMETHEUS_CONTENT_TYPE,
                                        json_snapshot, prometheus_text)
from repro.telemetry.metrics import (DEFAULT_BUCKETS, Counter, Gauge,
                                     Histogram, MetricsRegistry)
from repro.telemetry.runtime import (DISABLED, Telemetry,
                                     TracingPhaseProfile, resolve_telemetry,
                                     telemetry_from_config)
from repro.telemetry.summary import (aggregate_by_name, format_summary,
                                     load_trace, phase_seconds, self_times,
                                     top_spans_by_self_time)
from repro.telemetry.tracing import (NULL_TRACER, TRACE_FORMAT_VERSION,
                                     JsonlSpanSink, NullTracer, Span,
                                     SpanRecorder, Tracer)

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "DEFAULT_BUCKETS",
    "Span", "Tracer", "NullTracer", "NULL_TRACER", "SpanRecorder",
    "JsonlSpanSink", "TRACE_FORMAT_VERSION",
    "prometheus_text", "json_snapshot", "METRICS_FORMAT_VERSION",
    "PROMETHEUS_CONTENT_TYPE",
    "Telemetry", "DISABLED", "resolve_telemetry", "telemetry_from_config",
    "TracingPhaseProfile",
    "load_trace", "format_summary", "aggregate_by_name", "phase_seconds",
    "self_times", "top_spans_by_self_time",
]
