"""Typed metrics instruments and the registry that owns them.

Three instrument kinds, mirroring the Prometheus data model:

* :class:`Counter` — a monotonically increasing sum (``inc``);
* :class:`Gauge` — a value that can be set to anything (``set``);
* :class:`Histogram` — cumulative bucket counts plus sum/count
  (``observe``) over a fixed upper-bound ladder.

Every instrument supports label sets (``counter.inc(1, path="exact")``)
by keeping one series per sorted ``(label, value)`` tuple, and every
mutation happens under the owning registry's single lock — an increment
is atomic under free-threaded use, which is what lets
:class:`repro.serve.service.ServiceCounters` re-base on a registry and
drop the implicit "only under the service lock" caveat.

The registry is the snapshot boundary: :meth:`MetricsRegistry.snapshot`
returns a plain, JSON-serialisable dict of every series (the versioned
``/metrics/prometheus`` JSON twin lives in
:mod:`repro.telemetry.exposition`).

Metric names follow the Prometheus conventions used across the package:
``repro_<layer>_<what>[_total|_seconds]``, validated against
``[a-zA-Z_:][a-zA-Z0-9_:]*``.
"""

from __future__ import annotations

import re
from threading import Lock
from typing import Dict, List, Mapping, Optional, Tuple

from repro.errors import TelemetryError

#: One series' identity: the sorted ``(label, value)`` pairs.
LabelKey = Tuple[Tuple[str, str], ...]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram upper bounds (seconds-flavoured, like Prometheus'
#: client defaults); ``+Inf`` is implicit — ``count`` covers it.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0)


def _validate_name(name: str) -> str:
    if not isinstance(name, str) or not _NAME_RE.match(name):
        raise TelemetryError(
            f"invalid metric name {name!r}; expected "
            "[a-zA-Z_:][a-zA-Z0-9_:]*")
    return name


def _label_key(labels: Mapping[str, object]) -> LabelKey:
    pairs = []
    for label in sorted(labels):
        if not _LABEL_RE.match(label):
            raise TelemetryError(
                f"invalid label name {label!r}; expected "
                "[a-zA-Z_][a-zA-Z0-9_]*")
        pairs.append((label, str(labels[label])))
    return tuple(pairs)


class Instrument:
    """Base instrument: a name, a help string and its labelled series.

    Instances are only created through a :class:`MetricsRegistry`, which
    hands them its lock — all series mutation is atomic under it.
    """

    kind = "untyped"

    def __init__(self, name: str, help: str, lock: Lock) -> None:
        self.name = _validate_name(name)
        self.help = help
        self._lock = lock

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.name!r})"


class Counter(Instrument):
    """A monotonically increasing sum per label set."""

    kind = "counter"

    def __init__(self, name: str, help: str, lock: Lock) -> None:
        super().__init__(name, help, lock)
        self._series: Dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        """Atomically add ``amount`` (>= 0) to the labelled series."""
        value = float(amount)
        if value < 0.0:
            raise TelemetryError(
                f"counter {self.name!r} cannot decrease (inc by {amount!r})")
        key = _label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + value

    def value(self, **labels: object) -> float:
        """The labelled series' current sum (0.0 when never incremented)."""
        key = _label_key(labels)
        with self._lock:
            return self._series.get(key, 0.0)

    def series(self) -> Dict[LabelKey, float]:
        with self._lock:
            return dict(self._series)


class Gauge(Instrument):
    """A value that may move in either direction per label set."""

    kind = "gauge"

    def __init__(self, name: str, help: str, lock: Lock) -> None:
        super().__init__(name, help, lock)
        self._series: Dict[LabelKey, float] = {}

    def set(self, value: float, **labels: object) -> None:
        key = _label_key(labels)
        with self._lock:
            self._series[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        key = _label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + float(amount)

    def value(self, **labels: object) -> float:
        key = _label_key(labels)
        with self._lock:
            return self._series.get(key, 0.0)

    def series(self) -> Dict[LabelKey, float]:
        with self._lock:
            return dict(self._series)


class HistogramSeries:
    """One label set's cumulative state: bucket counts plus sum/count."""

    __slots__ = ("bucket_counts", "sum", "count")

    def __init__(self, num_buckets: int) -> None:
        self.bucket_counts: List[int] = [0] * num_buckets
        self.sum = 0.0
        self.count = 0


class Histogram(Instrument):
    """Cumulative bucket counts plus sum/count per label set.

    ``buckets`` are the inclusive upper bounds (sorted, strictly
    increasing); the implicit ``+Inf`` bucket is ``count``.
    """

    kind = "histogram"

    def __init__(self, name: str, help: str, lock: Lock,
                 buckets: Optional[Tuple[float, ...]] = None) -> None:
        super().__init__(name, help, lock)
        bounds = tuple(float(b) for b in
                       (buckets if buckets is not None else DEFAULT_BUCKETS))
        if not bounds or any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise TelemetryError(
                f"histogram {name!r} buckets must be non-empty and "
                f"strictly increasing, got {bounds!r}")
        self.buckets = bounds
        self._series: Dict[LabelKey, HistogramSeries] = {}

    def observe(self, value: float, **labels: object) -> None:
        observed = float(value)
        key = _label_key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = HistogramSeries(len(self.buckets))
                self._series[key] = series
            for i, bound in enumerate(self.buckets):
                if observed <= bound:
                    series.bucket_counts[i] += 1
            series.sum += observed
            series.count += 1

    def series(self) -> Dict[LabelKey, HistogramSeries]:
        with self._lock:
            out: Dict[LabelKey, HistogramSeries] = {}
            for key, entry in self._series.items():
                copy = HistogramSeries(len(self.buckets))
                copy.bucket_counts = list(entry.bucket_counts)
                copy.sum = entry.sum
                copy.count = entry.count
                out[key] = copy
            return out


class MetricsRegistry:
    """The instrument factory and snapshot boundary.

    ``counter``/``gauge``/``histogram`` are idempotent per name (the
    same instrument is returned on re-registration; a *kind* clash is a
    :class:`repro.errors.TelemetryError`).  All instruments share the
    registry's single lock, so cross-instrument snapshots are cheap and
    every individual mutation is atomic.
    """

    def __init__(self) -> None:
        self._lock = Lock()
        self._instruments: Dict[str, Instrument] = {}

    def _register(self, name: str, kind: type, help: str,
                  **kwargs: object) -> Instrument:
        with self._lock:
            existing = self._instruments.get(name)
        if existing is not None:
            if not isinstance(existing, kind):
                raise TelemetryError(
                    f"metric {name!r} already registered as "
                    f"{existing.kind}, cannot re-register as "
                    f"{kind.__name__.lower()}")
            return existing
        instrument = kind(name, help, self._lock, **kwargs)
        with self._lock:
            return self._instruments.setdefault(name, instrument)

    def counter(self, name: str, help: str = "") -> Counter:
        instrument = self._register(name, Counter, help)
        assert isinstance(instrument, Counter)
        return instrument

    def gauge(self, name: str, help: str = "") -> Gauge:
        instrument = self._register(name, Gauge, help)
        assert isinstance(instrument, Gauge)
        return instrument

    def histogram(self, name: str, help: str = "",
                  buckets: Optional[Tuple[float, ...]] = None) -> Histogram:
        instrument = self._register(name, Histogram, help, buckets=buckets)
        assert isinstance(instrument, Histogram)
        return instrument

    def instruments(self) -> List[Instrument]:
        """Every registered instrument, in registration order."""
        with self._lock:
            return list(self._instruments.values())

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Plain-dict snapshot of every series (JSON-serialisable).

        ``{name: {"kind", "help", "series": [{"labels", ...values}]}}``;
        counter/gauge series carry ``value``, histogram series carry
        ``buckets``/``bucket_counts``/``sum``/``count``.
        """
        out: Dict[str, Dict[str, object]] = {}
        for instrument in self.instruments():
            series_out: List[Dict[str, object]] = []
            if isinstance(instrument, (Counter, Gauge)):
                for key, value in sorted(instrument.series().items()):
                    series_out.append({"labels": dict(key), "value": value})
            elif isinstance(instrument, Histogram):
                for key, entry in sorted(instrument.series().items()):
                    series_out.append({
                        "labels": dict(key),
                        "buckets": list(instrument.buckets),
                        "bucket_counts": list(entry.bucket_counts),
                        "sum": entry.sum,
                        "count": entry.count,
                    })
            out[instrument.name] = {"kind": instrument.kind,
                                    "help": instrument.help,
                                    "series": series_out}
        return out


__all__ = ["Counter", "Gauge", "Histogram", "HistogramSeries", "Instrument",
           "MetricsRegistry", "DEFAULT_BUCKETS", "LabelKey"]
