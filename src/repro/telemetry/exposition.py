"""Exposition formats for a :class:`repro.telemetry.MetricsRegistry`.

Two renderings of the same snapshot:

* :func:`prometheus_text` — the Prometheus text exposition format
  (version 0.0.4): ``# HELP`` / ``# TYPE`` comment pairs followed by one
  ``name{labels} value`` line per series, histograms expanded into
  cumulative ``_bucket{le=...}`` lines plus ``_sum``/``_count``.  The
  output is deterministic (instruments in registration order, series
  sorted by label key) so snapshot tests can pin it byte for byte — no
  ``#``-comment drift.
* :func:`json_snapshot` — the versioned JSON twin
  (``{"version": METRICS_FORMAT_VERSION, "metrics": {...}}``) for
  machine consumers that prefer structure over scrape format.

Label values are escaped per the Prometheus spec (backslash, double
quote and newline); everything else passes through verbatim.
"""

from __future__ import annotations

from typing import Dict, List

from repro.telemetry.metrics import (Counter, Gauge, Histogram, LabelKey,
                                     MetricsRegistry)

#: Version of the JSON snapshot payload; bump on schema change.
METRICS_FORMAT_VERSION = 1

#: The Prometheus text exposition content type.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def escape_label_value(value: str) -> str:
    """Escape a label value per the text exposition format."""
    return (value.replace("\\", r"\\").replace("\n", r"\n")
            .replace('"', r'\"'))


def _escape_help(text: str) -> str:
    return text.replace("\\", r"\\").replace("\n", r"\n")


def _format_value(value: float) -> str:
    """Render a sample value: integers without a trailing ``.0``."""
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _label_block(key: LabelKey, extra: str = "") -> str:
    parts = [f'{label}="{escape_label_value(value)}"'
             for label, value in key]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def prometheus_text(registry: MetricsRegistry) -> str:
    """Render the registry in the Prometheus text exposition format."""
    lines: List[str] = []
    for instrument in registry.instruments():
        if instrument.help:
            lines.append(f"# HELP {instrument.name} "
                         f"{_escape_help(instrument.help)}")
        lines.append(f"# TYPE {instrument.name} {instrument.kind}")
        if isinstance(instrument, (Counter, Gauge)):
            for key, value in sorted(instrument.series().items()):
                lines.append(f"{instrument.name}{_label_block(key)} "
                             f"{_format_value(value)}")
        elif isinstance(instrument, Histogram):
            for key, series in sorted(instrument.series().items()):
                for bound, count in zip(instrument.buckets,
                                        series.bucket_counts):
                    le_block = _label_block(
                        key, 'le="' + _format_value(bound) + '"')
                    lines.append(f"{instrument.name}_bucket{le_block} "
                                 f"{count}")
                inf_block = _label_block(key, 'le="+Inf"')
                lines.append(f"{instrument.name}_bucket{inf_block} "
                             f"{series.count}")
                lines.append(f"{instrument.name}_sum{_label_block(key)} "
                             f"{_format_value(series.sum)}")
                lines.append(f"{instrument.name}_count{_label_block(key)} "
                             f"{series.count}")
    return "\n".join(lines) + ("\n" if lines else "")


def json_snapshot(registry: MetricsRegistry) -> Dict[str, object]:
    """The versioned JSON twin of :func:`prometheus_text`."""
    return {"version": METRICS_FORMAT_VERSION,
            "metrics": registry.snapshot()}


__all__ = ["prometheus_text", "json_snapshot", "escape_label_value",
           "METRICS_FORMAT_VERSION", "PROMETHEUS_CONTENT_TYPE"]
