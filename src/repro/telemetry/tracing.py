"""Hierarchical trace spans: tracer, in-memory recorder, JSONL sink.

A :class:`Span` is one timed operation: a name, a parent, a start
instant, a duration and structured attributes.  Spans are produced by a
:class:`Tracer` as context managers::

    with tracer.span("experiment.cell", index=3) as span:
        record = run_cell()
        span.set("cached", False)

Hierarchy is implicit: each thread keeps its own active-span stack, so a
span opened while another is active becomes its child (per thread —
cross-thread work starts a new root, which is the honest answer for a
thread pool).

**Clock discipline (R3).** Spans read only the monotonic
``time.perf_counter`` clock — never the wall clock — so this module can
sit inside the determinism lint scope alongside the engines it
instruments: a span's timestamps are observability payload and cannot
order or influence any bit-identical computation.

**The no-op default.** :data:`NULL_TRACER` is a shared
:class:`NullTracer` whose ``span()`` returns one preallocated inert
context manager: entering it is two attribute lookups and no allocation,
which is the overhead guarantee the perf gate's telemetry microbenchmark
(``benchmarks/check_telemetry_overhead.py``) asserts.  Every
instrumented layer defaults to it.

**Outputs.** Finished spans go to the tracer's recorders: the
thread-safe :class:`SpanRecorder` keeps them in memory (bounded) and
reconstructs trees; :class:`JsonlSpanSink` appends one JSON object per
line to a file, the ``repro-trace`` CLI's input format
(:data:`TRACE_FORMAT_VERSION` is stamped on every line).
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Dict, IO, List, Optional, Sequence

from repro.errors import TelemetryError

#: Version stamped on every JSONL line and span-tree payload; bump when
#: the span dict schema changes so downstream summarisers can tell.
TRACE_FORMAT_VERSION = 1

#: The span dict shape shared by the recorder, the JSONL sink and the
#: run-artefact ``trace`` payloads.
SPAN_FIELDS = ("name", "span_id", "parent_id", "start", "duration",
               "attributes")


class Span:
    """One timed operation; also the context manager the tracer yields.

    ``start``/``duration`` are monotonic (``time.perf_counter``) — only
    differences between them are meaningful, never absolute instants.
    """

    __slots__ = ("name", "span_id", "parent_id", "start", "duration",
                 "attributes", "_tracer")

    def __init__(self, name: str, span_id: int, parent_id: Optional[int],
                 tracer: "Tracer", attributes: Dict[str, object]) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.attributes = attributes
        self.start = 0.0
        self.duration: Optional[float] = None
        self._tracer = tracer

    def set(self, key: str, value: object) -> None:
        """Attach one structured attribute (JSON-serialisable value)."""
        self.attributes[key] = value

    def to_dict(self) -> Dict[str, object]:
        return {"name": self.name, "span_id": self.span_id,
                "parent_id": self.parent_id, "start": self.start,
                "duration": self.duration, "attributes": self.attributes}

    def __enter__(self) -> "Span":
        self._tracer._push(self)
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.duration = time.perf_counter() - self.start
        self._tracer._pop(self)


class NullSpan:
    """The inert span: every operation is a no-op, one shared instance."""

    __slots__ = ()

    def set(self, key: str, value: object) -> None:
        return None

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


NULL_SPAN = NullSpan()


class SpanRecorder:
    """Thread-safe in-memory store of finished spans (bounded).

    ``max_spans`` caps memory on long-lived processes; once full, new
    spans are counted in ``dropped`` instead of stored (a trace that
    silently truncates is reported as such by the summariser).
    """

    def __init__(self, max_spans: int = 4096) -> None:
        if max_spans < 1:
            raise TelemetryError(
                f"max_spans must be a positive integer, got {max_spans!r}")
        self.max_spans = max_spans
        self.dropped = 0
        self._lock = threading.Lock()
        self._spans: List[Dict[str, object]] = []

    def record(self, span: Span) -> None:
        payload = span.to_dict()
        with self._lock:
            if len(self._spans) >= self.max_spans:
                self.dropped += 1
                return
            self._spans.append(payload)

    def spans(self) -> List[Dict[str, object]]:
        """Finished spans as plain dicts, in completion order."""
        with self._lock:
            return list(self._spans)

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()
            self.dropped = 0

    def tree(self) -> Dict[str, object]:
        """The versioned span-tree payload embedded in run artefacts.

        ``{"version": TRACE_FORMAT_VERSION, "spans": [...], "dropped"}``
        — spans keep their parent links (``parent_id``) rather than
        being nested, so the payload is flat, stable under concurrency
        and cheap to store; consumers rebuild the hierarchy from the
        links (:func:`repro.telemetry.summary.build_tree`).
        """
        with self._lock:
            return {"version": TRACE_FORMAT_VERSION,
                    "spans": list(self._spans),
                    "dropped": self.dropped}


class JsonlSpanSink:
    """Append-only JSONL sink: one finished span per line.

    Lines are ``{"v": TRACE_FORMAT_VERSION, **span}``; writes are
    serialised on a lock and flushed per line, so a killed process
    keeps every span that finished before the kill.
    """

    def __init__(self, path: str | os.PathLike[str]) -> None:
        self.path = os.fspath(path)
        self._lock = threading.Lock()
        self._handle: Optional[IO[str]] = None

    def _file(self) -> IO[str]:
        if self._handle is None:
            self._handle = open(self.path, "a", encoding="utf-8")
        return self._handle

    def record(self, span: Span) -> None:
        self.write(span.to_dict())

    def write(self, span_dict: Dict[str, object]) -> None:
        """Append one span dict (used directly for imported span trees)."""
        line = json.dumps({"v": TRACE_FORMAT_VERSION, **span_dict},
                          sort_keys=True)
        with self._lock:
            handle = self._file()
            handle.write(line + "\n")
            handle.flush()

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None


class Tracer:
    """Produces hierarchical spans and fans finished ones to recorders.

    Each thread has its own active-span stack (``threading.local``), so
    concurrent request handlers trace independent trees.  ``recorders``
    is any mix of :class:`SpanRecorder` / :class:`JsonlSpanSink` (duck:
    anything with ``record(span)``).
    """

    #: Class-level flag: ``if tracer.enabled`` guards any non-trivial
    #: attribute computation at call sites.
    enabled = True

    def __init__(self, recorders: Optional[Sequence[object]] = None) -> None:
        self._recorders: List[object] = list(recorders or [])
        self._local = threading.local()
        self._id_lock = threading.Lock()
        self._next_id = 1

    def add_recorder(self, recorder: object) -> None:
        self._recorders.append(recorder)

    def span(self, name: str, **attributes: object) -> Span:
        """A new span, parented to the thread's currently active span."""
        with self._id_lock:
            span_id = self._next_id
            self._next_id += 1
        stack = getattr(self._local, "stack", None)
        parent_id = stack[-1].span_id if stack else None
        return Span(name, span_id, parent_id, self, dict(attributes))

    def record_complete(self, name: str, duration: float,
                        **attributes: object) -> None:
        """Record an already-measured operation as a completed span.

        The adapter path for pre-existing measurement hooks (the
        engine's :class:`repro.simrank.kernels.PhaseProfile` reports
        ``(phase, seconds)`` pairs): the span is parented to the
        thread's active span and its ``start`` back-dates by
        ``duration`` on the same monotonic clock.
        """
        span = self.span(name, **attributes)
        now = time.perf_counter()
        span.start = now - duration
        span.duration = duration
        self._emit(span)

    # ------------------------------------------------------------------ #
    # Span lifecycle (called by Span.__enter__/__exit__)
    # ------------------------------------------------------------------ #
    def _push(self, span: Span) -> None:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        stack.append(span)

    def _pop(self, span: Span) -> None:
        stack = getattr(self._local, "stack", None)
        if stack and stack[-1] is span:
            stack.pop()
        elif stack and span in stack:  # pragma: no cover - defensive
            stack.remove(span)
        self._emit(span)

    def _emit(self, span: Span) -> None:
        for recorder in self._recorders:
            record = getattr(recorder, "record", None)
            if record is not None:
                record(span)


class NullTracer(Tracer):
    """The default-off tracer: spans are the shared inert no-op.

    ``span()`` ignores its arguments and returns :data:`NULL_SPAN`
    without allocating, so ``with tracer.span(...)`` on a hot path costs
    two attribute lookups and two no-op calls.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__()

    def span(self, name: str, **attributes: object) -> NullSpan:  # type: ignore[override]
        return NULL_SPAN

    def record_complete(self, name: str, duration: float,
                        **attributes: object) -> None:
        return None


#: The shared no-op tracer every instrumented layer defaults to.
NULL_TRACER = NullTracer()


__all__ = ["Span", "NullSpan", "NULL_SPAN", "SpanRecorder", "JsonlSpanSink",
           "Tracer", "NullTracer", "NULL_TRACER", "TRACE_FORMAT_VERSION",
           "SPAN_FIELDS"]
