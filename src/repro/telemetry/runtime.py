"""The injectable telemetry handle and the engine phase-span adapter.

:class:`Telemetry` bundles the two halves of the subsystem — a
:class:`repro.telemetry.metrics.MetricsRegistry` and a
:class:`repro.telemetry.tracing.Tracer` — into the single object the
instrumented layers accept.  The contract every layer follows:

* the parameter defaults to ``None`` and resolves to :data:`DISABLED`
  (a no-op tracer, an untouched registry), so the default path does no
  telemetry work beyond an ``is None`` check / an inert context
  manager — the bit-identical R3 guarantee and the perf gate are
  untouched;
* with an enabled handle, spans land in the handle's in-memory recorder
  and (when configured) its JSONL sink, and counters land in its
  registry.

:func:`telemetry_from_config` builds a handle from the frozen
:class:`repro.config.TelemetryConfig` (the CLI bridge's output).

:class:`TracingPhaseProfile` adapts the engine's existing
:class:`repro.simrank.kernels.PhaseProfile` hook onto spans: every
phase measurement (frontier/push/merge/prune) is re-emitted as a
completed span carrying its phase and round index, so the engine's
round loop needs no new parameters to trace — pass the adapter as its
``profile=``.
"""

from __future__ import annotations

from typing import Optional

from repro.config import TelemetryConfig
from repro.simrank.kernels import PhaseProfile
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.tracing import (NULL_TRACER, JsonlSpanSink, SpanRecorder,
                                     Tracer)


class Telemetry:
    """One registry + one tracer: the handle the hot layers accept."""

    def __init__(self, *, registry: Optional[MetricsRegistry] = None,
                 tracer: Optional[Tracer] = None,
                 recorder: Optional[SpanRecorder] = None,
                 sink: Optional[JsonlSpanSink] = None,
                 enabled: bool = True) -> None:
        self.enabled = enabled
        self.registry = registry if registry is not None else MetricsRegistry()
        self.recorder = recorder
        self.sink = sink
        if tracer is None:
            if enabled:
                recorders = [r for r in (recorder, sink) if r is not None]
                tracer = Tracer(recorders)
            else:
                tracer = NULL_TRACER
        self.tracer = tracer

    def phase_profile(self, prefix: str = "localpush"
                      ) -> Optional[PhaseProfile]:
        """A span-emitting engine profile, or ``None`` when disabled.

        ``None`` is exactly what the engine's ``profile=`` parameter
        expects for "unmeasured", so callers can pass the result through
        unconditionally.
        """
        if not self.enabled:
            return None
        return TracingPhaseProfile(self.tracer, prefix=prefix)

    def close(self) -> None:
        """Flush and close the JSONL sink (no-op without one)."""
        if self.sink is not None:
            self.sink.close()


#: The shared default-off handle: inert tracer, never-written registry.
DISABLED = Telemetry(enabled=False)


def resolve_telemetry(telemetry: Optional[Telemetry]) -> Telemetry:
    """The idiom every instrumented layer uses for its default."""
    return telemetry if telemetry is not None else DISABLED


def telemetry_from_config(config: Optional[TelemetryConfig]) -> Telemetry:
    """Build a handle from the frozen config (:data:`DISABLED` when off)."""
    if config is None or not config.enabled:
        return DISABLED
    recorder = SpanRecorder(max_spans=config.max_recorded_spans)
    sink = (JsonlSpanSink(config.trace_path)
            if config.trace_path is not None else None)
    return Telemetry(recorder=recorder, sink=sink)


class TracingPhaseProfile(PhaseProfile):
    """A :class:`PhaseProfile` that re-emits measurements as spans.

    Accumulates per-phase seconds exactly like the base class (so
    ``as_dict()`` stays the one-number-per-phase view) *and* records one
    completed ``<prefix>.<phase>`` span per measurement, tagged with the
    phase name and the engine round it belongs to
    (:meth:`begin_round` is the engine's round marker).
    """

    def __init__(self, tracer: Tracer, prefix: str = "localpush") -> None:
        super().__init__()
        self._tracer = tracer
        self._prefix = prefix
        self._round = 0

    def begin_round(self, index: int) -> None:
        self._round = index

    def add(self, phase: str, seconds: float) -> None:
        super().add(phase, seconds)
        self._tracer.record_complete(f"{self._prefix}.{phase}", seconds,
                                     phase=phase, round=self._round)


__all__ = ["Telemetry", "DISABLED", "resolve_telemetry",
           "telemetry_from_config", "TracingPhaseProfile"]
