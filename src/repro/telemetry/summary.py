"""Summarise recorded span trees and JSONL trace files.

The analysis half of the tracer: pure functions over the flat span-dict
lists produced by :class:`repro.telemetry.tracing.SpanRecorder` and the
JSONL sink.  ``repro-trace`` (:mod:`repro.telemetry.__main__`) prints
these summaries; ``benchmarks/bench_localpush.py`` derives its
``profile`` record section from :func:`phase_seconds`, so the engine's
phase spans are the single source of truth for the phase breakdown.

*Self time* is a span's duration minus the summed durations of its
direct children — the time it spent in its own code, the quantity worth
ranking when hunting a hot phase.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Tuple

from repro.errors import TelemetryError
from repro.telemetry.tracing import TRACE_FORMAT_VERSION

SpanDict = Dict[str, object]


def load_trace(path: str | os.PathLike[str]) -> List[SpanDict]:
    """Parse a JSONL trace file into span dicts.

    Validates per line: JSON object, a compatible ``"v"`` format stamp
    when present, and the required span fields.  A malformed line is a
    :class:`repro.errors.TelemetryError` naming its line number.
    """
    spans: List[SpanDict] = []
    with open(os.fspath(path), "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as error:
                raise TelemetryError(
                    f"{path}:{lineno}: not valid JSON ({error})") from None
            if not isinstance(payload, dict):
                raise TelemetryError(
                    f"{path}:{lineno}: expected a JSON object, "
                    f"got {type(payload).__name__}")
            version = payload.pop("v", TRACE_FORMAT_VERSION)
            if version != TRACE_FORMAT_VERSION:
                raise TelemetryError(
                    f"{path}:{lineno}: unsupported trace format version "
                    f"{version!r} (this build reads "
                    f"{TRACE_FORMAT_VERSION})")
            if "name" not in payload or "span_id" not in payload:
                raise TelemetryError(
                    f"{path}:{lineno}: span line missing 'name'/'span_id'")
            spans.append(payload)
    return spans


def _duration(span: SpanDict) -> float:
    duration = span.get("duration")
    return float(duration) if isinstance(duration, (int, float)) else 0.0


def build_tree(spans: List[SpanDict]) -> Dict[Optional[int], List[SpanDict]]:
    """Children grouped by ``parent_id`` (``None`` keys the roots).

    Parent links pointing at span ids absent from ``spans`` (e.g. a
    truncated recorder) group under ``None`` too — orphans surface as
    roots rather than vanishing.
    """
    known = {span.get("span_id") for span in spans}
    children: Dict[Optional[int], List[SpanDict]] = {}
    for span in spans:
        parent = span.get("parent_id")
        if parent not in known:
            parent = None
        children.setdefault(
            parent if isinstance(parent, int) else None, []).append(span)
    return children


def self_times(spans: List[SpanDict]) -> Dict[int, float]:
    """Per-span self time: duration minus direct children's durations."""
    child_sums: Dict[int, float] = {}
    known = {span.get("span_id") for span in spans}
    for span in spans:
        parent = span.get("parent_id")
        if isinstance(parent, int) and parent in known:
            child_sums[parent] = child_sums.get(parent, 0.0) + _duration(span)
    out: Dict[int, float] = {}
    for span in spans:
        span_id = span.get("span_id")
        if isinstance(span_id, int):
            out[span_id] = max(
                0.0, _duration(span) - child_sums.get(span_id, 0.0))
    return out


def aggregate_by_name(spans: List[SpanDict]
                      ) -> Dict[str, Dict[str, float]]:
    """Per-name aggregates: count, total seconds, self seconds."""
    selves = self_times(spans)
    out: Dict[str, Dict[str, float]] = {}
    for span in spans:
        name = str(span.get("name"))
        entry = out.setdefault(
            name, {"count": 0.0, "total_seconds": 0.0, "self_seconds": 0.0})
        entry["count"] += 1.0
        entry["total_seconds"] += _duration(span)
        span_id = span.get("span_id")
        if isinstance(span_id, int):
            entry["self_seconds"] += selves.get(span_id, 0.0)
    return out


def top_spans_by_self_time(spans: List[SpanDict], limit: int = 10
                           ) -> List[Tuple[SpanDict, float]]:
    """The ``limit`` spans with the largest self time, descending.

    Ties break toward the smaller ``span_id`` so the ranking is
    deterministic for any input order.
    """
    selves = self_times(spans)

    def key(span: SpanDict) -> Tuple[float, int]:
        span_id = span.get("span_id")
        sid = span_id if isinstance(span_id, int) else 0
        return (-selves.get(sid, 0.0), sid)

    ranked = sorted((span for span in spans
                     if isinstance(span.get("span_id"), int)), key=key)
    out: List[Tuple[SpanDict, float]] = []
    for span in ranked[:limit]:
        span_id = span.get("span_id")
        assert isinstance(span_id, int)
        out.append((span, selves.get(span_id, 0.0)))
    return out


def phase_seconds(spans: List[SpanDict], prefix: str = "localpush"
                  ) -> Dict[str, float]:
    """Summed duration per engine phase (``<prefix>.<phase>`` spans).

    The single source of truth behind the benchmark's ``profile``
    record section: identical to what the accumulating
    :class:`repro.simrank.kernels.PhaseProfile` reports, because the
    spans carry the very same measured intervals.
    """
    out: Dict[str, float] = {}
    marker = prefix + "."
    for span in spans:
        name = str(span.get("name"))
        if not name.startswith(marker):
            continue
        phase = name[len(marker):]
        out[phase] = out.get(phase, 0.0) + _duration(span)
    return out


def format_summary(spans: List[SpanDict], *, limit: int = 10,
                   phase_prefix: str = "localpush") -> str:
    """The human-readable report ``repro-trace`` prints."""
    lines: List[str] = []
    total = sum(_duration(span) for span in spans)
    roots = build_tree(spans).get(None, [])
    lines.append(f"spans: {len(spans)} ({len(roots)} roots), "
                 f"summed duration {total:.4f}s")

    aggregates = aggregate_by_name(spans)
    if aggregates:
        lines.append("")
        lines.append(f"{'name':<32} {'count':>7} {'total_s':>10} "
                     f"{'self_s':>10}")
        ranked_names = sorted(aggregates.items(),
                              key=lambda item: (-item[1]["self_seconds"],
                                                item[0]))
        for name, entry in ranked_names:
            lines.append(f"{name:<32} {int(entry['count']):>7} "
                         f"{entry['total_seconds']:>10.4f} "
                         f"{entry['self_seconds']:>10.4f}")

    phases = phase_seconds(spans, prefix=phase_prefix)
    if phases:
        lines.append("")
        lines.append(f"engine phases ({phase_prefix}.*):")
        for phase, seconds in sorted(phases.items(),
                                     key=lambda item: (-item[1], item[0])):
            share = seconds / total if total > 0 else 0.0
            lines.append(f"  {phase:>10}: {seconds:8.4f}s ({share:5.1%})")

    top = top_spans_by_self_time(spans, limit=limit)
    if top:
        lines.append("")
        lines.append(f"top {len(top)} spans by self time:")
        for span, self_seconds in top:
            attrs = span.get("attributes")
            attr_note = f" {attrs}" if attrs else ""
            lines.append(f"  {self_seconds:8.4f}s {span.get('name')}"
                         f" (span {span.get('span_id')}){attr_note}")
    return "\n".join(lines)


__all__ = ["load_trace", "build_tree", "self_times", "aggregate_by_name",
           "top_spans_by_self_time", "phase_seconds", "format_summary",
           "SpanDict"]
