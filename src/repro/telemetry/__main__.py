"""``repro-trace`` — summarise a JSONL trace file.

Usage::

    python -m repro.telemetry <trace.jsonl> [--limit N] [--phase-prefix P]

Reads the append-only JSONL emitted by
:class:`repro.telemetry.tracing.JsonlSpanSink` (one span per line) and
prints the :func:`repro.telemetry.summary.format_summary` report:
span/root counts, per-name aggregates ranked by self time, the engine
phase breakdown and the top spans by self time.

Exit codes: 0 on success, 2 on an unreadable or malformed trace file.
"""

from __future__ import annotations

import argparse
from typing import Optional, Sequence

from repro.errors import TelemetryError
from repro.telemetry.summary import format_summary, load_trace


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description="Summarise a repro telemetry JSONL trace file.")
    parser.add_argument("trace", help="path to the JSONL trace file")
    parser.add_argument("--limit", type=int, default=10,
                        help="how many spans to list in the self-time "
                             "ranking (default 10)")
    parser.add_argument("--phase-prefix", default="localpush",
                        help="span-name prefix of the engine phase "
                             "aggregates (default 'localpush')")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(
        list(argv) if argv is not None else None)
    if args.limit < 1:
        print("error: --limit must be a positive integer")
        return 2
    try:
        spans = load_trace(args.trace)
    except (TelemetryError, OSError) as error:
        print(f"error: {error}")
        return 2
    print(format_summary(spans, limit=args.limit,
                         phase_prefix=args.phase_prefix))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
