"""Dataset substrate: synthetic heterophily benchmarks mirroring the paper.

The paper evaluates on 12 public datasets (Texas … pokec).  Those datasets
(and the authors' splits) are not redistributable or downloadable in this
offline environment, so this package provides a *feature-conditioned
stochastic block model* that is instantiated with each dataset's published
statistics (class count, feature dimensionality, node homophily, average
degree) at laptop scale.  See DESIGN.md §2 for the substitution rationale.
"""

from repro.datasets.dataset import Dataset, Split
from repro.datasets.registry import (
    DATASET_SPECS,
    LARGE_DATASETS,
    SMALL_DATASETS,
    DatasetSpec,
    get_spec,
    list_datasets,
    load_dataset,
)
from repro.datasets.splits import random_splits, stratified_splits
from repro.datasets.synthetic import SyntheticGraphConfig, generate_synthetic_graph

__all__ = [
    "Dataset",
    "Split",
    "DatasetSpec",
    "DATASET_SPECS",
    "SMALL_DATASETS",
    "LARGE_DATASETS",
    "get_spec",
    "list_datasets",
    "load_dataset",
    "random_splits",
    "stratified_splits",
    "SyntheticGraphConfig",
    "generate_synthetic_graph",
]
