"""Train/validation/test split generation.

The paper follows the splits of Li et al. (GloGNN), which use 50%/25%/25%
random splits per repeat.  :func:`stratified_splits` reproduces that
protocol with per-class stratification so small classes appear in every
subset.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.errors import DatasetError
from repro.datasets.dataset import Split
from repro.utils.rng import RngLike, ensure_rng, spawn_rngs


def _partition(indices: np.ndarray, train_frac: float, val_frac: float,
               rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    shuffled = rng.permutation(indices)
    n = shuffled.size
    n_train = int(round(train_frac * n))
    n_val = int(round(val_frac * n))
    train = shuffled[:n_train]
    val = shuffled[n_train:n_train + n_val]
    test = shuffled[n_train + n_val:]
    return train, val, test


def random_splits(num_nodes: int, *, train_frac: float = 0.5, val_frac: float = 0.25,
                  num_splits: int = 5, seed: RngLike = 0) -> List[Split]:
    """Uniform random splits ignoring labels."""
    _check_fracs(train_frac, val_frac)
    rngs = spawn_rngs(seed, num_splits)
    indices = np.arange(num_nodes)
    splits = []
    for rng in rngs:
        train, val, test = _partition(indices, train_frac, val_frac, rng)
        splits.append(Split(train=train, val=val, test=test))
    return splits


def stratified_splits(labels: np.ndarray, *, train_frac: float = 0.5,
                      val_frac: float = 0.25, num_splits: int = 5,
                      seed: RngLike = 0) -> List[Split]:
    """Per-class stratified random splits (the paper's protocol)."""
    _check_fracs(train_frac, val_frac)
    labels = np.asarray(labels, dtype=np.int64).ravel()
    classes = np.unique(labels)
    rngs = spawn_rngs(seed, num_splits)
    splits = []
    for rng in rngs:
        train_parts, val_parts, test_parts = [], [], []
        for klass in classes:
            class_indices = np.flatnonzero(labels == klass)
            train, val, test = _partition(class_indices, train_frac, val_frac, rng)
            train_parts.append(train)
            val_parts.append(val)
            test_parts.append(test)
        splits.append(Split(
            train=np.sort(np.concatenate(train_parts)),
            val=np.sort(np.concatenate(val_parts)),
            test=np.sort(np.concatenate(test_parts)),
        ))
    return splits


def _check_fracs(train_frac: float, val_frac: float) -> None:
    if not 0 < train_frac < 1 or not 0 < val_frac < 1:
        raise DatasetError("train_frac and val_frac must be in (0, 1)")
    if train_frac + val_frac >= 1.0:
        raise DatasetError(
            f"train_frac + val_frac must be < 1, got {train_frac + val_frac}"
        )


__all__ = ["random_splits", "stratified_splits"]
