"""Registry of synthetic benchmark specifications mirroring the paper.

Each entry reproduces, at laptop scale, the characteristics of the 12
datasets in Table V of the paper: class count, feature dimensionality,
target node homophily and relative size.  Node counts are scaled down from
the real benchmarks (pokec has 1.6M nodes; here it is the largest synthetic
graph) while preserving the ordering of sizes and the homophily regime.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional

from repro.datasets.dataset import Dataset
from repro.datasets.splits import stratified_splits
from repro.datasets.synthetic import SyntheticGraphConfig, generate_synthetic_graph
from repro.errors import DatasetError
from repro.graphs.homophily import node_homophily
from repro.utils.rng import RngLike


@dataclass(frozen=True)
class DatasetSpec:
    """A named benchmark specification.

    ``paper_nodes`` / ``paper_edges`` record the statistics of the real
    dataset for reporting; ``config`` describes the synthetic stand-in.
    """

    name: str
    config: SyntheticGraphConfig
    paper_nodes: int
    paper_edges: int
    paper_homophily: float
    scale: str  # "small" or "large"
    num_splits: int

    def build_config(self, scale_factor: float = 1.0) -> SyntheticGraphConfig:
        if scale_factor == 1.0:
            return self.config
        return self.config.scaled(scale_factor)


def _spec(name: str, *, nodes: int, classes: int, features: int, degree: float,
          homophily: float, paper_nodes: int, paper_edges: int,
          paper_homophily: float, scale: str, num_splits: int,
          feature_signal: float = 1.0, structure_signal: float = 0.85,
          class_imbalance: float = 0.0) -> DatasetSpec:
    config = SyntheticGraphConfig(
        num_nodes=nodes,
        num_classes=classes,
        num_features=features,
        average_degree=degree,
        homophily=homophily,
        feature_signal=feature_signal,
        structure_signal=structure_signal,
        class_imbalance=class_imbalance,
        name=name,
    )
    return DatasetSpec(
        name=name,
        config=config,
        paper_nodes=paper_nodes,
        paper_edges=paper_edges,
        paper_homophily=paper_homophily,
        scale=scale,
        num_splits=num_splits,
    )


# --------------------------------------------------------------------------- #
# Small-scale benchmarks (5 repeats in the paper)
# --------------------------------------------------------------------------- #
_SMALL_SPECS: List[DatasetSpec] = [
    _spec("texas", nodes=183, classes=5, features=96, degree=3.2, homophily=0.11,
          paper_nodes=183, paper_edges=295, paper_homophily=0.11, scale="small",
          num_splits=5, feature_signal=3.0, class_imbalance=0.35),
    _spec("citeseer", nodes=1200, classes=6, features=128, degree=2.8, homophily=0.74,
          paper_nodes=3327, paper_edges=4676, paper_homophily=0.74, scale="small",
          num_splits=5, feature_signal=2.5),
    _spec("cora", nodes=1000, classes=7, features=128, degree=3.9, homophily=0.81,
          paper_nodes=2708, paper_edges=5278, paper_homophily=0.81, scale="small",
          num_splits=5, feature_signal=2.5),
    _spec("chameleon", nodes=900, classes=5, features=96, degree=14.0, homophily=0.23,
          paper_nodes=2277, paper_edges=31421, paper_homophily=0.23, scale="small",
          num_splits=5, feature_signal=1.3),
    _spec("pubmed", nodes=1500, classes=3, features=100, degree=4.5, homophily=0.80,
          paper_nodes=19717, paper_edges=44327, paper_homophily=0.80, scale="small",
          num_splits=5, feature_signal=2.0),
    _spec("squirrel", nodes=1200, classes=5, features=96, degree=16.0, homophily=0.22,
          paper_nodes=5201, paper_edges=198493, paper_homophily=0.22, scale="small",
          num_splits=5, feature_signal=0.5),
]

# --------------------------------------------------------------------------- #
# Large-scale benchmarks (10 repeats in the paper)
# --------------------------------------------------------------------------- #
_LARGE_SPECS: List[DatasetSpec] = [
    _spec("genius", nodes=4000, classes=2, features=12, degree=4.0, homophily=0.61,
          paper_nodes=421961, paper_edges=984979, paper_homophily=0.61, scale="large",
          num_splits=10, feature_signal=1.6, class_imbalance=0.5),
    _spec("arxiv-year", nodes=4000, classes=5, features=64, degree=7.0, homophily=0.22,
          paper_nodes=169343, paper_edges=1166243, paper_homophily=0.22, scale="large",
          num_splits=10, feature_signal=0.8),
    _spec("penn94", nodes=3000, classes=2, features=32, degree=16.0, homophily=0.47,
          paper_nodes=41554, paper_edges=1362229, paper_homophily=0.47, scale="large",
          num_splits=10, feature_signal=1.0),
    _spec("twitch-gamers", nodes=4000, classes=2, features=7, degree=10.0, homophily=0.54,
          paper_nodes=168114, paper_edges=6797557, paper_homophily=0.54, scale="large",
          num_splits=10, feature_signal=0.5),
    _spec("snap-patents", nodes=6000, classes=5, features=64, degree=5.0, homophily=0.07,
          paper_nodes=2923922, paper_edges=13975788, paper_homophily=0.07, scale="large",
          num_splits=10, feature_signal=0.5),
    _spec("pokec", nodes=8000, classes=2, features=64, degree=9.0, homophily=0.44,
          paper_nodes=1632803, paper_edges=30622564, paper_homophily=0.44, scale="large",
          num_splits=10, feature_signal=0.5),
]

DATASET_SPECS: Dict[str, DatasetSpec] = {spec.name: spec for spec in _SMALL_SPECS + _LARGE_SPECS}
SMALL_DATASETS: List[str] = [spec.name for spec in _SMALL_SPECS]
LARGE_DATASETS: List[str] = [spec.name for spec in _LARGE_SPECS]

_ALIASES = {
    "arxiv": "arxiv-year",
    "snap": "snap-patents",
    "twitch": "twitch-gamers",
}

_DATASET_CACHE: Dict[tuple, Dataset] = {}


def list_datasets(scale: Optional[str] = None) -> List[str]:
    """Return dataset names, optionally filtered by ``"small"``/``"large"``."""
    if scale is None:
        return list(DATASET_SPECS)
    if scale not in {"small", "large"}:
        raise DatasetError(f"scale must be 'small' or 'large', got {scale!r}")
    return [name for name, spec in DATASET_SPECS.items() if spec.scale == scale]


def get_spec(name: str) -> DatasetSpec:
    """Look up a :class:`DatasetSpec` by (possibly aliased) name."""
    key = _ALIASES.get(name.lower(), name.lower())
    if key not in DATASET_SPECS:
        raise DatasetError(
            f"unknown dataset {name!r}; available: {', '.join(DATASET_SPECS)}"
        )
    return DATASET_SPECS[key]


def load_dataset(name: str, *, seed: RngLike = 0, scale_factor: float = 1.0,
                 num_splits: Optional[int] = None, cache: bool = True) -> Dataset:
    """Generate (or fetch from cache) the synthetic stand-in for ``name``.

    Parameters
    ----------
    name:
        Benchmark name or alias (e.g. ``"pokec"``, ``"arxiv"``).
    seed:
        Master seed controlling both graph generation and splits.
    scale_factor:
        Multiplier on the node count; benchmarks use values below one to run
        quickly, the experiment scripts use the default 1.0.
    num_splits:
        Override the number of repeated splits (defaults to the paper's
        5/10 for small/large datasets).
    cache:
        When true (the default), generated datasets are memoised per
        ``(name, seed, scale_factor, num_splits)``.
    """
    spec = get_spec(name)
    splits = num_splits if num_splits is not None else spec.num_splits
    if splits < 1:
        raise DatasetError(f"num_splits must be >= 1, got {splits}")
    if not isinstance(seed, (int, type(None))):
        cache = False
    cache_key = (spec.name, seed, scale_factor, splits)
    if cache and cache_key in _DATASET_CACHE:
        return _DATASET_CACHE[cache_key]

    config = spec.build_config(scale_factor)
    graph_seed = seed if seed is not None else None
    graph = generate_synthetic_graph(config, seed=graph_seed)
    split_seed = (graph_seed + 1) if isinstance(graph_seed, int) else None
    split_list = stratified_splits(graph.labels, num_splits=splits, seed=split_seed)
    dataset = Dataset(
        graph=graph,
        splits=split_list,
        name=spec.name,
        metadata={
            "scale": spec.scale,
            "scale_factor": scale_factor,
            "target_homophily": spec.paper_homophily,
            "measured_homophily": round(node_homophily(graph), 4),
            "paper_nodes": spec.paper_nodes,
            "paper_edges": spec.paper_edges,
        },
    )
    if cache:
        _DATASET_CACHE[cache_key] = dataset
    return dataset


def clear_dataset_cache() -> None:
    """Drop all memoised datasets (useful in long test sessions)."""
    _DATASET_CACHE.clear()


__all__ = [
    "DatasetSpec",
    "DATASET_SPECS",
    "SMALL_DATASETS",
    "LARGE_DATASETS",
    "list_datasets",
    "get_spec",
    "load_dataset",
    "clear_dataset_cache",
]
