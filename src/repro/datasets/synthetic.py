"""Feature-conditioned stochastic block model for heterophily benchmarks.

The generator produces graphs whose three controllable properties mirror what
makes the paper's benchmarks easy or hard for each model family:

* **Label homophily** — the probability that an edge connects same-label
  nodes.  Low values create the heterophilous regime where local uniform
  aggregation (GCN-style) fails.
* **Structural class signal** — under heterophily, edges to *other* classes
  are drawn from a class-affinity pattern (by default a cyclic pattern:
  class ``c`` preferentially links to classes ``c±1``).  Same-class nodes
  therefore share similar neighbourhood compositions, which is exactly the
  signal SimRank measures (paper §III.A, Fig. 1).
* **Feature informativeness** — node features are noisy copies of per-class
  centroids, so an MLP on features alone reaches non-trivial accuracy
  (as the paper observes on Texas).

Degrees are degree-corrected with a mild power-law propensity so that the
generated graphs have the skewed degree distributions of the web/social
benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.errors import DatasetError
from repro.graphs.graph import Graph
from repro.utils.rng import RngLike, ensure_rng


@dataclass
class SyntheticGraphConfig:
    """Configuration of the feature-conditioned SBM.

    Parameters
    ----------
    num_nodes:
        Number of nodes ``n``.
    num_classes:
        Number of node classes ``N_y``.
    num_features:
        Feature dimensionality ``f``.
    average_degree:
        Target average (undirected) degree ``d = 2m / n``.
    homophily:
        Target edge homophily in ``[0, 1]``; the resulting node homophily is
        close to this value.
    feature_signal:
        Scale of the class-centroid component of the features relative to
        unit Gaussian noise.  ``0`` makes features uninformative.
    structure_signal:
        In ``[0, 1]``: how concentrated heterophilous edges are on the
        class-affinity pattern.  ``1`` means a node of class ``c`` connects
        (when not to its own class) only to the two adjacent classes in the
        cyclic pattern; ``0`` spreads them uniformly over all other classes.
    degree_exponent:
        Pareto exponent of the degree propensities; larger values give more
        homogeneous degrees.
    class_imbalance:
        In ``[0, 1)``: 0 gives balanced classes; larger values skew class
        sizes geometrically.
    """

    num_nodes: int
    num_classes: int
    num_features: int
    average_degree: float
    homophily: float
    feature_signal: float = 1.0
    structure_signal: float = 0.85
    degree_exponent: float = 2.5
    class_imbalance: float = 0.0
    name: str = "synthetic"

    def __post_init__(self) -> None:
        if self.num_nodes < 2:
            raise DatasetError(f"num_nodes must be >= 2, got {self.num_nodes}")
        if self.num_classes < 2:
            raise DatasetError(f"num_classes must be >= 2, got {self.num_classes}")
        if self.num_classes > self.num_nodes:
            raise DatasetError("num_classes cannot exceed num_nodes")
        if self.num_features < 1:
            raise DatasetError(f"num_features must be >= 1, got {self.num_features}")
        if self.average_degree <= 0:
            raise DatasetError("average_degree must be positive")
        if not 0.0 <= self.homophily <= 1.0:
            raise DatasetError(f"homophily must be in [0, 1], got {self.homophily}")
        if not 0.0 <= self.structure_signal <= 1.0:
            raise DatasetError("structure_signal must be in [0, 1]")
        if self.feature_signal < 0:
            raise DatasetError("feature_signal must be non-negative")
        if not 0.0 <= self.class_imbalance < 1.0:
            raise DatasetError("class_imbalance must be in [0, 1)")

    def scaled(self, factor: float) -> "SyntheticGraphConfig":
        """Return a copy with ``num_nodes`` scaled by ``factor`` (>= 2 nodes)."""
        if factor <= 0:
            raise DatasetError(f"scale factor must be positive, got {factor}")
        return SyntheticGraphConfig(
            num_nodes=max(2 * self.num_classes, int(round(self.num_nodes * factor))),
            num_classes=self.num_classes,
            num_features=self.num_features,
            average_degree=self.average_degree,
            homophily=self.homophily,
            feature_signal=self.feature_signal,
            structure_signal=self.structure_signal,
            degree_exponent=self.degree_exponent,
            class_imbalance=self.class_imbalance,
            name=self.name,
        )


def _sample_labels(config: SyntheticGraphConfig, rng: np.random.Generator) -> np.ndarray:
    """Sample class labels, guaranteeing at least two nodes per class."""
    k = config.num_classes
    if config.class_imbalance == 0.0:
        proportions = np.full(k, 1.0 / k)
    else:
        ratio = 1.0 - config.class_imbalance
        proportions = np.array([ratio**i for i in range(k)], dtype=np.float64)
        proportions /= proportions.sum()
    labels = rng.choice(k, size=config.num_nodes, p=proportions)
    # Ensure every class has at least two members so stratified splits work.
    for klass in range(k):
        owned = np.flatnonzero(labels == klass)
        if owned.size >= 2:
            continue
        needed = 2 - owned.size
        donors = np.flatnonzero(np.bincount(labels, minlength=k)[labels] > 2)
        chosen = rng.choice(donors, size=needed, replace=False)
        labels[chosen] = klass
    return labels


def _class_affinity(config: SyntheticGraphConfig) -> np.ndarray:
    """Probability of picking a *different* class given the source class.

    Rows are source classes, columns target classes; diagonal is zero (the
    homophilous part is sampled separately).  ``structure_signal``
    interpolates between a cyclic class pattern and the uniform distribution
    over other classes.
    """
    k = config.num_classes
    cyclic = np.zeros((k, k), dtype=np.float64)
    for c in range(k):
        cyclic[c, (c + 1) % k] += 0.5
        cyclic[c, (c - 1) % k] += 0.5
    if k == 2:
        # With two classes the cyclic pattern degenerates to the single
        # other class, which is also the uniform pattern.
        cyclic = np.array([[0.0, 1.0], [1.0, 0.0]])
    uniform = (1.0 - np.eye(k)) / max(k - 1, 1)
    affinity = config.structure_signal * cyclic + (1.0 - config.structure_signal) * uniform
    # Remove any accidental diagonal mass and re-normalise rows.
    np.fill_diagonal(affinity, 0.0)
    affinity /= affinity.sum(axis=1, keepdims=True)
    return affinity


def _degree_propensity(config: SyntheticGraphConfig, rng: np.random.Generator) -> np.ndarray:
    """Per-node propensities for degree-corrected edge sampling."""
    raw = rng.pareto(config.degree_exponent, size=config.num_nodes) + 1.0
    return raw / raw.sum()


def _sample_partner(candidates: np.ndarray, weights: np.ndarray,
                    rng: np.random.Generator) -> int:
    total = weights.sum()
    if candidates.size == 0 or total <= 0:
        raise DatasetError("cannot sample a partner from an empty candidate set")
    return int(rng.choice(candidates, p=weights / total))


def generate_synthetic_graph(config: SyntheticGraphConfig, *, seed: RngLike = 0) -> Graph:
    """Generate a labelled, attributed graph from ``config``.

    The returned graph is undirected and simple (no self-loops, no duplicate
    edges); isolated nodes are connected to a random partner afterwards so
    every node participates in propagation.
    """
    rng = ensure_rng(seed)
    labels = _sample_labels(config, rng)
    propensity = _degree_propensity(config, rng)
    affinity = _class_affinity(config)

    by_class = [np.flatnonzero(labels == c) for c in range(config.num_classes)]
    class_weights = [propensity[idx] for idx in by_class]

    target_edges = int(round(config.num_nodes * config.average_degree / 2.0))
    target_edges = max(target_edges, config.num_nodes // 2)
    edge_set: set[tuple[int, int]] = set()
    sources = rng.choice(config.num_nodes, size=target_edges * 2, p=propensity)
    attempts = 0
    idx = 0
    max_attempts = target_edges * 20
    while len(edge_set) < target_edges and attempts < max_attempts:
        attempts += 1
        if idx >= sources.size:
            sources = rng.choice(config.num_nodes, size=target_edges, p=propensity)
            idx = 0
        u = int(sources[idx])
        idx += 1
        same_class = rng.random() < config.homophily
        if same_class:
            klass = labels[u]
        else:
            klass = int(rng.choice(config.num_classes, p=affinity[labels[u]]))
        candidates = by_class[klass]
        weights = class_weights[klass]
        v = _sample_partner(candidates, weights, rng)
        if v == u:
            continue
        edge = (u, v) if u < v else (v, u)
        edge_set.add(edge)

    edges = np.array(sorted(edge_set), dtype=np.int64)

    # Connect isolated nodes so every node has at least one neighbour.
    degree = np.zeros(config.num_nodes, dtype=np.int64)
    if edges.size:
        np.add.at(degree, edges[:, 0], 1)
        np.add.at(degree, edges[:, 1], 1)
    isolated = np.flatnonzero(degree == 0)
    extra = []
    for u in isolated:
        same_class = rng.random() < config.homophily
        klass = labels[u] if same_class else int(
            rng.choice(config.num_classes, p=affinity[labels[u]])
        )
        candidates = by_class[klass]
        candidates = candidates[candidates != u]
        if candidates.size == 0:
            candidates = np.delete(np.arange(config.num_nodes), u)
        v = int(rng.choice(candidates))
        extra.append((min(u, v), max(u, v)))
    if extra:
        edges = np.vstack([edges, np.array(extra, dtype=np.int64)]) if edges.size else np.array(extra)

    features = _sample_features(config, labels, rng)
    return Graph.from_edges(config.num_nodes, edges, features=features,
                            labels=labels, name=config.name)


def _sample_features(config: SyntheticGraphConfig, labels: np.ndarray,
                     rng: np.random.Generator) -> np.ndarray:
    """Class-centroid features with unit Gaussian noise."""
    centroids = rng.normal(size=(config.num_classes, config.num_features))
    norms = np.linalg.norm(centroids, axis=1, keepdims=True)
    centroids = centroids / np.maximum(norms, 1e-12)
    noise = rng.normal(size=(config.num_nodes, config.num_features))
    return config.feature_signal * centroids[labels] + noise


__all__ = ["SyntheticGraphConfig", "generate_synthetic_graph"]
