"""Dataset container: a labelled graph plus train/validation/test splits."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.errors import DatasetError
from repro.graphs.graph import Graph


@dataclass(frozen=True)
class Split:
    """Index sets for one train/validation/test split."""

    train: np.ndarray
    val: np.ndarray
    test: np.ndarray

    def __post_init__(self) -> None:
        for name in ("train", "val", "test"):
            indices = np.asarray(getattr(self, name), dtype=np.int64)
            object.__setattr__(self, name, indices)
        overlap = (
            np.intersect1d(self.train, self.val).size
            + np.intersect1d(self.train, self.test).size
            + np.intersect1d(self.val, self.test).size
        )
        if overlap:
            raise DatasetError("train/val/test splits must be disjoint")

    @property
    def sizes(self) -> Dict[str, int]:
        return {"train": self.train.size, "val": self.val.size, "test": self.test.size}

    def mask(self, which: str, num_nodes: int) -> np.ndarray:
        """Boolean mask of length ``num_nodes`` for the requested subset."""
        indices = getattr(self, which, None)
        if indices is None:
            raise DatasetError(f"unknown split subset {which!r}")
        mask = np.zeros(num_nodes, dtype=bool)
        mask[indices] = True
        return mask


@dataclass
class Dataset:
    """A benchmark dataset: graph, labels and repeated splits.

    Attributes
    ----------
    graph:
        The attributed, labelled graph.
    splits:
        One :class:`Split` per experimental repeat (the paper uses 5 repeats
        on small datasets and 10 on large ones).
    name:
        Benchmark name (e.g. ``"texas"``).
    metadata:
        Free-form statistics recorded at generation time (target homophily,
        scale factor, ...), echoed in experiment reports.
    """

    graph: Graph
    splits: List[Split]
    name: str = "dataset"
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.graph.labels is None:
            raise DatasetError("a Dataset requires node labels")
        if self.graph.features is None:
            raise DatasetError("a Dataset requires node features")
        if not self.splits:
            raise DatasetError("a Dataset requires at least one split")
        n = self.graph.num_nodes
        for split in self.splits:
            for subset in (split.train, split.val, split.test):
                if subset.size and (subset.min() < 0 or subset.max() >= n):
                    raise DatasetError("split indices out of node range")

    @property
    def num_nodes(self) -> int:
        return self.graph.num_nodes

    @property
    def num_edges(self) -> int:
        return self.graph.num_edges

    @property
    def num_classes(self) -> int:
        return self.graph.num_classes

    @property
    def num_features(self) -> int:
        return self.graph.num_features

    @property
    def num_splits(self) -> int:
        return len(self.splits)

    def split(self, index: int = 0) -> Split:
        if not 0 <= index < len(self.splits):
            raise DatasetError(
                f"split index {index} out of range [0, {len(self.splits)})"
            )
        return self.splits[index]

    def summary(self) -> Dict[str, object]:
        """Dataset statistics in the shape of the paper's Table V header."""
        return {
            "name": self.name,
            "nodes": self.num_nodes,
            "edges": self.num_edges,
            "features": self.num_features,
            "classes": self.num_classes,
            **{k: v for k, v in self.metadata.items()},
        }


__all__ = ["Dataset", "Split"]
