"""Typed, validated configuration objects — the public API of the system.

PRs 1–3 scaled the LocalPush precompute path, but every knob (backend,
executor, worker count, cache directory, cache byte cap) travelled as a
loose keyword argument through six layers: ``simrank_operator`` →
``SIGMA``/``SIGMAIterative`` → registry defaults → CLI flags → the
experiment scripts → the examples.  This module ends that relay with two
frozen dataclasses:

* :class:`SimRankConfig` — everything that determines a SimRank
  aggregation operator (method, decay, ε, top-k, normalisation, the
  LocalPush ``(backend, executor, workers)`` plan and the persistent
  operator cache).  :meth:`SimRankConfig.cache_key_fields` is the
  *single* derivation of the operator-cache key fields; the cache merely
  hashes them.
* :class:`RunSpec` — one end-to-end evaluation run: model name plus
  overrides, dataset, a :class:`repro.training.config.TrainConfig`, an
  optional :class:`SimRankConfig`, the seed and the repeat count.
  ``repro.api.run(spec)`` executes it.

Both are immutable (``with_overrides`` returns modified copies),
validated in ``__post_init__`` (raising :class:`repro.errors.ConfigError`)
and serialisable via ``to_dict``/``from_dict`` so benchmark records and
experiment manifests can embed the exact configuration they ran.

Every legacy keyword (``simrank_backend=``, ``simrank_executor=``,
``cache=``, ``cache_max_bytes=``, …) remains accepted by the consuming
layers as a deprecated shim: the shim builds the equivalent config and
emits a :class:`DeprecationWarning` — one per deprecated keyword — and
the resulting operator *and* on-disk cache key are identical to the
config path (pinned by ``tests/test_config.py``), so existing caches
stay warm.
"""

from __future__ import annotations

import itertools
import os
import warnings
from dataclasses import asdict, dataclass, field, fields, replace
from typing import (TYPE_CHECKING, Any, ClassVar, Dict, List, Mapping,
                    Optional, Sequence, Tuple)

from repro.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.training.config import TrainConfig

#: SimRank decay factor ``c`` used throughout the paper (Eq. (2)).
#: ``repro.simrank.exact.DEFAULT_DECAY`` re-exports this value.
DEFAULT_DECAY = 0.6

SIMRANK_METHODS: Tuple[str, ...] = ("exact", "series", "localpush", "auto")
SIMRANK_BACKENDS: Tuple[str, ...] = ("dict", "vectorized", "sharded", "auto")
SIMRANK_EXECUTORS: Tuple[str, ...] = ("serial", "thread", "process", "auto")
SIMRANK_KERNELS: Tuple[str, ...] = ("auto", "scipy", "fused", "numba")
SIMRANK_DTYPES: Tuple[str, ...] = ("float64", "float32")

#: Registry names of the models that consume a :class:`SimRankConfig`.
SIMRANK_MODELS: Tuple[str, ...] = ("sigma", "sigma_iterative")

#: The operator-cache key fields, in their canonical order.  The cache
#: hashes exactly these (plus the format version and graph fingerprint);
#: :meth:`SimRankConfig.cache_key_fields` is the only code that derives
#: their values from a configuration.
CACHE_KEY_FIELDS: Tuple[str, ...] = (
    "method", "decay", "epsilon", "top_k", "row_normalize", "backend",
    "dtype")

#: SimRankConfig fields that deliberately stay OUT of the operator-cache
#: key.  Every field must be either cache-keyed or listed here with a
#: reason — the R1 lint rule (``repro.lint``) cross-checks this set
#: against the dataclass, so adding a field without a keying decision
#: fails tier-1 instead of silently serving stale operators.
#:
#: * ``exact_size_limit`` — auto-resolution knob only; its effect is
#:   keyed through the *resolved* method.
#: * ``executor``, ``workers`` — execution plan; every executor × worker
#:   count is bit-identical (PR 3), so keying them would split the cache.
#: * ``kernel`` — push-round kernel (scipy/fused/numba); every kernel is
#:   bit-identical for a given ``dtype`` (the fused/numba paths reproduce
#:   scipy's summation order exactly — pinned by the kernel-equivalence
#:   suite), so keying it would split the cache the same way keying the
#:   executor would.  Numeric identity is keyed through ``dtype``.
#: * ``cache_dir``, ``cache_max_bytes`` — resource location/budget of
#:   the cache itself, never part of the operator's identity.
CACHE_KEY_EXEMPT: Tuple[str, ...] = (
    "exact_size_limit", "executor", "workers", "kernel", "cache_dir",
    "cache_max_bytes")


class _Unset:
    """Sentinel distinguishing "keyword not passed" from an explicit value."""

    _singleton: Optional["_Unset"] = None

    def __new__(cls) -> "_Unset":
        if cls._singleton is None:
            cls._singleton = super().__new__(cls)
        return cls._singleton

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<unset>"

    def __bool__(self) -> bool:
        return False


#: Default value for deprecated keyword parameters: "not passed".
UNSET = _Unset()


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigError(message)


def _as_float(name: str, value: object) -> float:
    """Coerce to float, turning TypeError/ValueError into ConfigError."""
    try:
        return float(value)
    except (TypeError, ValueError):
        raise ConfigError(f"{name} must be a number, got {value!r}") from None


def _as_int(name: str, value: object) -> int:
    """Coerce an integral value to int (bools and non-integers rejected)."""
    try:
        integral = not isinstance(value, bool) and int(value) == value
    except (TypeError, ValueError):
        integral = False
    _require(integral, f"{name} must be an integer, got {value!r}")
    return int(value)


@dataclass(frozen=True)
class SimRankConfig:
    """Full specification of a SimRank aggregation operator.

    Field groups
    ------------
    ``method, decay, epsilon, top_k, row_normalize, exact_size_limit, dtype``
        The mathematical contract: which fixed point is approximated, to
        what error, in which arithmetic, and how the result is
        pruned/normalised.  These feed the operator-cache key
        (``dtype="float64"`` is keyed as ``None`` so pre-dtype cache
        entries stay warm; ``"float32"`` gets its own key — its values
        and error bound differ, see
        :func:`repro.simrank.kernels.float32_error_bound`).
    ``backend, executor, workers, kernel``
        The LocalPush execution plan (see :mod:`repro.simrank.engine`
        and :mod:`repro.simrank.kernels`).  Only the resolved backend
        *label* enters the cache key — every executor, worker count and
        kernel is bit-identical per dtype.
    ``cache_dir, cache_max_bytes``
        The persistent operator cache (:mod:`repro.simrank.cache`) and
        its LRU byte cap.  Pure resource location, never keyed.
    """

    method: str = "auto"
    decay: float = DEFAULT_DECAY
    epsilon: float = 0.1
    top_k: Optional[int] = None
    row_normalize: bool = False
    exact_size_limit: int = 3000
    backend: str = "auto"
    executor: Optional[str] = None
    workers: Optional[int] = None
    cache_dir: Optional[str] = None
    cache_max_bytes: Optional[int] = None
    kernel: str = "auto"
    dtype: str = "float64"

    #: CLI-flag ↔ field mapping consumed by :meth:`from_cli_args` and the
    #: parser-parity tests: ``argparse`` attribute name → config field.
    CLI_FLAG_FIELDS: ClassVar[Mapping[str, str]] = {
        "simrank_method": "method",
        "decay": "decay",
        "epsilon": "epsilon",
        "top_k": "top_k",
        "simrank_backend": "backend",
        "simrank_executor": "executor",
        "simrank_workers": "workers",
        "simrank_cache_dir": "cache_dir",
        "simrank_cache_max_bytes": "cache_max_bytes",
        "simrank_kernel": "kernel",
        "simrank_dtype": "dtype",
    }

    def __post_init__(self) -> None:
        # Numeric fields are coerced to canonical types (float/int/bool);
        # besides validation this canonicalises the cache-key payload, so
        # e.g. epsilon=1 and epsilon=1.0 share one key.  (A pre-config
        # entry written with a non-canonical type recomputes once.)
        coerce = object.__setattr__
        _require(self.method in SIMRANK_METHODS,
                 f"method must be one of {SIMRANK_METHODS}, got {self.method!r}")
        coerce(self, "decay", _as_float("decay", self.decay))
        _require(0.0 < self.decay < 1.0,
                 f"decay must be in (0, 1), got {self.decay}")
        coerce(self, "epsilon", _as_float("epsilon", self.epsilon))
        _require(self.epsilon > 0.0,
                 f"epsilon must be positive, got {self.epsilon}")
        if self.top_k is not None:
            coerce(self, "top_k", _as_int("top_k", self.top_k))
            _require(self.top_k > 0,
                     f"top_k must be a positive integer or None, got {self.top_k!r}")
        coerce(self, "row_normalize", bool(self.row_normalize))
        coerce(self, "exact_size_limit",
               _as_int("exact_size_limit", self.exact_size_limit))
        _require(self.exact_size_limit >= 0,
                 f"exact_size_limit must be non-negative, "
                 f"got {self.exact_size_limit!r}")
        _require(self.backend in SIMRANK_BACKENDS,
                 f"backend must be one of {SIMRANK_BACKENDS}, got {self.backend!r}")
        _require(self.executor is None or self.executor in SIMRANK_EXECUTORS,
                 f"executor must be one of {SIMRANK_EXECUTORS} or None, "
                 f"got {self.executor!r}")
        if self.workers is not None:
            coerce(self, "workers", _as_int("workers", self.workers))
            _require(self.workers >= 1,
                     f"workers must be a positive integer or None, "
                     f"got {self.workers!r}")
        if self.cache_dir is not None:
            try:
                coerce(self, "cache_dir", os.fspath(self.cache_dir))
            except TypeError:
                raise ConfigError(
                    f"cache_dir must be a path or None, "
                    f"got {self.cache_dir!r}") from None
        if self.cache_max_bytes is not None:
            coerce(self, "cache_max_bytes",
                   _as_int("cache_max_bytes", self.cache_max_bytes))
            _require(self.cache_max_bytes > 0,
                     f"cache_max_bytes must be a positive integer or None, "
                     f"got {self.cache_max_bytes!r}")
        _require(self.kernel in SIMRANK_KERNELS,
                 f"kernel must be one of {SIMRANK_KERNELS}, got {self.kernel!r}")
        _require(self.dtype in SIMRANK_DTYPES,
                 f"dtype must be one of {SIMRANK_DTYPES}, got {self.dtype!r}")

    # ------------------------------------------------------------------ #
    # Copy / serialisation
    # ------------------------------------------------------------------ #
    def with_overrides(self, **changes: object) -> "SimRankConfig":
        """A validated copy with the given fields replaced."""
        unknown = set(changes) - {f.name for f in fields(self)}
        _require(not unknown,
                 f"unknown SimRankConfig field(s): {', '.join(sorted(unknown))}")
        return replace(self, **changes)

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form (JSON-serialisable); inverse of :meth:`from_dict`."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "SimRankConfig":
        """Reconstruct a validated config from :meth:`to_dict` output."""
        _require(isinstance(data, Mapping),
                 f"SimRankConfig.from_dict expects a mapping, got {type(data).__name__}")
        unknown = set(data) - {f.name for f in fields(cls)}
        _require(not unknown,
                 f"unknown SimRankConfig field(s): {', '.join(sorted(unknown))}")
        return cls(**dict(data))

    # ------------------------------------------------------------------ #
    # Resolution (single source of the operator-cache key)
    # ------------------------------------------------------------------ #
    def resolved_method(self, num_nodes: int) -> str:
        """``"auto"`` resolved by graph size (paper policy: exactness on
        small graphs, the ε-approximation above ``exact_size_limit``)."""
        if self.method != "auto":
            return self.method
        return "series" if num_nodes <= self.exact_size_limit else "localpush"

    def resolved_backend(self, num_nodes: int) -> Optional[str]:
        """The LocalPush engine-family label entering the cache key.

        ``None`` unless the resolved method is ``"localpush"``.  The
        executor and worker count never influence the label — all core
        executors are bit-identical (see ``resolve_execution``).
        """
        if self.resolved_method(num_nodes) != "localpush":
            return None
        from repro.simrank.localpush import resolve_execution

        backend, _ = resolve_execution(self.backend, self.executor, num_nodes)
        return backend

    def cache_key_fields(self, num_nodes: int) -> Dict[str, object]:
        """The operator-cache key fields for a graph of ``num_nodes``.

        This is the *only* derivation of the key tuple in the codebase:
        ``repro.simrank.cache`` hashes exactly this mapping (plus format
        version and graph fingerprint), and the deprecated-kwarg shims
        build a config first, so every path produces the same key and
        caches written before this API existed stay warm.
        """
        method = self.resolved_method(num_nodes)
        return {
            "method": method,
            "decay": self.decay,
            # Exact SimRank has no ε contract; keyed as None (legacy layout).
            "epsilon": None if method == "exact" else self.epsilon,
            "top_k": self.top_k,
            "row_normalize": self.row_normalize,
            "backend": self.resolved_backend(num_nodes),
            # float64 predates the dtype field and is keyed as None — the
            # cache omits a None dtype from its hashed payload, so every
            # pre-dtype key (and on-disk entry) is byte-identical and
            # caches stay warm.  float32 operators hold different values
            # under a different error bound and get their own key.
            "dtype": None if self.dtype == "float64" else self.dtype,
        }

    # ------------------------------------------------------------------ #
    # CLI bridge
    # ------------------------------------------------------------------ #
    @classmethod
    def from_cli_args(cls, args: Any,
                      base: Optional["SimRankConfig"] = None) -> "SimRankConfig":
        """Build a config from parsed CLI flags.

        Flags left at their ``None`` default inherit from ``base`` (the
        model's default config when omitted), so an empty command line is
        exactly the documented defaults.  :data:`CLI_FLAG_FIELDS` maps
        ``argparse`` attribute names to config fields; the parser-parity
        test asserts every mapped flag exists.
        """
        base = base if base is not None else cls()
        overrides = {
            field_name: getattr(args, attr)
            for attr, field_name in cls.CLI_FLAG_FIELDS.items()
            if getattr(args, attr, None) is not None
        }
        return base.with_overrides(**overrides) if overrides else base


#: The paper's operator settings for the SIGMA models: top-k pruning at
#: ``k = 32`` (Table III/X), everything else the library defaults.  This
#: is what ``SIGMA(graph)`` uses when no config is passed.
SIGMA_DEFAULT_SIMRANK = SimRankConfig(top_k=32)


@dataclass(frozen=True)
class ServeConfig:
    """Configuration of the :mod:`repro.serve` online query layer.

    Field groups
    ------------
    ``host, port``
        Where the daemon listens.
    ``default_top_k``
        ``k`` used by ``/topk`` requests that do not pass their own.
    ``batch_window_seconds, max_batch_size``
        Request coalescing: concurrent single-source queries arriving
        within one window are answered by a single shared frontier-round
        batch (capped at ``max_batch_size`` sources per round).
        ``batch_window_seconds=0`` disables the wait (each leader takes
        whatever is already queued).
    ``exact_enabled, time_budget_seconds, max_pushes_per_query``
        Admission control for the exact rung of the degradation ladder:
        the exact single-source compute runs only when enabled, is
        capped at ``max_pushes_per_query`` frontier absorptions
        (exceeding it raises and degrades the query) and its answer is
        discarded as over-budget when it took longer than
        ``time_budget_seconds`` (``None`` = no wall-clock budget).
    ``degraded_epsilon_factor, serve_cached_rows``
        The fallback rungs: cached rows (any dominating all-pairs cache
        entry, when ``serve_cached_rows``) and the looser-ε recompute at
        ``epsilon × degraded_epsilon_factor``.
    """

    host: str = "127.0.0.1"
    port: int = 8571
    default_top_k: int = 10
    batch_window_seconds: float = 0.005
    max_batch_size: int = 32
    exact_enabled: bool = True
    time_budget_seconds: Optional[float] = None
    max_pushes_per_query: Optional[int] = None
    degraded_epsilon_factor: float = 10.0
    serve_cached_rows: bool = True

    #: CLI-flag ↔ field mapping consumed by :meth:`from_cli_args` (the
    #: boolean ``--no-exact``/``--no-cached-rows`` switches are bridged
    #: explicitly there — argparse ``store_true`` flags have no "unset").
    CLI_FLAG_FIELDS: ClassVar[Mapping[str, str]] = {
        "host": "host",
        "port": "port",
        "serve_top_k": "default_top_k",
        "batch_window": "batch_window_seconds",
        "max_batch_size": "max_batch_size",
        "time_budget": "time_budget_seconds",
        "max_pushes_per_query": "max_pushes_per_query",
        "degraded_epsilon_factor": "degraded_epsilon_factor",
    }

    def __post_init__(self) -> None:
        coerce = object.__setattr__
        _require(isinstance(self.host, str) and bool(self.host),
                 f"host must be a non-empty string, got {self.host!r}")
        coerce(self, "port", _as_int("port", self.port))
        _require(0 <= self.port <= 65535,
                 f"port must be in [0, 65535], got {self.port!r}")
        coerce(self, "default_top_k",
               _as_int("default_top_k", self.default_top_k))
        _require(self.default_top_k >= 1,
                 f"default_top_k must be a positive integer, "
                 f"got {self.default_top_k!r}")
        coerce(self, "batch_window_seconds",
               _as_float("batch_window_seconds", self.batch_window_seconds))
        _require(self.batch_window_seconds >= 0.0,
                 f"batch_window_seconds must be non-negative, "
                 f"got {self.batch_window_seconds!r}")
        coerce(self, "max_batch_size",
               _as_int("max_batch_size", self.max_batch_size))
        _require(self.max_batch_size >= 1,
                 f"max_batch_size must be a positive integer, "
                 f"got {self.max_batch_size!r}")
        coerce(self, "exact_enabled", bool(self.exact_enabled))
        if self.time_budget_seconds is not None:
            coerce(self, "time_budget_seconds",
                   _as_float("time_budget_seconds", self.time_budget_seconds))
            _require(self.time_budget_seconds > 0.0,
                     f"time_budget_seconds must be positive or None, "
                     f"got {self.time_budget_seconds!r}")
        if self.max_pushes_per_query is not None:
            coerce(self, "max_pushes_per_query",
                   _as_int("max_pushes_per_query", self.max_pushes_per_query))
            _require(self.max_pushes_per_query >= 1,
                     f"max_pushes_per_query must be a positive integer or "
                     f"None, got {self.max_pushes_per_query!r}")
        coerce(self, "degraded_epsilon_factor",
               _as_float("degraded_epsilon_factor",
                         self.degraded_epsilon_factor))
        _require(self.degraded_epsilon_factor > 1.0,
                 f"degraded_epsilon_factor must exceed 1.0 (the fallback "
                 f"must loosen ε), got {self.degraded_epsilon_factor!r}")
        coerce(self, "serve_cached_rows", bool(self.serve_cached_rows))

    def with_overrides(self, **changes: object) -> "ServeConfig":
        """A validated copy with the given fields replaced."""
        unknown = set(changes) - {f.name for f in fields(self)}
        _require(not unknown,
                 f"unknown ServeConfig field(s): {', '.join(sorted(unknown))}")
        return replace(self, **changes)

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form (JSON-serialisable); inverse of :meth:`from_dict`."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "ServeConfig":
        """Reconstruct a validated config from :meth:`to_dict` output."""
        _require(isinstance(data, Mapping),
                 f"ServeConfig.from_dict expects a mapping, "
                 f"got {type(data).__name__}")
        unknown = set(data) - {f.name for f in fields(cls)}
        _require(not unknown,
                 f"unknown ServeConfig field(s): {', '.join(sorted(unknown))}")
        return cls(**dict(data))

    @classmethod
    def from_cli_args(cls, args: Any,
                      base: Optional["ServeConfig"] = None) -> "ServeConfig":
        """Build a config from parsed ``repro.cli serve`` flags.

        Flags left at their ``None`` default inherit from ``base``; the
        ``store_true`` switches ``--no-exact`` and ``--no-cached-rows``
        override only when set (their unset state is ``False``).
        """
        base = base if base is not None else cls()
        overrides: Dict[str, object] = {
            field_name: getattr(args, attr)
            for attr, field_name in cls.CLI_FLAG_FIELDS.items()
            if getattr(args, attr, None) is not None
        }
        if getattr(args, "no_exact", False):
            overrides["exact_enabled"] = False
        if getattr(args, "no_cached_rows", False):
            overrides["serve_cached_rows"] = False
        return base.with_overrides(**overrides) if overrides else base


@dataclass(frozen=True)
class DynamicConfig:
    """Configuration of the :mod:`repro.dynamic` incremental-maintenance layer.

    ``max_batch_edges``
        Admission cap on the number of deltas in one
        :class:`repro.graphs.delta.UpdateBatch`; oversized batches are
        rejected before any repair work starts.
    ``repair_max_pushes``
        Safety cap on frontier absorptions per repair run (``None`` =
        uncapped) — the repair analogue of the engine's ``max_pushes``;
        exceeding it raises instead of spinning on a pathological delta.
    ``store_repaired``
        Store each repaired snapshot as a delta-chained operator-cache
        entry (when the operator has a cache), so a later process can
        warm-start from ``base fingerprint + delta hash`` instead of
        recomputing.
    ``background_repair``
        Serving only: apply repairs on a background thread and keep
        answering from the pre-update operator until the repair lands.
        ``False`` makes ``/update`` synchronous (the request returns
        after the swap — what the smoke tests use for determinism).
    """

    max_batch_edges: int = 4096
    repair_max_pushes: Optional[int] = None
    store_repaired: bool = True
    background_repair: bool = True

    #: CLI-flag ↔ field mapping consumed by :meth:`from_cli_args` (the
    #: boolean ``--synchronous-repair``/``--no-store-repaired`` switches
    #: are bridged explicitly there).
    CLI_FLAG_FIELDS: ClassVar[Mapping[str, str]] = {
        "max_batch_edges": "max_batch_edges",
        "repair_max_pushes": "repair_max_pushes",
    }

    def __post_init__(self) -> None:
        coerce = object.__setattr__
        coerce(self, "max_batch_edges",
               _as_int("max_batch_edges", self.max_batch_edges))
        _require(self.max_batch_edges >= 1,
                 f"max_batch_edges must be a positive integer, "
                 f"got {self.max_batch_edges!r}")
        if self.repair_max_pushes is not None:
            coerce(self, "repair_max_pushes",
                   _as_int("repair_max_pushes", self.repair_max_pushes))
            _require(self.repair_max_pushes >= 1,
                     f"repair_max_pushes must be a positive integer or "
                     f"None, got {self.repair_max_pushes!r}")
        coerce(self, "store_repaired", bool(self.store_repaired))
        coerce(self, "background_repair", bool(self.background_repair))

    def with_overrides(self, **changes: object) -> "DynamicConfig":
        """A validated copy with the given fields replaced."""
        unknown = set(changes) - {f.name for f in fields(self)}
        _require(not unknown,
                 f"unknown DynamicConfig field(s): "
                 f"{', '.join(sorted(unknown))}")
        return replace(self, **changes)

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form (JSON-serialisable); inverse of :meth:`from_dict`."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "DynamicConfig":
        """Reconstruct a validated config from :meth:`to_dict` output."""
        _require(isinstance(data, Mapping),
                 f"DynamicConfig.from_dict expects a mapping, "
                 f"got {type(data).__name__}")
        unknown = set(data) - {f.name for f in fields(cls)}
        _require(not unknown,
                 f"unknown DynamicConfig field(s): "
                 f"{', '.join(sorted(unknown))}")
        return cls(**dict(data))

    @classmethod
    def from_cli_args(cls, args: Any,
                      base: Optional["DynamicConfig"] = None
                      ) -> "DynamicConfig":
        """Build a config from parsed ``repro.cli serve`` flags.

        Flags left at their ``None`` default inherit from ``base``; the
        ``store_true`` switches ``--synchronous-repair`` and
        ``--no-store-repaired`` override only when set.
        """
        base = base if base is not None else cls()
        overrides: Dict[str, object] = {
            field_name: getattr(args, attr)
            for attr, field_name in cls.CLI_FLAG_FIELDS.items()
            if getattr(args, attr, None) is not None
        }
        if getattr(args, "synchronous_repair", False):
            overrides["background_repair"] = False
        if getattr(args, "no_store_repaired", False):
            overrides["store_repaired"] = False
        return base.with_overrides(**overrides) if overrides else base


@dataclass(frozen=True)
class TelemetryConfig:
    """Configuration of the :mod:`repro.telemetry` observability layer.

    ``enabled``
        Master switch, **off by default**: the instrumented layers
        resolve a ``None``/disabled handle to the shared no-op tracer,
        so the default path does no telemetry work and stays
        bit-identical to the un-instrumented code (the R3 guarantee).
    ``trace_path``
        Append-only JSONL file finished spans are written to (the
        ``repro-trace`` CLI's input).  ``None`` keeps spans in memory
        only (the bounded recorder).
    ``max_recorded_spans``
        Cap on the in-memory span recorder; past it new spans are
        counted as dropped instead of stored, so a long-lived daemon
        never grows unboundedly.
    """

    enabled: bool = False
    trace_path: Optional[str] = None
    max_recorded_spans: int = 4096

    #: CLI-flag ↔ field mapping consumed by :meth:`from_cli_args` (the
    #: boolean ``--telemetry`` switch is bridged explicitly there).
    CLI_FLAG_FIELDS: ClassVar[Mapping[str, str]] = {
        "trace_path": "trace_path",
        "max_recorded_spans": "max_recorded_spans",
    }

    def __post_init__(self) -> None:
        coerce = object.__setattr__
        coerce(self, "enabled", bool(self.enabled))
        if self.trace_path is not None:
            _require(isinstance(self.trace_path, (str, os.PathLike)),
                     f"trace_path must be a path or None, "
                     f"got {self.trace_path!r}")
            coerce(self, "trace_path", os.fspath(self.trace_path))
        coerce(self, "max_recorded_spans",
               _as_int("max_recorded_spans", self.max_recorded_spans))
        _require(self.max_recorded_spans >= 1,
                 f"max_recorded_spans must be a positive integer, "
                 f"got {self.max_recorded_spans!r}")

    def with_overrides(self, **changes: object) -> "TelemetryConfig":
        """A validated copy with the given fields replaced."""
        unknown = set(changes) - {f.name for f in fields(self)}
        _require(not unknown,
                 f"unknown TelemetryConfig field(s): "
                 f"{', '.join(sorted(unknown))}")
        return replace(self, **changes)

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form (JSON-serialisable); inverse of :meth:`from_dict`."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "TelemetryConfig":
        """Reconstruct a validated config from :meth:`to_dict` output."""
        _require(isinstance(data, Mapping),
                 f"TelemetryConfig.from_dict expects a mapping, "
                 f"got {type(data).__name__}")
        unknown = set(data) - {f.name for f in fields(cls)}
        _require(not unknown,
                 f"unknown TelemetryConfig field(s): "
                 f"{', '.join(sorted(unknown))}")
        return cls(**dict(data))

    @classmethod
    def from_cli_args(cls, args: Any,
                      base: Optional["TelemetryConfig"] = None
                      ) -> "TelemetryConfig":
        """Build a config from parsed CLI flags.

        Flags left at their ``None`` default inherit from ``base``;
        ``--telemetry`` switches ``enabled`` on, and a ``--trace-path``
        implies ``enabled`` too (a requested sink with a disabled
        tracer would silently record nothing).
        """
        base = base if base is not None else cls()
        overrides: Dict[str, object] = {
            field_name: getattr(args, attr)
            for attr, field_name in cls.CLI_FLAG_FIELDS.items()
            if getattr(args, attr, None) is not None
        }
        if getattr(args, "telemetry", False) or "trace_path" in overrides:
            overrides["enabled"] = True
        return base.with_overrides(**overrides) if overrides else base


def merge_deprecated_kwargs(config: Optional[SimRankConfig],
                            deprecated: Mapping[str, Tuple[str, object]],
                            *, default: Optional[SimRankConfig] = None,
                            api_hint: str = "config=SimRankConfig(...)",
                            stacklevel: int = 3) -> SimRankConfig:
    """Fold legacy keyword arguments into a :class:`SimRankConfig`.

    ``deprecated`` maps each legacy keyword name to ``(config_field,
    value)``; entries whose value is :data:`UNSET` were not passed and
    are skipped — callers for whom an explicit ``None`` also means "use
    the default" (most pool/cache knobs, whose legacy default *was*
    ``None``) normalise it to ``UNSET`` before calling.  Each remaining
    keyword emits exactly one :class:`DeprecationWarning` (attributed
    ``stacklevel`` frames up, i.e. the caller's caller by default).
    Mixing an explicit ``config`` with legacy keywords is an error —
    there is no sensible precedence between them.
    """
    overrides: Dict[str, object] = {}
    used = []
    for name, (field_name, value) in deprecated.items():
        if value is UNSET:
            continue
        used.append(name)
        overrides[field_name] = value
    if used and config is not None:
        # Reject before warning: a call that errors out should surface
        # the ConfigError, not deprecation advice (which would itself be
        # promoted under a warnings-as-errors filter).
        raise ConfigError(
            "cannot combine an explicit SimRankConfig with the deprecated "
            f"keyword(s): {', '.join(sorted(used))}")
    for name in used:
        warnings.warn(
            f"the '{name}=' keyword is deprecated; pass {api_hint} instead",
            DeprecationWarning, stacklevel=stacklevel)
    base = config if config is not None else (
        default if default is not None else SimRankConfig())
    return base.with_overrides(**overrides) if overrides else base


def merge_optional_deprecated_kwargs(config: Optional[SimRankConfig],
                                     deprecated: Mapping[str, Tuple[str, object]],
                                     *, default: Optional[SimRankConfig] = None,
                                     api_hint: str = "simrank=SimRankConfig(...)",
                                     stacklevel: int = 4
                                     ) -> Optional[SimRankConfig]:
    """:func:`merge_deprecated_kwargs` for callers where ``None`` means
    "use the consumer's default config": when no deprecated keyword was
    actually passed, ``config`` is returned unchanged (possibly ``None``)
    instead of being materialised.  ``None`` values are treated as "not
    passed" throughout (every keyword this wrapper serves had ``None``
    for its legacy default)."""
    deprecated = {name: (field_name, UNSET if value is None else value)
                  for name, (field_name, value) in deprecated.items()}
    if all(value is UNSET for _, value in deprecated.values()):
        return config
    return merge_deprecated_kwargs(config, deprecated, default=default,
                                   api_hint=api_hint, stacklevel=stacklevel)


def merge_experiment_simrank_kwargs(config: Optional[SimRankConfig], *,
                                    simrank_backend: object = UNSET,
                                    simrank_executor: object = UNSET,
                                    simrank_workers: object = UNSET,
                                    simrank_cache_dir: object = UNSET,
                                    default: Optional[SimRankConfig] = None
                                    ) -> Optional[SimRankConfig]:
    """Shared deprecated-kwarg shim of the experiment ``run()`` functions.

    The execution-plan keywords the experiments used to forward
    (``simrank_backend=`` …) live in exactly one mapping here, so adding
    the next knob is a one-place change instead of an edit in every
    experiment module.  Returns ``config`` unchanged (possibly ``None``)
    when no legacy keyword was passed.
    """
    return merge_optional_deprecated_kwargs(config, {
        "simrank_backend": ("backend", simrank_backend),
        "simrank_executor": ("executor", simrank_executor),
        "simrank_workers": ("workers", simrank_workers),
        "simrank_cache_dir": ("cache_dir", simrank_cache_dir),
    }, default=default, stacklevel=5)


@dataclass(frozen=True)
class RunSpec:
    """One end-to-end evaluation run, declaratively.

    ``repro.api.run(spec)`` loads the dataset, constructs the model from
    the registry (with ``overrides`` on top of the registry defaults and
    ``simrank`` routed to the SIGMA models), trains over ``repeats``
    splits under ``train`` and returns a ``RunResult``.  The CLI parses
    straight into a ``RunSpec``; experiments build them in loops.
    """

    model: str = "sigma"
    dataset: str = "texas"
    overrides: Dict[str, object] = field(default_factory=dict)
    train: Optional["TrainConfig"] = None
    simrank: Optional[SimRankConfig] = None
    seed: int = 0
    repeats: Optional[int] = None
    scale_factor: float = 1.0

    def __post_init__(self) -> None:
        coerce = object.__setattr__
        _require(isinstance(self.model, str) and bool(self.model),
                 f"model must be a non-empty string, got {self.model!r}")
        coerce(self, "model", self.model.lower())
        _require(isinstance(self.dataset, str) and bool(self.dataset),
                 f"dataset must be a non-empty string, got {self.dataset!r}")
        _require(isinstance(self.overrides, Mapping),
                 f"overrides must be a mapping, got {type(self.overrides).__name__}")
        coerce(self, "overrides", dict(self.overrides))
        if self.train is None:
            from repro.training.config import TrainConfig

            coerce(self, "train", TrainConfig())
        _require(self.simrank is None or isinstance(self.simrank, SimRankConfig),
                 f"simrank must be a SimRankConfig or None, got {self.simrank!r}")
        if self.simrank is not None or "simrank" in self.overrides:
            _require(self.model in SIMRANK_MODELS,
                     f"a SimRankConfig only applies to {SIMRANK_MODELS}, "
                     f"not {self.model!r}")
        _require(self.simrank is None or "simrank" not in self.overrides,
                 "pass the SimRankConfig either as spec.simrank or inside "
                 "overrides, not both")
        coerce(self, "seed", _as_int("seed", self.seed))
        if self.repeats is not None:
            coerce(self, "repeats", _as_int("repeats", self.repeats))
            _require(self.repeats >= 1,
                     f"repeats must be a positive integer or None, "
                     f"got {self.repeats!r}")
        coerce(self, "scale_factor", _as_float("scale_factor", self.scale_factor))
        _require(self.scale_factor > 0.0,
                 f"scale_factor must be positive, got {self.scale_factor}")
        # Late (lazy-import) check so config stays a leaf module: the
        # model name must exist in the registry.
        from repro.models.registry import list_models

        _require(self.model in list_models(),
                 f"unknown model {self.model!r}; available: "
                 f"{', '.join(list_models())}")

    # ------------------------------------------------------------------ #
    def with_overrides(self, **changes: object) -> "RunSpec":
        """A validated copy with the given *spec fields* replaced.

        (To change model hyper-parameter overrides, replace the
        ``overrides`` field wholesale.)
        """
        unknown = set(changes) - {f.name for f in fields(self)}
        _require(not unknown,
                 f"unknown RunSpec field(s): {', '.join(sorted(unknown))}")
        return replace(self, **changes)

    def to_dict(self) -> Dict[str, object]:
        overrides = dict(self.overrides)
        if isinstance(overrides.get("simrank"), SimRankConfig):
            # __post_init__ permits the config inside overrides (instead
            # of spec.simrank); keep that shape serialisable too.
            overrides["simrank"] = overrides["simrank"].to_dict()
        return {
            "model": self.model,
            "dataset": self.dataset,
            "overrides": overrides,
            "train": self.train.to_dict(),
            "simrank": None if self.simrank is None else self.simrank.to_dict(),
            "seed": self.seed,
            "repeats": self.repeats,
            "scale_factor": self.scale_factor,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "RunSpec":
        from repro.training.config import TrainConfig

        _require(isinstance(data, Mapping),
                 f"RunSpec.from_dict expects a mapping, got {type(data).__name__}")
        unknown = set(data) - {f.name for f in fields(cls)}
        _require(not unknown,
                 f"unknown RunSpec field(s): {', '.join(sorted(unknown))}")
        payload = dict(data)
        if payload.get("train") is not None and not hasattr(payload["train"], "max_epochs"):
            payload["train"] = TrainConfig.from_dict(payload["train"])
        if payload.get("simrank") is not None and not isinstance(
                payload["simrank"], SimRankConfig):
            payload["simrank"] = SimRankConfig.from_dict(payload["simrank"])
        overrides = payload.get("overrides")
        if (isinstance(overrides, Mapping)
                and isinstance(overrides.get("simrank"), Mapping)):
            payload["overrides"] = {
                **overrides,
                "simrank": SimRankConfig.from_dict(overrides["simrank"]),
            }
        return cls(**payload)


def grid_product(axes: Mapping[str, Sequence[object]]) -> Tuple[Dict[str, object], ...]:
    """Cartesian product of grid axes as a tuple of cell-override dicts.

    The first axis varies slowest (outermost loop), matching the nested
    ``for`` loops the legacy experiment modules used, so a ported grid
    enumerates its cells in the historical order::

        grid_product({"model": ("a", "b"), "dataset": ("x", "y")})
        # ({'model': 'a', 'dataset': 'x'}, {'model': 'a', 'dataset': 'y'},
        #  {'model': 'b', 'dataset': 'x'}, {'model': 'b', 'dataset': 'y'})
    """
    _require(isinstance(axes, Mapping),
             f"grid_product expects a mapping of axes, got {type(axes).__name__}")
    names = list(axes)
    values = [list(axes[name]) for name in names]
    return tuple(dict(zip(names, combo)) for combo in itertools.product(*values))


@dataclass(frozen=True)
class ExperimentCell:
    """One expanded cell of an :class:`ExperimentSpec` grid.

    ``overrides`` is the raw grid entry that produced the cell, ``spec``
    the fully resolved :class:`RunSpec` and ``params`` the merged extra
    parameters (spec-level defaults plus cell overrides) consumed by the
    experiment's cell runner.
    """

    index: int
    overrides: Dict[str, object]
    spec: RunSpec
    params: Dict[str, object]


#: RunSpec fields a grid entry may set directly (everything else goes
#: through the ``overrides.`` / ``train.`` / ``simrank.`` prefixes or must
#: be a declared extra parameter).
CELL_SPEC_FIELDS: Tuple[str, ...] = (
    "model", "dataset", "seed", "repeats", "scale_factor")


@dataclass(frozen=True)
class ExperimentSpec:
    """Declarative description of one experiment: a grid of runs + a reduction.

    An experiment is a *grid of cells over a base* :class:`RunSpec`: every
    grid entry is a mapping whose keys address either a RunSpec field
    (``model``, ``dataset``, ``seed``, ``repeats``, ``scale_factor``), a
    model hyper-parameter (``overrides.<name>``), a training field
    (``train.<name>``), a SimRank operator field (``simrank.<name>``) or a
    *declared* extra parameter (a key of :attr:`params` — anything else is
    a :class:`repro.errors.ConfigError`, so a knob can never be silently
    dropped).  :meth:`cells` expands the grid into validated
    :class:`ExperimentCell` objects.  The default grid ``({},)`` is a
    single base cell; an explicitly *empty* grid runs zero cells (an
    empty axis in :func:`grid_product` sweeps nothing, exactly like the
    empty legacy ``for`` loop it replaces — it never falls back to an
    un-requested base run).

    ``params`` are extra knobs handed to the experiment's *cell runner*
    (e.g. the number of sampled pairs of Table II); they participate in
    the :class:`repro.experiments.store.ArtifactStore` cell key.
    ``reduction`` knobs are consumed only by the reduction function (e.g.
    Fig. 2's histogram bin count) and deliberately stay *out* of the cell
    key so experiments sharing cell work (Fig. 2 reuses Table II's cells)
    hit each other's artefacts.

    Smoke scaling is a spec transform, not a per-module keyword:
    ``spec.with_base(scale_factor=0.25)`` scales every cell and
    ``spec.with_train(QUICK_EXPERIMENT_CONFIG)`` swaps the training
    protocol, because cells inherit both from ``base``.
    """

    name: str
    base: RunSpec
    title: str = ""
    grid: Tuple[Dict[str, object], ...] = field(default_factory=lambda: ({},))
    params: Dict[str, object] = field(default_factory=dict)
    reduction: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        coerce = object.__setattr__
        _require(isinstance(self.name, str) and bool(self.name),
                 f"experiment name must be a non-empty string, got {self.name!r}")
        coerce(self, "name", self.name.lower())
        _require(isinstance(self.title, str),
                 f"title must be a string, got {self.title!r}")
        _require(isinstance(self.base, RunSpec),
                 f"base must be a RunSpec, got {type(self.base).__name__}")
        _require(not isinstance(self.grid, (str, bytes))
                 and isinstance(self.grid, Sequence),
                 f"grid must be a sequence of mappings, got {self.grid!r}")
        entries = []
        for entry in self.grid:
            _require(isinstance(entry, Mapping),
                     f"every grid entry must be a mapping, got {entry!r}")
            _require(all(isinstance(key, str) for key in entry),
                     f"grid entry keys must be strings, got {entry!r}")
            entries.append(dict(entry))
        coerce(self, "grid", tuple(entries))
        for label in ("params", "reduction"):
            value = getattr(self, label)
            _require(isinstance(value, Mapping)
                     and all(isinstance(key, str) for key in value),
                     f"{label} must be a mapping with string keys, got {value!r}")
            coerce(self, label, dict(value))
        self.cells()  # expand eagerly: a malformed grid fails at construction

    # ------------------------------------------------------------------ #
    # Grid expansion
    # ------------------------------------------------------------------ #
    def _expand(self, index: int, entry: Mapping[str, object]) -> ExperimentCell:
        direct: Dict[str, object] = {}
        overrides = dict(self.base.overrides)
        simrank = self.base.simrank
        train = self.base.train
        params = dict(self.params)
        for key, value in entry.items():
            if key in CELL_SPEC_FIELDS:
                direct[key] = value
            elif key.startswith("overrides."):
                overrides[key[len("overrides."):]] = value
            elif key.startswith("train."):
                train = train.with_overrides(**{key[len("train."):]: value})
            elif key.startswith("simrank."):
                _require(simrank is not None,
                         f"grid entry sets {key!r} but the base RunSpec has "
                         f"no SimRankConfig")
                simrank = simrank.with_overrides(**{key[len("simrank."):]: value})
            elif key in params:
                params[key] = value
            else:
                raise ConfigError(
                    f"unknown cell key {key!r} in experiment {self.name!r}: "
                    f"not a RunSpec field, not an 'overrides.'/'train.'/"
                    f"'simrank.' path, and not a declared parameter "
                    f"({', '.join(sorted(self.params)) or 'none declared'})")
        # A base SimRankConfig applies only to the cells that run a SIGMA
        # model: a grid mixing SIGMA with baselines (fig5's sigma/glognn
        # sweep) inherits the operator config on the SIGMA cells and none
        # on the baselines, exactly as the pre-spec modules behaved.  An
        # explicit ``simrank.`` key on a baseline cell stays an error.
        model = str(direct.get("model", self.base.model)).lower()
        if (simrank is not None and model not in SIMRANK_MODELS
                and not any(key.startswith("simrank.") for key in entry)):
            simrank = None
        spec = self.base.with_overrides(overrides=overrides, simrank=simrank,
                                        train=train, **direct)
        return ExperimentCell(index=index, overrides=dict(entry), spec=spec,
                              params=params)

    def cells(self) -> List[ExperimentCell]:
        """Expand the grid into validated cells (empty grid = zero cells)."""
        return [self._expand(index, entry)
                for index, entry in enumerate(self.grid)]

    @property
    def num_cells(self) -> int:
        return len(self.grid)

    # ------------------------------------------------------------------ #
    # Transforms / serialisation
    # ------------------------------------------------------------------ #
    def with_overrides(self, **changes: object) -> "ExperimentSpec":
        """A validated copy with the given *spec fields* replaced."""
        unknown = set(changes) - {f.name for f in fields(self)}
        _require(not unknown,
                 f"unknown ExperimentSpec field(s): {', '.join(sorted(unknown))}")
        return replace(self, **changes)

    def with_base(self, **changes: object) -> "ExperimentSpec":
        """A copy whose base :class:`RunSpec` has ``changes`` applied.

        This is the shared scaling/seeding story: cells inherit the base,
        so ``with_base(scale_factor=0.25)`` scales the whole experiment.
        """
        return replace(self, base=self.base.with_overrides(**changes))

    def with_train(self, train: "TrainConfig") -> "ExperimentSpec":
        """A copy with the training protocol of every cell replaced."""
        return self.with_base(train=train)

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "title": self.title,
            "base": self.base.to_dict(),
            "grid": [dict(entry) for entry in self.grid],
            "params": dict(self.params),
            "reduction": dict(self.reduction),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "ExperimentSpec":
        _require(isinstance(data, Mapping),
                 f"ExperimentSpec.from_dict expects a mapping, "
                 f"got {type(data).__name__}")
        unknown = set(data) - {f.name for f in fields(cls)}
        _require(not unknown,
                 f"unknown ExperimentSpec field(s): {', '.join(sorted(unknown))}")
        payload = dict(data)
        if payload.get("base") is not None and not isinstance(payload["base"], RunSpec):
            payload["base"] = RunSpec.from_dict(payload["base"])
        if payload.get("grid") is not None:
            payload["grid"] = tuple(dict(entry) for entry in payload["grid"])
        return cls(**payload)


__all__ = [
    "DEFAULT_DECAY",
    "SIMRANK_METHODS",
    "SIMRANK_BACKENDS",
    "SIMRANK_EXECUTORS",
    "SIMRANK_KERNELS",
    "SIMRANK_DTYPES",
    "SIMRANK_MODELS",
    "CACHE_KEY_FIELDS",
    "CELL_SPEC_FIELDS",
    "UNSET",
    "SimRankConfig",
    "DynamicConfig",
    "TelemetryConfig",
    "SIGMA_DEFAULT_SIMRANK",
    "ServeConfig",
    "RunSpec",
    "ExperimentCell",
    "ExperimentSpec",
    "grid_product",
    "merge_deprecated_kwargs",
    "merge_optional_deprecated_kwargs",
    "merge_experiment_simrank_kwargs",
]
