"""Sparse propagation layers shared by the GNN models.

These modules wrap fixed sparse operators (normalised adjacencies, SimRank
or PPR matrices) with forward/backward passes so models can mix them with
the dense layers from :mod:`repro.nn`.
"""

from repro.propagation.sparse_ops import SparsePropagation
from repro.propagation.propagators import (
    GPRPropagation,
    PersonalizedPropagation,
    PowerPropagation,
)

__all__ = [
    "SparsePropagation",
    "PersonalizedPropagation",
    "PowerPropagation",
    "GPRPropagation",
]
