"""Multi-step propagation schemes (APPNP, SGC powers, GPR-GNN).

All of them are linear in the input embedding, so their backward passes are
the same propagation applied with the transposed operator — no intermediate
activations need to be stored except where learnable hop weights require
the per-hop embeddings (GPR).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np
import scipy.sparse as sp

from repro.nn.module import Module, Parameter
from repro.utils.timer import TimingBreakdown


class PowerPropagation(Module):
    """``Z = M^K H`` — the SGC-style propagation."""

    def __init__(self, operator: sp.spmatrix, num_steps: int, *,
                 timing: Optional[TimingBreakdown] = None) -> None:
        super().__init__()
        if num_steps < 0:
            raise ValueError(f"num_steps must be non-negative, got {num_steps}")
        self.operator = sp.csr_matrix(operator)
        self._operator_t = self.operator.T.tocsr()
        self.num_steps = num_steps
        self.timing = timing

    def _measure(self):
        if self.timing is None:
            from contextlib import nullcontext

            return nullcontext()
        return self.timing.measure("aggregation")

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        with self._measure():
            output = inputs
            for _ in range(self.num_steps):
                output = self.operator @ output
            return output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        with self._measure():
            grad = grad_output
            for _ in range(self.num_steps):
                grad = self._operator_t @ grad
            return grad


class PersonalizedPropagation(Module):
    """APPNP propagation ``H^{(t+1)} = (1 − α) M H^{(t)} + α H^{(0)}``."""

    def __init__(self, operator: sp.spmatrix, *, alpha: float = 0.1,
                 num_steps: int = 10, timing: Optional[TimingBreakdown] = None) -> None:
        super().__init__()
        if not 0.0 <= alpha <= 1.0:
            raise ValueError(f"alpha must be in [0, 1], got {alpha}")
        if num_steps < 1:
            raise ValueError(f"num_steps must be >= 1, got {num_steps}")
        self.operator = sp.csr_matrix(operator)
        self._operator_t = self.operator.T.tocsr()
        self.alpha = float(alpha)
        self.num_steps = num_steps
        self.timing = timing

    def _measure(self):
        if self.timing is None:
            from contextlib import nullcontext

            return nullcontext()
        return self.timing.measure("aggregation")

    def _propagate(self, matrix: sp.csr_matrix, inputs: np.ndarray) -> np.ndarray:
        state = inputs
        for _ in range(self.num_steps):
            state = (1.0 - self.alpha) * (matrix @ state) + self.alpha * inputs
        return state

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        with self._measure():
            return self._propagate(self.operator, inputs)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        # Z = Σ_k c_k M^k H with fixed coefficients, so dH = Σ_k c_k (Mᵀ)^k g,
        # i.e. the same recursion run with the transposed operator.
        with self._measure():
            return self._propagate(self._operator_t, grad_output)


class GPRPropagation(Module):
    """GPR-GNN propagation ``Z = Σ_ℓ γ_ℓ M^ℓ H`` with learnable ``γ``."""

    def __init__(self, operator: sp.spmatrix, *, num_steps: int = 10,
                 alpha: float = 0.1, timing: Optional[TimingBreakdown] = None,
                 name: str = "gpr") -> None:
        super().__init__()
        if num_steps < 1:
            raise ValueError(f"num_steps must be >= 1, got {num_steps}")
        self.operator = sp.csr_matrix(operator)
        self._operator_t = self.operator.T.tocsr()
        self.num_steps = num_steps
        self.timing = timing
        # PPR-style initialisation of the hop weights, as in the GPR-GNN paper.
        gammas = alpha * (1.0 - alpha) ** np.arange(num_steps + 1)
        gammas[-1] = (1.0 - alpha) ** num_steps
        self.gammas = Parameter(gammas, name=f"{name}.gammas")
        self._hop_embeddings: List[np.ndarray] = []

    def _measure(self):
        if self.timing is None:
            from contextlib import nullcontext

            return nullcontext()
        return self.timing.measure("aggregation")

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        with self._measure():
            self._hop_embeddings = [inputs]
            state = inputs
            for _ in range(self.num_steps):
                state = self.operator @ state
                self._hop_embeddings.append(state)
            gammas = self.gammas.value
            output = gammas[0] * inputs
            for step in range(1, self.num_steps + 1):
                output = output + gammas[step] * self._hop_embeddings[step]
            return output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if not self._hop_embeddings:
            raise RuntimeError("backward called before forward")
        with self._measure():
            for step, embedding in enumerate(self._hop_embeddings):
                self.gammas.grad[step] += float(np.sum(grad_output * embedding))
            gammas = self.gammas.value
            grad_input = gammas[0] * grad_output
            transported = grad_output
            for step in range(1, self.num_steps + 1):
                transported = self._operator_t @ transported
                grad_input = grad_input + gammas[step] * transported
            return grad_input


__all__ = ["PowerPropagation", "PersonalizedPropagation", "GPRPropagation"]
