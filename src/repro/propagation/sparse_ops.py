"""Sparse matrix–dense matrix propagation with backward support."""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.sparse as sp

from repro.nn.module import Module
from repro.utils.timer import TimingBreakdown


class SparsePropagation(Module):
    """``forward(H) = M @ H`` for a fixed sparse operator ``M``.

    The backward pass is ``Mᵀ @ grad``.  When a :class:`TimingBreakdown`
    is supplied, time spent in both directions is charged to ``bucket``
    (the experiments use ``"aggregation"`` so SIGMA's ``S·H`` cost and
    GloGNN's iterative propagation cost can be compared as in Table VII).
    """

    def __init__(self, operator: sp.spmatrix, *, timing: Optional[TimingBreakdown] = None,
                 bucket: str = "aggregation") -> None:
        super().__init__()
        self.operator = sp.csr_matrix(operator)
        self._operator_t = self.operator.T.tocsr()
        self.timing = timing
        self.bucket = bucket

    @property
    def nnz(self) -> int:
        return int(self.operator.nnz)

    def _timed(self):
        if self.timing is None:
            from contextlib import nullcontext

            return nullcontext()
        return self.timing.measure(self.bucket)

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        with self._timed():
            return self.operator @ inputs

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        with self._timed():
            return self._operator_t @ grad_output


__all__ = ["SparsePropagation"]
