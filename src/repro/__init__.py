"""repro — a reproduction of SIGMA (ICDE 2025).

SIGMA is a heterophilous graph neural network that replaces iterative
message passing with a single global aggregation through a precomputed,
top-k pruned SimRank matrix.  This package implements the full system in
pure Python (numpy/scipy): the SimRank substrate (exact, linearized and
LocalPush-approximate), a neural-network substrate, SIGMA itself, fourteen
baseline models, synthetic heterophily benchmarks and the experiment
harness that regenerates every table and figure of the paper.

Quickstart
----------
>>> from repro import load_dataset, create_model, Trainer, TrainConfig
>>> dataset = load_dataset("texas", seed=0)
>>> model = create_model("sigma", dataset.graph, rng=0)
>>> result = Trainer(model, TrainConfig(max_epochs=100)).fit(dataset.split(0))
>>> 0.0 <= result.test_accuracy <= 1.0
True

Public API
----------
The supported surface for building on the system is :mod:`repro.api`
(``precompute`` / ``build_model`` / ``run``) together with the config
objects :class:`repro.config.SimRankConfig` and
:class:`repro.config.RunSpec`; see the "Public API" section of
ROADMAP.md.  Everything else is internal and free to be refactored.
"""

from repro.version import __version__
from repro.errors import (
    ConfigError,
    DatasetError,
    ExperimentError,
    GraphError,
    ModelError,
    ReproError,
    SimRankError,
    TrainingError,
)
from repro.config import ExperimentSpec, RunSpec, SimRankConfig
from repro.graphs import Graph, node_homophily
from repro.datasets import Dataset, Split, list_datasets, load_dataset
from repro.simrank import (
    exact_simrank,
    linearized_simrank,
    localpush_simrank,
    localpush_simrank_vectorized,
    simrank_class_statistics,
    simrank_operator,
)
from repro.models import SIGMA, create_model, list_models
from repro.training import TrainConfig, Trainer, evaluate_model, repeated_evaluation
from repro import api
from repro.api import RunResult

__all__ = [
    "__version__",
    "ReproError",
    "GraphError",
    "DatasetError",
    "SimRankError",
    "ConfigError",
    "ModelError",
    "TrainingError",
    "ExperimentError",
    "SimRankConfig",
    "RunSpec",
    "ExperimentSpec",
    "RunResult",
    "api",
    "Graph",
    "node_homophily",
    "Dataset",
    "Split",
    "load_dataset",
    "list_datasets",
    "exact_simrank",
    "linearized_simrank",
    "localpush_simrank",
    "localpush_simrank_vectorized",
    "simrank_class_statistics",
    "simrank_operator",
    "SIGMA",
    "create_model",
    "list_models",
    "TrainConfig",
    "Trainer",
    "evaluate_model",
    "repeated_evaluation",
]
