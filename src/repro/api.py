"""Public facade of the repro package.

This module is the supported surface for building on the system (see the
"Public API" section of ROADMAP.md): three functions and the config
objects they consume.  Everything else in the package is internal and
free to be refactored between releases.

* :func:`precompute` — compute (or load from cache) the SimRank
  aggregation operator described by a :class:`repro.config.SimRankConfig`.
* :func:`build_model` — construct any registered model, either from a
  name plus overrides or from a :class:`repro.config.RunSpec`.
* :func:`run` — execute a :class:`RunSpec` end to end (load dataset,
  build, train over the splits) and return a :class:`RunResult`.
* :func:`run_experiment` — run a registered declarative experiment (an
  :class:`repro.config.ExperimentSpec` grid of ``RunSpec`` cells plus a
  reduction) through the sweep engine, with executor fan-out and a
  resumable :class:`repro.experiments.store.ArtifactStore`.
* :func:`topk` / :func:`score` — single-source / single-pair SimRank
  queries (row ``u`` of the operator, O(query) LocalPush work instead of
  the all-pairs precompute).  The long-lived serving layer on top lives
  in :mod:`repro.serve` and is configured by
  :class:`repro.config.ServeConfig`.
* :func:`apply_updates` — apply an edge-update stream to a graph and
  return a live :class:`repro.dynamic.operator.DynamicOperator`, repaired
  incrementally under a :class:`repro.config.DynamicConfig` instead of
  recomputed from scratch.

Example
-------
>>> from repro.api import run
>>> from repro.config import RunSpec, SimRankConfig
>>> spec = RunSpec(model="sigma", dataset="texas", repeats=1,
...                simrank=SimRankConfig(top_k=8))
>>> result = run(spec)          # doctest: +SKIP
>>> 0.0 <= result.summary.mean_accuracy <= 1.0   # doctest: +SKIP
True
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.config import (SIMRANK_MODELS, ExperimentSpec, RunSpec,
                          SimRankConfig, TelemetryConfig)
from repro.errors import ConfigError
from repro.graphs.graph import Graph

if TYPE_CHECKING:  # pragma: no cover - typing-only imports
    import scipy.sparse as sp

    from repro.config import DynamicConfig
    from repro.dynamic.operator import CacheLike, DynamicOperator
    from repro.graphs.delta import Updates
    from repro.models.base import NodeClassifier
    from repro.training.evaluation import EvaluationSummary


def precompute(graph: Graph,
               config: Optional[SimRankConfig] = None) -> "SimRankOperator":
    """Precompute the SimRank aggregation operator for ``graph``.

    With ``config=None`` the library defaults apply (auto method
    selection, ε = 0.1, no pruning).  A ``cache_dir`` in the config makes
    repeated calls hit the persistent operator cache.
    """
    from repro.simrank.topk import simrank_operator

    return simrank_operator(graph, config=config)


def build_model(name: Optional[str], graph: Graph, *,
                spec: Optional[RunSpec] = None,
                simrank: Optional[SimRankConfig] = None,
                rng: object = None, **overrides: object) -> "NodeClassifier":
    """Construct a registered model on ``graph``.

    Either pass ``name`` (plus optional ``simrank`` config and
    hyper-parameter ``overrides``), or pass a ``spec`` whose model name,
    overrides and SimRank config are used — with ``name``/``overrides``
    arguments layered on top.  The SimRank config is routed to the SIGMA
    models as their ``simrank=`` parameter; supplying one for any other
    model is an error.
    """
    if spec is not None:
        name = name or spec.model
        overrides = {**spec.overrides, **overrides}
        simrank = simrank if simrank is not None else spec.simrank
    if name is None:
        raise ConfigError("build_model needs a model name or a spec")
    if simrank is not None:
        if name.lower() not in SIMRANK_MODELS:
            raise ConfigError(
                f"a SimRankConfig only applies to {SIMRANK_MODELS}, "
                f"not {name!r}")
        overrides = {**overrides, "simrank": simrank}
    from repro.models.registry import create_model

    return create_model(name, graph, rng=rng, **overrides)


@dataclass
class RunResult:
    """Outcome of :func:`run`: the spec that ran plus its summary."""

    spec: RunSpec
    summary: "EvaluationSummary"

    def as_row(self) -> Dict[str, object]:
        """The summary row (accuracy/timing) — what the CLI prints."""
        return self.summary.as_row()

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable record: the spec and the result row."""
        return {"spec": self.spec.to_dict(), **self.as_row()}


def run(spec: RunSpec) -> RunResult:
    """Execute ``spec`` end to end and return its :class:`RunResult`.

    Loads ``spec.dataset`` (scaled by ``spec.scale_factor``), trains
    ``spec.model`` over ``spec.repeats`` splits (the paper's 5/10
    protocol when ``None``) under ``spec.train``, seeding everything from
    ``spec.seed``.
    """
    from repro.datasets.registry import load_dataset
    from repro.training.evaluation import repeated_evaluation

    dataset = load_dataset(spec.dataset, seed=spec.seed,
                           scale_factor=spec.scale_factor)
    overrides = dict(spec.overrides)
    if spec.simrank is not None:
        overrides["simrank"] = spec.simrank
    summary = repeated_evaluation(spec.model, dataset,
                                  num_repeats=spec.repeats,
                                  config=spec.train, seed=spec.seed,
                                  **overrides)
    return RunResult(spec=spec, summary=summary)


def _query_row(graph: Graph, source: int, config: Optional[SimRankConfig],
               k: Optional[int]) -> "sp.csr_matrix":
    """Row ``source`` of the SimRank operator described by ``config``.

    Always computed with LocalPush (the only method with a single-source
    variant): ``absorb_residual=True`` and the paper's ``ε/10`` floor
    prune, then ``top_k_per_row`` semantics when ``k`` is given — the
    same pipeline as the all-pairs operator, so the row is bit-identical
    to the corresponding all-pairs row under the guarantee documented on
    :func:`repro.simrank.engine.multi_source_localpush`.  A ``cache_dir``
    in the config lets a dominating cached all-pairs entry answer the
    query without any push work (``OperatorCache.lookup_row``).
    """
    from repro.graphs.sparse import sparse_row_normalize
    from repro.simrank.engine import single_source_localpush
    from repro.simrank.localpush import resolve_execution

    cfg = config if config is not None else SimRankConfig()
    if cfg.method == "exact":
        raise ConfigError(
            "single-source queries always run LocalPush; "
            "method='exact' has no row variant")
    if cfg.cache_dir is not None:
        from repro.simrank.cache import get_operator_cache

        cache = get_operator_cache(cfg.cache_dir,
                                   max_bytes=cfg.cache_max_bytes)
        served = cache.lookup_row(
            graph, source, decay=cfg.decay, epsilon=cfg.epsilon, top_k=k,
            row_normalize=cfg.row_normalize,
            dtype=None if cfg.dtype == "float64" else cfg.dtype)
        if served is not None:
            return served[0]
    _, executor = resolve_execution(cfg.backend, cfg.executor,
                                    graph.num_nodes, dtype=cfg.dtype)
    result = single_source_localpush(
        graph, source, decay=cfg.decay, epsilon=cfg.epsilon, prune=True,
        absorb_residual=True, executor=executor or "serial",
        num_workers=cfg.workers, top_k=k, kernel=cfg.kernel,
        dtype=cfg.dtype)
    row = result.row
    if cfg.row_normalize:
        row = sparse_row_normalize(row)
    return row


def topk(graph: Graph, source: int, k: int,
         config: Optional[SimRankConfig] = None) -> "List[Tuple[int, float]]":
    """The ``k`` most SimRank-similar nodes to ``source`` (self included).

    Returns ``[(node, score), ...]`` sorted by descending score, ties
    broken toward the smaller node id — the order induced by
    :func:`repro.graphs.sparse.top_k_per_row`.  ``S(u, u) = 1`` so
    ``source`` itself leads the list.  With ``config=None`` the library
    defaults apply (``ε = 0.1``, serial executor); a ``cache_dir`` in the
    config serves the row from any dominating cached all-pairs operator.
    """
    import numpy as np

    if not isinstance(k, int) or isinstance(k, bool) or k < 1:
        raise ConfigError(f"k must be a positive integer, got {k!r}")
    row = _query_row(graph, source, config, k)
    order = np.lexsort((row.indices, -row.data))
    return [(int(row.indices[i]), float(row.data[i])) for i in order]


def score(graph: Graph, u: int, v: int,
          config: Optional[SimRankConfig] = None) -> float:
    """The single-pair SimRank score ``Ŝ(u, v)``, ``|Ŝ − S| < ε``.

    Computed from the single-source row of ``u`` with the identical
    pipeline as :func:`topk`, so ``score(g, u, v)`` equals the entry for
    ``v`` in ``topk(g, u, n)`` exactly — ``0.0`` when ``v`` was floor-
    pruned or is unreachable from ``u``.
    """
    from repro.simrank.engine import _validate_sources

    _validate_sources(graph, [u, v])
    row = _query_row(graph, u, config, None)
    return float(row[0, int(v)])


def apply_updates(graph: Graph, updates: "Updates", *,
                  config: Optional[SimRankConfig] = None,
                  dynamic: Optional["DynamicConfig"] = None,
                  cache: "CacheLike" = None) -> "DynamicOperator":
    """Apply an edge-update stream to ``graph`` and return a live operator.

    ``updates`` is anything :meth:`repro.graphs.delta.UpdateBatch.coerce`
    accepts — a single :class:`~repro.graphs.delta.GraphDelta`, an
    iterable of them, or an ``UpdateBatch``.  The returned
    :class:`~repro.dynamic.operator.DynamicOperator` holds the repaired
    state on ``graph.apply_delta(updates)`` under the error contract of
    ``config`` (library defaults when ``None``) and keeps accepting
    further updates through its :meth:`~repro.dynamic.operator.DynamicOperator.apply`.

    With a cache (``cache=`` or ``config.cache_dir``), a delta-chained
    entry written by an earlier identical call answers without any push
    work, and a warm base-graph entry turns the build into an
    estimate-only warm start — the repair then seeds from the
    reconstruction algebra (see the :mod:`repro.dynamic` docstring).
    """
    from repro.dynamic.operator import DynamicOperator

    cfg = config if config is not None else SimRankConfig()
    chained = DynamicOperator.from_chain(graph, updates, simrank=cfg,
                                         dynamic=dynamic, cache=cache)
    if chained is not None:
        return chained
    operator = DynamicOperator(graph, simrank=cfg, dynamic=dynamic,
                               cache=cache)
    operator.apply(updates)
    return operator


def run_experiment(name: str, *args: object, **kwargs: object) -> object:
    """Run a registered declarative experiment and return its result.

    Thin facade over :func:`repro.experiments.run_experiment` (imported
    lazily — the experiment modules build on this module).  ``*args`` and
    unknown keywords go to the experiment's spec builder; the engine
    options (``scale_factor``, ``train``, ``executor``, ``workers``,
    ``store``, ``resume``, ``force``, ``spec``, ``print_result``) apply
    uniformly to every experiment.
    """
    from repro.experiments import run_experiment as _run_experiment

    return _run_experiment(name, *args, **kwargs)


def list_experiments() -> list:
    """All registered experiment definitions (lazy facade)."""
    from repro.experiments import list_experiments as _list_experiments

    return _list_experiments()


__all__ = ["precompute", "build_model", "run", "run_experiment",
           "list_experiments", "topk", "score", "apply_updates",
           "RunResult", "RunSpec", "SimRankConfig", "ExperimentSpec",
           "TelemetryConfig"]
