"""Public facade of the repro package.

This module is the supported surface for building on the system (see the
"Public API" section of ROADMAP.md): three functions and the config
objects they consume.  Everything else in the package is internal and
free to be refactored between releases.

* :func:`precompute` — compute (or load from cache) the SimRank
  aggregation operator described by a :class:`repro.config.SimRankConfig`.
* :func:`build_model` — construct any registered model, either from a
  name plus overrides or from a :class:`repro.config.RunSpec`.
* :func:`run` — execute a :class:`RunSpec` end to end (load dataset,
  build, train over the splits) and return a :class:`RunResult`.
* :func:`run_experiment` — run a registered declarative experiment (an
  :class:`repro.config.ExperimentSpec` grid of ``RunSpec`` cells plus a
  reduction) through the sweep engine, with executor fan-out and a
  resumable :class:`repro.experiments.store.ArtifactStore`.

Example
-------
>>> from repro.api import run
>>> from repro.config import RunSpec, SimRankConfig
>>> spec = RunSpec(model="sigma", dataset="texas", repeats=1,
...                simrank=SimRankConfig(top_k=8))
>>> result = run(spec)          # doctest: +SKIP
>>> 0.0 <= result.summary.mean_accuracy <= 1.0   # doctest: +SKIP
True
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional

from repro.config import SIMRANK_MODELS, ExperimentSpec, RunSpec, SimRankConfig
from repro.errors import ConfigError
from repro.graphs.graph import Graph

if TYPE_CHECKING:  # pragma: no cover - typing-only imports
    from repro.models.base import NodeClassifier
    from repro.training.evaluation import EvaluationSummary


def precompute(graph: Graph,
               config: Optional[SimRankConfig] = None) -> "SimRankOperator":
    """Precompute the SimRank aggregation operator for ``graph``.

    With ``config=None`` the library defaults apply (auto method
    selection, ε = 0.1, no pruning).  A ``cache_dir`` in the config makes
    repeated calls hit the persistent operator cache.
    """
    from repro.simrank.topk import simrank_operator

    return simrank_operator(graph, config=config)


def build_model(name: Optional[str], graph: Graph, *,
                spec: Optional[RunSpec] = None,
                simrank: Optional[SimRankConfig] = None,
                rng: object = None, **overrides: object) -> "NodeClassifier":
    """Construct a registered model on ``graph``.

    Either pass ``name`` (plus optional ``simrank`` config and
    hyper-parameter ``overrides``), or pass a ``spec`` whose model name,
    overrides and SimRank config are used — with ``name``/``overrides``
    arguments layered on top.  The SimRank config is routed to the SIGMA
    models as their ``simrank=`` parameter; supplying one for any other
    model is an error.
    """
    if spec is not None:
        name = name or spec.model
        overrides = {**spec.overrides, **overrides}
        simrank = simrank if simrank is not None else spec.simrank
    if name is None:
        raise ConfigError("build_model needs a model name or a spec")
    if simrank is not None:
        if name.lower() not in SIMRANK_MODELS:
            raise ConfigError(
                f"a SimRankConfig only applies to {SIMRANK_MODELS}, "
                f"not {name!r}")
        overrides = {**overrides, "simrank": simrank}
    from repro.models.registry import create_model

    return create_model(name, graph, rng=rng, **overrides)


@dataclass
class RunResult:
    """Outcome of :func:`run`: the spec that ran plus its summary."""

    spec: RunSpec
    summary: "EvaluationSummary"

    def as_row(self) -> Dict[str, object]:
        """The summary row (accuracy/timing) — what the CLI prints."""
        return self.summary.as_row()

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable record: the spec and the result row."""
        return {"spec": self.spec.to_dict(), **self.as_row()}


def run(spec: RunSpec) -> RunResult:
    """Execute ``spec`` end to end and return its :class:`RunResult`.

    Loads ``spec.dataset`` (scaled by ``spec.scale_factor``), trains
    ``spec.model`` over ``spec.repeats`` splits (the paper's 5/10
    protocol when ``None``) under ``spec.train``, seeding everything from
    ``spec.seed``.
    """
    from repro.datasets.registry import load_dataset
    from repro.training.evaluation import repeated_evaluation

    dataset = load_dataset(spec.dataset, seed=spec.seed,
                           scale_factor=spec.scale_factor)
    overrides = dict(spec.overrides)
    if spec.simrank is not None:
        overrides["simrank"] = spec.simrank
    summary = repeated_evaluation(spec.model, dataset,
                                  num_repeats=spec.repeats,
                                  config=spec.train, seed=spec.seed,
                                  **overrides)
    return RunResult(spec=spec, summary=summary)


def run_experiment(name: str, *args: object, **kwargs: object) -> object:
    """Run a registered declarative experiment and return its result.

    Thin facade over :func:`repro.experiments.run_experiment` (imported
    lazily — the experiment modules build on this module).  ``*args`` and
    unknown keywords go to the experiment's spec builder; the engine
    options (``scale_factor``, ``train``, ``executor``, ``workers``,
    ``store``, ``resume``, ``force``, ``spec``, ``print_result``) apply
    uniformly to every experiment.
    """
    from repro.experiments import run_experiment as _run_experiment

    return _run_experiment(name, *args, **kwargs)


def list_experiments() -> list:
    """All registered experiment definitions (lazy facade)."""
    from repro.experiments import list_experiments as _list_experiments

    return _list_experiments()


__all__ = ["precompute", "build_model", "run", "run_experiment",
           "list_experiments", "RunResult", "RunSpec", "SimRankConfig",
           "ExperimentSpec"]
