"""Training harness: full-batch training loop, metrics and repeated runs."""

from repro.training.config import TrainConfig
from repro.training.early_stopping import EarlyStopping
from repro.training.metrics import accuracy_score, confusion_matrix, macro_f1_score
from repro.training.trainer import EpochRecord, Trainer, TrainResult
from repro.training.evaluation import EvaluationSummary, evaluate_model, repeated_evaluation

__all__ = [
    "TrainConfig",
    "EarlyStopping",
    "Trainer",
    "TrainResult",
    "EpochRecord",
    "accuracy_score",
    "macro_f1_score",
    "confusion_matrix",
    "evaluate_model",
    "repeated_evaluation",
    "EvaluationSummary",
]
