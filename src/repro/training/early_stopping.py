"""Early stopping on validation accuracy."""

from __future__ import annotations

from typing import Optional


class EarlyStopping:
    """Stops training when validation accuracy has not improved for ``patience`` epochs."""

    def __init__(self, patience: int = 50, *, minimum_delta: float = 0.0) -> None:
        if patience < 1:
            raise ValueError(f"patience must be >= 1, got {patience}")
        if minimum_delta < 0:
            raise ValueError(f"minimum_delta must be non-negative, got {minimum_delta}")
        self.patience = patience
        self.minimum_delta = minimum_delta
        self.best_score: Optional[float] = None
        self.best_epoch: int = -1
        self.counter: int = 0

    def update(self, score: float, epoch: int) -> bool:
        """Record ``score`` for ``epoch``; return True when the score improved."""
        if self.best_score is None or score > self.best_score + self.minimum_delta:
            self.best_score = score
            self.best_epoch = epoch
            self.counter = 0
            return True
        self.counter += 1
        return False

    @property
    def should_stop(self) -> bool:
        return self.counter >= self.patience


__all__ = ["EarlyStopping"]
