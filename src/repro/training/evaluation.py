"""Repeated evaluation of a model over a dataset's splits.

The paper reports the mean and standard deviation of test accuracy over 5
(small datasets) or 10 (large datasets) repetitions; this module provides
that protocol as a single call used by the experiment scripts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.datasets.dataset import Dataset
from repro.models.registry import create_model
from repro.training.config import TrainConfig
from repro.training.trainer import Trainer, TrainResult
from repro.utils.rng import spawn_rngs
from repro.utils.timer import TimingBreakdown


@dataclass
class EvaluationSummary:
    """Aggregated results of repeated training runs."""

    model: str
    dataset: str
    accuracies: List[float]
    results: List[TrainResult] = field(default_factory=list)

    @property
    def mean_accuracy(self) -> float:
        return float(np.mean(self.accuracies))

    @property
    def std_accuracy(self) -> float:
        return float(np.std(self.accuracies))

    @property
    def mean_learning_time(self) -> float:
        return float(np.mean([result.learning_time for result in self.results]))

    @property
    def mean_precompute_time(self) -> float:
        return float(np.mean([result.timing.precompute for result in self.results]))

    @property
    def mean_aggregation_time(self) -> float:
        return float(np.mean([result.timing.aggregation for result in self.results]))

    def as_row(self) -> Dict[str, object]:
        return {
            "model": self.model,
            "dataset": self.dataset,
            "accuracy_mean": round(100 * self.mean_accuracy, 2),
            "accuracy_std": round(100 * self.std_accuracy, 2),
            "learning_time": round(self.mean_learning_time, 3),
            "precompute_time": round(self.mean_precompute_time, 3),
            "aggregation_time": round(self.mean_aggregation_time, 3),
        }


def evaluate_model(model_name: str, dataset: Dataset, *, split_index: int = 0,
                   config: Optional[TrainConfig] = None, seed: int = 0,
                   **model_overrides: object) -> TrainResult:
    """Train ``model_name`` on one split of ``dataset`` and return the result."""
    config = config or TrainConfig()
    rng = np.random.default_rng(seed)
    model = create_model(model_name, dataset.graph, rng=rng, **model_overrides)
    trainer = Trainer(model, config)
    return trainer.fit(dataset.split(split_index))


def repeated_evaluation(model_name: str, dataset: Dataset, *,
                        num_repeats: Optional[int] = None,
                        config: Optional[TrainConfig] = None, seed: int = 0,
                        **model_overrides: object) -> EvaluationSummary:
    """Train on every split (paper protocol) and aggregate accuracies."""
    config = config or TrainConfig()
    repeats = num_repeats if num_repeats is not None else dataset.num_splits
    repeats = min(repeats, dataset.num_splits)
    rngs = spawn_rngs(seed, repeats)
    accuracies: List[float] = []
    results: List[TrainResult] = []
    for index in range(repeats):
        model = create_model(model_name, dataset.graph, rng=rngs[index], **model_overrides)
        trainer = Trainer(model, config)
        result = trainer.fit(dataset.split(index))
        accuracies.append(result.test_accuracy)
        results.append(result)
    return EvaluationSummary(model=model_name, dataset=dataset.name,
                             accuracies=accuracies, results=results)


__all__ = ["evaluate_model", "repeated_evaluation", "EvaluationSummary"]
