"""Classification metrics."""

from __future__ import annotations

import numpy as np


def accuracy_score(labels: np.ndarray, predictions: np.ndarray) -> float:
    """Fraction of correct predictions."""
    labels = np.asarray(labels).ravel()
    predictions = np.asarray(predictions).ravel()
    if labels.shape != predictions.shape:
        raise ValueError(
            f"labels and predictions must have the same shape, got {labels.shape} "
            f"and {predictions.shape}"
        )
    if labels.size == 0:
        raise ValueError("cannot compute accuracy of zero samples")
    return float(np.mean(labels == predictions))


def confusion_matrix(labels: np.ndarray, predictions: np.ndarray,
                     num_classes: int | None = None) -> np.ndarray:
    """``(num_classes, num_classes)`` matrix with true classes as rows."""
    labels = np.asarray(labels, dtype=np.int64).ravel()
    predictions = np.asarray(predictions, dtype=np.int64).ravel()
    if labels.shape != predictions.shape:
        raise ValueError("labels and predictions must have the same shape")
    if num_classes is None:
        num_classes = int(max(labels.max(initial=0), predictions.max(initial=0))) + 1
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    np.add.at(matrix, (labels, predictions), 1)
    return matrix


def macro_f1_score(labels: np.ndarray, predictions: np.ndarray) -> float:
    """Unweighted mean of per-class F1 scores.

    Classes absent from both labels and predictions are skipped, matching
    scikit-learn's behaviour with zero-division handling set to zero.
    """
    matrix = confusion_matrix(labels, predictions)
    f1_scores = []
    for klass in range(matrix.shape[0]):
        true_positive = matrix[klass, klass]
        false_positive = matrix[:, klass].sum() - true_positive
        false_negative = matrix[klass, :].sum() - true_positive
        if true_positive == 0 and false_positive == 0 and false_negative == 0:
            continue
        precision = true_positive / (true_positive + false_positive) if (true_positive + false_positive) else 0.0
        recall = true_positive / (true_positive + false_negative) if (true_positive + false_negative) else 0.0
        if precision + recall == 0:
            f1_scores.append(0.0)
        else:
            f1_scores.append(2 * precision * recall / (precision + recall))
    if not f1_scores:
        return 0.0
    return float(np.mean(f1_scores))


__all__ = ["accuracy_score", "confusion_matrix", "macro_f1_score"]
