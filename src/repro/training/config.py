"""Training configuration."""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields, replace
from typing import Dict, Mapping

from repro.errors import TrainingError


@dataclass(frozen=True)
class TrainConfig:
    """Hyper-parameters of the full-batch training loop.

    Mirrors the paper's search space (Table VI): learning rate, weight decay,
    dropout (a model parameter), early-stopping patience and epoch budget.
    """

    learning_rate: float = 0.01
    weight_decay: float = 5e-4
    max_epochs: int = 300
    patience: int = 50
    optimizer: str = "adam"
    momentum: float = 0.9
    min_epochs: int = 10
    track_test_history: bool = True
    model_overrides: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.learning_rate <= 0:
            raise TrainingError(f"learning_rate must be positive, got {self.learning_rate}")
        if self.weight_decay < 0:
            raise TrainingError(f"weight_decay must be non-negative, got {self.weight_decay}")
        if self.max_epochs < 1:
            raise TrainingError(f"max_epochs must be >= 1, got {self.max_epochs}")
        if self.patience < 1:
            raise TrainingError(f"patience must be >= 1, got {self.patience}")
        if self.optimizer not in {"adam", "sgd"}:
            raise TrainingError(f"optimizer must be 'adam' or 'sgd', got {self.optimizer!r}")
        if self.min_epochs < 0 or self.min_epochs > self.max_epochs:
            raise TrainingError("min_epochs must be in [0, max_epochs]")

    def with_overrides(self, **changes: object) -> "TrainConfig":
        """A copy of the config with the given fields replaced."""
        return replace(self, **changes)

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form (JSON-serialisable); inverse of :meth:`from_dict`."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "TrainConfig":
        """Reconstruct a validated config from :meth:`to_dict` output."""
        if not isinstance(data, Mapping):
            raise TrainingError(
                f"TrainConfig.from_dict expects a mapping, got {type(data).__name__}")
        unknown = set(data) - {f.name for f in fields(cls)}
        if unknown:
            raise TrainingError(
                f"unknown TrainConfig field(s): {', '.join(sorted(unknown))}")
        return cls(**dict(data))


# Reasonable defaults for quick experiments / tests on the synthetic graphs.
FAST_CONFIG = TrainConfig(max_epochs=60, patience=20, min_epochs=5)

__all__ = ["TrainConfig", "FAST_CONFIG"]
