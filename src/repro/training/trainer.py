"""Full-batch training loop with early stopping and timing breakdown.

The trainer mirrors the paper's protocol: train with Adam on the training
nodes, select the best epoch by validation accuracy, report test accuracy at
that epoch, and account time in the Pre./AGG/Learn buckets of Table VII
(precomputation time is charged by the model at construction; the trainer
adds the per-epoch training time, which includes the aggregation bucket).
"""

from __future__ import annotations

import copy
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.errors import TrainingError
from repro.datasets.dataset import Split
from repro.models.base import NodeClassifier
from repro.nn.optim import SGD, Adam, Optimizer
from repro.training.config import TrainConfig
from repro.training.early_stopping import EarlyStopping
from repro.utils.timer import TimingBreakdown


@dataclass
class EpochRecord:
    """Metrics captured after one training epoch."""

    epoch: int
    loss: float
    train_accuracy: float
    val_accuracy: float
    test_accuracy: float
    elapsed_seconds: float


@dataclass
class TrainResult:
    """Outcome of one training run."""

    best_epoch: int
    best_val_accuracy: float
    test_accuracy: float
    train_accuracy: float
    history: List[EpochRecord] = field(default_factory=list)
    timing: TimingBreakdown = field(default_factory=TimingBreakdown)
    num_epochs: int = 0

    @property
    def learning_time(self) -> float:
        """Precomputation plus training time (the paper's 'Learn' column)."""
        return self.timing.learning

    def convergence_curve(self) -> List[tuple[float, float]]:
        """``(cumulative seconds, test accuracy)`` pairs (Fig. 4 series)."""
        return [(record.elapsed_seconds, record.test_accuracy) for record in self.history]


class Trainer:
    """Trains a :class:`NodeClassifier` on one dataset split."""

    def __init__(self, model: NodeClassifier, config: Optional[TrainConfig] = None) -> None:
        self.model = model
        self.config = config or TrainConfig()
        self._optimizer = self._build_optimizer()

    def _build_optimizer(self) -> Optimizer:
        parameters = self.model.parameters()
        if not parameters:
            raise TrainingError("model has no trainable parameters")
        if self.config.optimizer == "adam":
            return Adam(parameters, lr=self.config.learning_rate,
                        weight_decay=self.config.weight_decay)
        return SGD(parameters, lr=self.config.learning_rate,
                   momentum=self.config.momentum,
                   weight_decay=self.config.weight_decay)

    # ------------------------------------------------------------------ #
    def fit(self, split: Split) -> TrainResult:
        """Train on ``split.train``, select on ``split.val``, report ``split.test``."""
        model = self.model
        config = self.config
        stopper = EarlyStopping(config.patience)
        best_state: Optional[List[np.ndarray]] = None
        history: List[EpochRecord] = []
        start = time.perf_counter()

        for epoch in range(config.max_epochs):
            model.train()
            with model.timing.measure("training"):
                self._optimizer.zero_grad()
                loss, grad = model.loss_and_grad(split.train)
                model.backward(grad)
                self._optimizer.step()

                train_acc = model.accuracy(split.train)
                val_acc = model.accuracy(split.val)
                test_acc = model.accuracy(split.test) if config.track_test_history else float("nan")
            elapsed = time.perf_counter() - start
            history.append(EpochRecord(epoch=epoch, loss=loss, train_accuracy=train_acc,
                                       val_accuracy=val_acc, test_accuracy=test_acc,
                                       elapsed_seconds=elapsed))

            improved = stopper.update(val_acc, epoch)
            if improved:
                best_state = [param.value.copy() for param in model.parameters()]
            if epoch + 1 >= config.min_epochs and stopper.should_stop:
                break

        if best_state is not None:
            for param, value in zip(model.parameters(), best_state):
                param.value[...] = value

        model.eval()
        final_test = model.accuracy(split.test)
        final_train = model.accuracy(split.train)
        return TrainResult(
            best_epoch=stopper.best_epoch,
            best_val_accuracy=stopper.best_score or 0.0,
            test_accuracy=final_test,
            train_accuracy=final_train,
            history=history,
            timing=model.timing,
            num_epochs=len(history),
        )


__all__ = ["Trainer", "TrainResult", "EpochRecord"]
