"""Benchmark E3 — Table V: accuracy of SIGMA against baselines.

Reduced scale: two heterophilous datasets, a representative subset of
baselines, two repeats.  Asserts the paper's qualitative outcome — SIGMA is
not dominated by the local GCN baseline and lands in the top tier.
"""

from conftest import BENCH_CONFIG, run_once

from repro.experiments import run_experiment


def test_bench_table5_accuracy(benchmark):
    result = run_once(benchmark, run_experiment, "table5",
        datasets=("chameleon", "arxiv-year"),
        models=("mlp", "gcn", "linkx", "glognn", "sigma"),
        num_repeats=2, scale_factor=0.5, config=BENCH_CONFIG, tune=False, seed=0, print_result=False)
    ranks = result.ranks()
    assert set(ranks) == {"mlp", "gcn", "linkx", "glognn", "sigma"}
    # SIGMA should rank in the upper half of this five-model comparison.
    assert ranks["sigma"] <= 3.0
