"""Benchmark E6 — Fig. 5: scalability with graph size (SIGMA vs GloGNN)."""

from conftest import BENCH_CONFIG, run_once

from repro.experiments import run_experiment


def test_bench_fig5_scalability(benchmark):
    result = run_once(benchmark, run_experiment, "fig5", base_dataset="pokec", num_sizes=3, shrink=2.0,
                      base_scale=0.25, config=BENCH_CONFIG, seed=0, print_result=False)
    sigma_series = result.series("sigma")
    glognn_series = result.series("glognn")
    assert len(sigma_series) == len(glognn_series) == 3
    # Learning time grows with the number of edges for both methods.
    sigma_sorted = sorted(sigma_series)
    assert sigma_sorted[0][1] <= sigma_sorted[-1][1] * 1.5
    assert len(result.speedup_trend()) == 3
