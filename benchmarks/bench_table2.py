"""Benchmark E2 — Table II: intra/inter-class SimRank statistics."""

from conftest import run_once

from repro.experiments import run_experiment


def test_bench_table2_simrank_stats(benchmark):
    result = run_once(benchmark, run_experiment, "table2", datasets=("texas", "chameleon"),
                      scale_factor=0.5, num_pairs=5000, print_result=False)
    assert set(result.stats) == {"texas", "chameleon"}
    # The paper's claim: intra-class pairs score higher than inter-class pairs.
    assert result.all_separations_positive
