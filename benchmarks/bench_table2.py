"""Benchmark E2 — Table II: intra/inter-class SimRank statistics."""

from conftest import run_once

from repro.experiments.table2_simrank_stats import run


def test_bench_table2_simrank_stats(benchmark):
    result = run_once(benchmark, run, datasets=("texas", "chameleon"),
                      scale_factor=0.5, num_pairs=5000)
    assert set(result.stats) == {"texas", "chameleon"}
    # The paper's claim: intra-class pairs score higher than inter-class pairs.
    assert result.all_separations_positive
