"""Benchmark E10 — Table IX: sensitivity to the feature factor δ."""

from conftest import BENCH_CONFIG, run_once

from repro.experiments import run_experiment


def test_bench_table9_delta(benchmark):
    result = run_once(benchmark, run_experiment, "table9", datasets=("penn94",), deltas=(0.1, 0.5, 0.9),
                      num_repeats=1, scale_factor=0.5, config=BENCH_CONFIG, seed=0, print_result=False)
    assert len(result.rows()) == 3
    best = result.best_delta("penn94")
    assert best in (0.1, 0.5, 0.9)
