"""Benchmark E1 — Fig. 1: PPR vs SimRank aggregation maps on Texas."""

from conftest import run_once

from repro.experiments import run_experiment


def test_bench_fig1_aggregation_maps(benchmark):
    result = run_once(benchmark, run_experiment, "fig1", "texas", num_centers=10, print_result=False)
    ppr_mass = result.mean_same_label_mass("ppr")
    simrank_mass = result.mean_same_label_mass("simrank")
    assert 0.0 <= ppr_mass <= 1.0
    assert 0.0 <= simrank_mass <= 1.0
    # SimRank concentrates more aggregation weight on same-label nodes than
    # the local PPR operator does (Fig. 1(b) vs (c)).
    assert simrank_mass > ppr_mass
