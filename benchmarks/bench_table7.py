"""Benchmark E4 — Table VII: learning-time breakdown (LINKX / GloGNN / SIGMA)."""

from conftest import BENCH_CONFIG, run_once

from repro.experiments import run_experiment


def test_bench_table7_learning_time(benchmark):
    result = run_once(benchmark, run_experiment, "table7", datasets=("arxiv-year", "pokec"),
                      models=("linkx", "glognn", "sigma"),
                      num_repeats=1, scale_factor=0.5, config=BENCH_CONFIG, seed=0, print_result=False)
    rows = result.rows()
    assert len(rows) == 6
    # SIGMA's one-shot aggregation is cheaper than GloGNN's iterative one.
    for dataset in result.datasets:
        sigma_row = next(r for r in result.rows_by_model["sigma"] if r["dataset"] == dataset)
        glognn_row = next(r for r in result.rows_by_model["glognn"] if r["dataset"] == dataset)
        assert sigma_row["agg"] < glognn_row["agg"]
    assert result.average_speedup_over("glognn") > 1.0
