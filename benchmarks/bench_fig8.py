"""Benchmark E12 — Fig. 8: grouping effect of the SIGMA embeddings."""

from conftest import BENCH_CONFIG, run_once

from repro.experiments import run_experiment


def test_bench_fig8_grouping(benchmark):
    result = run_once(benchmark, run_experiment, "fig8", datasets=("texas", "pubmed"),
                      scale_factor=0.5, config=BENCH_CONFIG, num_pairs=5000, seed=0, print_result=False)
    assert len(result.stats) == 2
    for stats in result.stats:
        # Same-class embeddings are more similar than cross-class embeddings.
        assert stats.intra_similarity > stats.inter_similarity
