"""Benchmark E2 (figure) — Fig. 2: SimRank score densities."""

from conftest import run_once

from repro.experiments.fig2_score_densities import run


def test_bench_fig2_score_densities(benchmark):
    result = run_once(benchmark, run, datasets=("texas",), scale_factor=1.0, bins=20)
    histogram = result.histograms["texas"]
    centres, density = histogram["intra"]
    assert len(centres) == 20
    assert density.min() >= 0.0
