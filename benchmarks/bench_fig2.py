"""Benchmark E2 (figure) — Fig. 2: SimRank score densities."""

from conftest import run_once

from repro.experiments import run_experiment


def test_bench_fig2_score_densities(benchmark):
    result = run_once(benchmark, run_experiment, "fig2", datasets=("texas",), scale_factor=1.0, bins=20, print_result=False)
    histogram = result.histograms["texas"]
    centres, density = histogram["intra"]
    assert len(centres) == 20
    assert density.min() >= 0.0
