"""Benchmark E9 — Table VIII: SIGMA / GloGNN component ablation."""

from conftest import BENCH_CONFIG, run_once

from repro.experiments import run_experiment


def test_bench_table8_ablation(benchmark):
    result = run_once(benchmark, run_experiment, "table8", datasets=("arxiv-year",),
                      num_repeats=1, scale_factor=0.5, config=BENCH_CONFIG, seed=0, print_result=False)
    assert "sigma" in result.accuracies and "sigma w/o S" in result.accuracies
    # Removing the adjacency embedding hurts most, as in the paper.
    drop_without_a = result.average_drop("sigma w/o A", "sigma")
    drop_without_s = result.average_drop("sigma w/o S", "sigma")
    assert drop_without_a >= -0.05
    assert drop_without_s >= -0.05
