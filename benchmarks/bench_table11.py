"""Benchmark E13 — Table XI: iterative SIGMA vs iterative GCN."""

from conftest import BENCH_CONFIG, run_once

from repro.experiments import run_experiment


def test_bench_table11_iterative(benchmark):
    result = run_once(benchmark, run_experiment, "table11", datasets=("arxiv-year",), layers=(1, 2),
                      num_repeats=1, scale_factor=0.5, config=BENCH_CONFIG, seed=0, print_result=False)
    assert set(result.accuracies) == {"gcn-1", "sigma-1", "gcn-2", "sigma-2"}
    # SimRank-rewired propagation beats plain GCN on the heterophilous graph.
    assert result.sigma_beats_gcn_everywhere(depth=1)
