"""Benchmark E14 — Table III: aggregation complexity comparison."""

from conftest import run_once

from repro.experiments import run_experiment


def test_bench_table3_complexity(benchmark):
    result = run_once(benchmark, run_experiment, "table3", "pokec", scale_factor=0.25, print_result=False)
    models = [entry.model for entry in result.entries]
    assert "SIGMA" in models and "GloGNN" in models
    # SIGMA's O(k n f) aggregation is the cheapest once the graph is large.
    assert result.cheapest_model() == "SIGMA"
