"""Benchmark E14 — Table III: aggregation complexity comparison."""

from conftest import run_once

from repro.experiments.table3_complexity import run


def test_bench_table3_complexity(benchmark):
    result = run_once(benchmark, run, "pokec", scale_factor=0.25)
    models = [entry.model for entry in result.entries]
    assert "SIGMA" in models and "GloGNN" in models
    # SIGMA's O(k n f) aggregation is the cheapest once the graph is large.
    assert result.cheapest_model() == "SIGMA"
