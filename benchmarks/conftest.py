"""Shared configuration for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures at reduced
scale (smaller synthetic graphs, fewer repeats, shorter training) so the
whole suite completes in minutes on a laptop.  The full-scale artefacts are
produced by ``repro-experiment <id>`` instead.
"""

from __future__ import annotations

import pytest

from repro import TrainConfig

# Training configuration shared by all benchmarks: short but long enough for
# the relative ordering between models to emerge.
BENCH_CONFIG = TrainConfig(
    learning_rate=0.01,
    weight_decay=1e-3,
    max_epochs=40,
    patience=20,
    track_test_history=False,
)

# Node-count multiplier applied to the synthetic benchmarks.
BENCH_SCALE = 0.25


@pytest.fixture(scope="session")
def bench_config() -> TrainConfig:
    return BENCH_CONFIG


@pytest.fixture(scope="session")
def bench_scale() -> float:
    return BENCH_SCALE


def run_once(benchmark, function, *args, **kwargs):
    """Run ``function`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
