"""CI assertion: the disabled telemetry path is effectively free.

The whole telemetry design rests on one promise — an instrumented layer
given no handle (or a disabled one) pays nothing measurable: entering
the no-op tracer's span is two attribute lookups and no allocation, no
clock read.  This script measures that promise directly and fails CI's
perf-gate job when it breaks, e.g. if someone "simplifies" ``NullTracer``
into allocating real spans or reading ``perf_counter``.

Two measurements over ``--iterations`` loop bodies:

* **baseline** — the bare loop (a call to a trivial function, so the
  loop body is comparable work);
* **noop span** — the same loop with the body wrapped in
  ``NULL_TRACER.span(...)`` as every instrumented call site does.

The gate fails when the per-iteration overhead (noop − baseline)
exceeds ``--max-overhead-ns`` (default 2000 ns — a deliberately huge
ceiling: the real cost is tens of nanoseconds, but CI machines are
noisy and the gate must only catch order-of-magnitude breakage, never
flake on scheduler jitter).  The measurement is the best of
``--repeats`` runs, the standard ``timeit`` discipline for noisy boxes.

Exit codes: ``0`` pass, ``1`` overhead above the ceiling, ``2`` the
telemetry package is not importable (the gate is run with
``PYTHONPATH=src``).

Usage
-----
``PYTHONPATH=src python benchmarks/check_telemetry_overhead.py``
``... --iterations 200000 --max-overhead-ns 500``
"""

from __future__ import annotations

import argparse
import sys
from time import perf_counter


def _work(value: int) -> int:
    """A trivial but non-empty loop body (keeps both loops comparable)."""
    return value + 1


def _time_baseline(iterations: int) -> float:
    start = perf_counter()
    value = 0
    for _ in range(iterations):
        value = _work(value)
    return perf_counter() - start


def _time_noop_span(iterations: int, tracer: object) -> float:
    span = tracer.span  # type: ignore[attr-defined]
    start = perf_counter()
    value = 0
    for _ in range(iterations):
        with span("bench.noop"):
            value = _work(value)
    return perf_counter() - start


def measure(iterations: int, repeats: int) -> tuple[float, float]:
    """Best-of-``repeats`` per-iteration seconds: (baseline, noop span)."""
    from repro.telemetry import NULL_TRACER

    baseline = min(_time_baseline(iterations) for _ in range(repeats))
    noop = min(_time_noop_span(iterations, NULL_TRACER)
               for _ in range(repeats))
    return baseline / iterations, noop / iterations


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Assert the no-op telemetry span is effectively free.")
    parser.add_argument("--iterations", type=int, default=100_000,
                        help="loop iterations per measurement "
                             "(default 100000)")
    parser.add_argument("--repeats", type=int, default=5,
                        help="measurement repeats; the best is judged "
                             "(default 5)")
    parser.add_argument("--max-overhead-ns", type=float, default=2000.0,
                        help="per-iteration overhead ceiling in "
                             "nanoseconds (default 2000)")
    args = parser.parse_args(argv)
    if args.iterations < 1 or args.repeats < 1:
        print("error: --iterations and --repeats must be positive")
        return 2

    try:
        baseline, noop = measure(args.iterations, args.repeats)
    except ImportError as error:
        print(f"error: cannot import repro.telemetry ({error}); "
              f"run with PYTHONPATH=src")
        return 2

    overhead_ns = (noop - baseline) * 1e9
    print(f"baseline        : {baseline * 1e9:8.1f} ns/iter")
    print(f"noop span       : {noop * 1e9:8.1f} ns/iter")
    print(f"overhead        : {overhead_ns:8.1f} ns/iter "
          f"(ceiling {args.max_overhead_ns:.0f})")
    if overhead_ns > args.max_overhead_ns:
        print("FAIL: the disabled telemetry path is no longer free — "
              "check NullTracer/NullSpan for allocations or clock reads")
        return 1
    print("OK: disabled-telemetry overhead within the ceiling")
    return 0


if __name__ == "__main__":
    sys.exit(main())
