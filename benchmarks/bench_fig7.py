"""Benchmark E8 — Fig. 7: accuracy/runtime trade-off over the top-k scheme."""

from conftest import BENCH_CONFIG, run_once

from repro.experiments import run_experiment


def test_bench_fig7_topk_tradeoff(benchmark):
    result = run_once(benchmark, run_experiment, "fig7", "pokec", top_ks=(4, 16, 64),
                      num_repeats=1, scale_factor=0.25, config=BENCH_CONFIG, seed=0, print_result=False)
    assert len(result.points) == 3
    ks = [k for k, _ in result.accuracy_series()]
    assert ks == [4, 16, 64]
    assert result.saturation_k() in ks
