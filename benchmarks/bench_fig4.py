"""Benchmark E5 — Fig. 4: convergence of SIGMA vs leading baselines."""

from conftest import BENCH_CONFIG, run_once

from repro.experiments import run_experiment


def test_bench_fig4_convergence(benchmark):
    result = run_once(benchmark, run_experiment, "fig4", datasets=("penn94",),
                      models=("linkx", "glognn", "sigma"),
                      scale_factor=0.5, config=BENCH_CONFIG, seed=0, print_result=False)
    assert len(result.curves) == 3
    for curve in result.curves:
        assert curve.times.size == curve.accuracies.size > 0
        # Curves are monotone in time by construction.
        assert (curve.times[1:] >= curve.times[:-1]).all()
