"""Benchmark: dict vs vectorized vs sharded LocalPush backends (Algorithm 1).

Times all three engines on a synthetic pokec-style graph, checks they agree
within ``ε`` (the equivalence criterion of the test suite), and appends the
result to ``BENCH_localpush.json`` at the repo root so future PRs can track
the precompute-speed trajectory.  The JSON file is an append-only list of
run records; each record carries per-backend timings plus the sharded
engine's ``num_workers`` (the sharded result is bit-identical for every
worker count, so the knob is pure throughput).

Usage
-----
``PYTHONPATH=src python benchmarks/bench_localpush.py``            full run (5k nodes)
``PYTHONPATH=src python benchmarks/bench_localpush.py --smoke``    quick smoke (600 nodes)
``... --nodes 2000 --epsilon 0.05 --workers 8 --output /tmp/b.json``  custom

Both modes exercise every backend, sharded included.  The full run
reproduces the acceptance bar of the vectorized-engine PR (≥ 10× speedup
over the dict reference on a 5k-node graph at ε = 0.1) and records how the
sharded engine compares at the same size.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

import numpy as np

from repro.datasets.synthetic import SyntheticGraphConfig, generate_synthetic_graph
from repro.simrank.localpush import localpush_simrank
from repro.simrank.sharded import default_num_workers
from repro.utils.timer import Timer

DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_localpush.json"

BACKENDS = ("dict", "vectorized", "sharded")


def build_graph(num_nodes: int, *, average_degree: float, seed: int):
    config = SyntheticGraphConfig(
        num_nodes=num_nodes, num_classes=2, num_features=8,
        average_degree=average_degree, homophily=0.44,
        name=f"bench-localpush-{num_nodes}")
    return generate_synthetic_graph(config, seed=seed)


def time_backend(graph, backend: str, *, epsilon: float, decay: float,
                 num_workers: int, stream_top_k: int | None = None) -> dict:
    timer = Timer()
    with timer:
        result = localpush_simrank(graph, epsilon=epsilon, decay=decay,
                                   prune=False, backend=backend,
                                   num_workers=num_workers,
                                   stream_top_k=stream_top_k)
    record = {
        "backend": backend,
        "seconds": timer.elapsed,
        "num_pushes": result.num_pushes,
        "nnz": int(result.matrix.nnz),
        "matrix": result.matrix,
    }
    if backend == "sharded":
        record["num_workers"] = result.num_workers
        record["num_shards"] = result.num_shards
    if stream_top_k is not None:
        record["stream_top_k"] = stream_top_k
    return record


def load_history(path: Path) -> list:
    """Existing benchmark records; a legacy single-record file is wrapped."""
    if not path.exists():
        return []
    existing = json.loads(path.read_text())
    return existing if isinstance(existing, list) else [existing]


def run(*, num_nodes: int, average_degree: float, epsilon: float, decay: float,
        seed: int, smoke: bool, num_workers: int,
        stream_top_k: int = 32) -> dict:
    graph = build_graph(num_nodes, average_degree=average_degree, seed=seed)
    print(f"graph: {graph.num_nodes} nodes, {graph.num_edges} edges, "
          f"epsilon={epsilon}, decay={decay}, workers={num_workers}")

    records = {}
    for backend in ("vectorized", "sharded", "dict"):
        record = time_backend(graph, backend, epsilon=epsilon, decay=decay,
                              num_workers=num_workers)
        records[backend] = record
        extra = (f", shards={record['num_shards']}"
                 if backend == "sharded" else "")
        print(f"  {backend:>10}: {record['seconds']:8.3f}s "
              f"({record['num_pushes']} pushes, nnz={record['nnz']}{extra})")

    # The operator pipeline always streams top-k through the sharded engine
    # (simrank_operator passes stream_top_k=top_k), so the tracked record
    # must include what model precompute actually pays per round.
    streamed = time_backend(graph, "sharded", epsilon=epsilon, decay=decay,
                            num_workers=num_workers,
                            stream_top_k=stream_top_k)
    print(f"  {'sharded+topk':>12}: {streamed['seconds']:8.3f}s "
          f"(stream_top_k={stream_top_k}, nnz={streamed['nnz']})")

    dict_seconds = records["dict"]["seconds"]
    backends_out = {}
    within_epsilon = True
    for backend in BACKENDS:
        record = records[backend]
        entry = {
            "seconds": round(record["seconds"], 4),
            "num_pushes": record["num_pushes"],
            "nnz": record["nnz"],
        }
        if backend != "dict":
            diff = records["dict"]["matrix"] - record["matrix"]
            max_abs_diff = float(np.abs(diff.data).max()) if diff.nnz else 0.0
            entry["max_abs_diff_vs_dict"] = round(max_abs_diff, 6)
            entry["speedup_vs_dict"] = (round(dict_seconds / record["seconds"], 2)
                                        if record["seconds"] > 0 else float("inf"))
            within_epsilon = within_epsilon and max_abs_diff < epsilon
            print(f"  {backend:>10}: speedup {entry['speedup_vs_dict']}x, "
                  f"max|Ŝ_dict − Ŝ| = {max_abs_diff:.5f} (bound ε = {epsilon})")
        if backend == "sharded":
            entry["num_workers"] = record["num_workers"]
            entry["num_shards"] = record["num_shards"]
        backends_out[backend] = entry

    backends_out["sharded_streamed"] = {
        "seconds": round(streamed["seconds"], 4),
        "num_pushes": streamed["num_pushes"],
        "nnz": streamed["nnz"],
        "num_workers": streamed["num_workers"],
        "num_shards": streamed["num_shards"],
        "stream_top_k": streamed["stream_top_k"],
    }

    return {
        "benchmark": "localpush_backends",
        "mode": "smoke" if smoke else "full",
        "num_nodes": graph.num_nodes,
        "num_edges": graph.num_edges,
        "epsilon": epsilon,
        "decay": decay,
        "seed": seed,
        "num_workers": num_workers,
        "backends": backends_out,
        "within_epsilon": bool(within_epsilon),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="quick 600-node run instead of the full 5k-node one")
    parser.add_argument("--nodes", type=int, default=None,
                        help="node count override (default: 5000, or 600 with --smoke)")
    parser.add_argument("--degree", type=float, default=9.0,
                        help="target average degree (pokec-like default: 9)")
    parser.add_argument("--epsilon", type=float, default=0.1,
                        help="LocalPush error threshold ε")
    parser.add_argument("--decay", type=float, default=0.6, help="decay factor c")
    parser.add_argument("--seed", type=int, default=0, help="graph seed")
    parser.add_argument("--workers", type=int, default=None,
                        help="sharded-engine worker pool size "
                             "(default: min(4, cpu count))")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help="benchmark history JSON to append to "
                             "(default: BENCH_localpush.json at the repo root)")
    args = parser.parse_args(argv)

    num_nodes = args.nodes if args.nodes is not None else (600 if args.smoke else 5000)
    num_workers = args.workers if args.workers is not None else default_num_workers()
    record = run(num_nodes=num_nodes, average_degree=args.degree,
                 epsilon=args.epsilon, decay=args.decay, seed=args.seed,
                 smoke=args.smoke, num_workers=num_workers)
    history = load_history(args.output)
    history.append(record)
    args.output.write_text(json.dumps(history, indent=2) + "\n")
    print(f"appended record #{len(history)} to {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
