"""Benchmark: dict vs vectorized LocalPush backends (Algorithm 1).

Times both engines on a synthetic pokec-style graph, checks they agree
within ``ε`` (the equivalence criterion of the test suite), and records
the result to ``BENCH_localpush.json`` at the repo root so future PRs can
track the precompute-speed trajectory.

Usage
-----
``PYTHONPATH=src python benchmarks/bench_localpush.py``            full run (5k nodes)
``PYTHONPATH=src python benchmarks/bench_localpush.py --smoke``    quick smoke (600 nodes)
``... --nodes 2000 --epsilon 0.05 --output /tmp/bench.json``       custom

The full run reproduces the acceptance bar of the vectorized-engine PR:
≥ 10× speedup over the dict reference on a 5k-node graph at ε = 0.1.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

import numpy as np

from repro.datasets.synthetic import SyntheticGraphConfig, generate_synthetic_graph
from repro.simrank.localpush import localpush_simrank
from repro.utils.timer import Timer

DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_localpush.json"


def build_graph(num_nodes: int, *, average_degree: float, seed: int):
    config = SyntheticGraphConfig(
        num_nodes=num_nodes, num_classes=2, num_features=8,
        average_degree=average_degree, homophily=0.44,
        name=f"bench-localpush-{num_nodes}")
    return generate_synthetic_graph(config, seed=seed)


def time_backend(graph, backend: str, *, epsilon: float, decay: float) -> dict:
    timer = Timer()
    with timer:
        result = localpush_simrank(graph, epsilon=epsilon, decay=decay,
                                   prune=False, backend=backend)
    return {
        "backend": backend,
        "seconds": timer.elapsed,
        "num_pushes": result.num_pushes,
        "nnz": int(result.matrix.nnz),
        "matrix": result.matrix,
    }


def run(*, num_nodes: int, average_degree: float, epsilon: float, decay: float,
        seed: int, smoke: bool) -> dict:
    graph = build_graph(num_nodes, average_degree=average_degree, seed=seed)
    print(f"graph: {graph.num_nodes} nodes, {graph.num_edges} edges, "
          f"epsilon={epsilon}, decay={decay}")

    records = {}
    for backend in ("vectorized", "dict"):
        record = time_backend(graph, backend, epsilon=epsilon, decay=decay)
        records[backend] = record
        print(f"  {backend:>10}: {record['seconds']:8.3f}s "
              f"({record['num_pushes']} pushes, nnz={record['nnz']})")

    diff = records["dict"]["matrix"] - records["vectorized"]["matrix"]
    max_abs_diff = float(np.abs(diff.data).max()) if diff.nnz else 0.0
    dict_seconds = records["dict"]["seconds"]
    vec_seconds = records["vectorized"]["seconds"]
    speedup = dict_seconds / vec_seconds if vec_seconds > 0 else float("inf")
    print(f"  speedup: {speedup:.1f}x, max|Ŝ_dict − Ŝ_vec| = {max_abs_diff:.5f} "
          f"(bound ε = {epsilon})")

    return {
        "benchmark": "localpush_backends",
        "mode": "smoke" if smoke else "full",
        "num_nodes": graph.num_nodes,
        "num_edges": graph.num_edges,
        "epsilon": epsilon,
        "decay": decay,
        "seed": seed,
        "dict_seconds": round(dict_seconds, 4),
        "vectorized_seconds": round(vec_seconds, 4),
        "speedup": round(speedup, 2),
        "dict_pushes": records["dict"]["num_pushes"],
        "vectorized_pushes": records["vectorized"]["num_pushes"],
        "max_abs_diff": round(max_abs_diff, 6),
        "within_epsilon": bool(max_abs_diff < epsilon),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="quick 600-node run instead of the full 5k-node one")
    parser.add_argument("--nodes", type=int, default=None,
                        help="node count override (default: 5000, or 600 with --smoke)")
    parser.add_argument("--degree", type=float, default=9.0,
                        help="target average degree (pokec-like default: 9)")
    parser.add_argument("--epsilon", type=float, default=0.1,
                        help="LocalPush error threshold ε")
    parser.add_argument("--decay", type=float, default=0.6, help="decay factor c")
    parser.add_argument("--seed", type=int, default=0, help="graph seed")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help="where to write the JSON record "
                             "(default: BENCH_localpush.json at the repo root)")
    args = parser.parse_args(argv)

    num_nodes = args.nodes if args.nodes is not None else (600 if args.smoke else 5000)
    record = run(num_nodes=num_nodes, average_degree=args.degree,
                 epsilon=args.epsilon, decay=args.decay, seed=args.seed,
                 smoke=args.smoke)
    args.output.write_text(json.dumps(record, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
