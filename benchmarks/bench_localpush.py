"""Benchmark: LocalPush engine executors (serial/thread/process) vs the dict oracle.

Times the dict reference engine and the unified core under every executor
on a synthetic pokec-style graph, checks the core agrees with the oracle
within ``ε`` (the equivalence criterion of the test suite) *and* that all
executors are bit-identical to each other, then appends the result to
``BENCH_localpush.json`` at the repo root so future PRs can track the
precompute-speed trajectory.

The JSON file is an append-only list of run records.  Each new record is
validated against :data:`RECORD_SCHEMA` before being appended and carries
``cpu_count`` alongside ``num_workers`` — process-pool speedups are only
interpretable relative to the cores the machine actually had.

Usage
-----
``PYTHONPATH=src python benchmarks/bench_localpush.py``            full run (5k nodes)
``PYTHONPATH=src python benchmarks/bench_localpush.py --smoke``    quick smoke (600 nodes)
``... --nodes 2000 --epsilon 0.05 --workers 8 --output /tmp/b.json``  custom

Both modes exercise the dict oracle and every executor.  The full run
reproduces the acceptance bar of the unified-core PR: per-executor
speedups over the serial executor on a ≥ 5k-node graph at ε = 0.1
(``speedup_vs_serial`` — > 1 for the process executor requires actual
multi-core hardware; see ``cpu_count`` in the record).
"""

from __future__ import annotations

# repro-lint: disable-file=R8 — this micro-benchmark measures the engine
# internals themselves (executor pool, dict oracle, synthetic generator),
# so importing them is its purpose, not an API leak.
import argparse
import json
import os
from pathlib import Path

import numpy as np

from repro.config import SimRankConfig
from repro.datasets.synthetic import SyntheticGraphConfig, generate_synthetic_graph
from repro.errors import ConfigError
from repro.simrank.engine import EXECUTORS, default_num_workers
from repro.simrank.localpush import localpush_simrank
from repro.utils.timer import Timer

DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_localpush.json"

#: Top-level schema of one appended benchmark record: required key → type.
#: ``validate_record`` enforces it (with exact types — ``bool`` is not an
#: acceptable ``int``) before anything is written to the history file.
#: ``config`` is the resolved ``SimRankConfig.to_dict()`` of the run and
#: must round-trip through ``SimRankConfig.from_dict``.
RECORD_SCHEMA = {
    "benchmark": str,
    "mode": str,
    "num_nodes": int,
    "num_edges": int,
    "epsilon": float,
    "decay": float,
    "seed": int,
    "cpu_count": int,
    "num_workers": int,
    "config": dict,
    "backends": dict,
    "executors": dict,
    "within_epsilon": bool,
}

#: Schema of each per-executor entry inside ``record["executors"]``.
EXECUTOR_SCHEMA = {
    "seconds": float,
    "num_pushes": int,
    "nnz": int,
}

#: Extra keys required of the non-serial executor entries.
POOLED_EXECUTOR_SCHEMA = {
    "num_workers": int,
    "speedup_vs_serial": float,
    "bit_identical_to_serial": bool,
}


class RecordSchemaError(ValueError):
    """The benchmark record does not match :data:`RECORD_SCHEMA`."""


def _check_fields(mapping: dict, schema: dict, context: str, problems: list) -> None:
    for field, expected in schema.items():
        if field not in mapping:
            problems.append(f"{context}: missing required key {field!r}")
            continue
        value = mapping[field]
        if expected is float:
            ok = type(value) in (int, float) and type(value) is not bool
        else:
            ok = type(value) is expected
        if not ok:
            problems.append(
                f"{context}.{field}: expected {expected.__name__}, "
                f"got {type(value).__name__} ({value!r})")


def validate_record(record: dict) -> dict:
    """Validate a benchmark record against the schema; raise on mismatch."""
    problems: list = []
    _check_fields(record, RECORD_SCHEMA, "record", problems)
    executors = record.get("executors")
    if isinstance(executors, dict):
        for name in EXECUTORS:
            if name not in executors:
                problems.append(f"record.executors: missing executor {name!r}")
        for name, entry in executors.items():
            if not isinstance(entry, dict):
                problems.append(f"record.executors.{name}: expected dict")
                continue
            _check_fields(entry, EXECUTOR_SCHEMA,
                          f"record.executors.{name}", problems)
            if name in ("thread", "process"):
                _check_fields(entry, POOLED_EXECUTOR_SCHEMA,
                              f"record.executors.{name}", problems)
    backends = record.get("backends")
    if isinstance(backends, dict) and "dict" not in backends:
        problems.append("record.backends: missing the dict oracle entry")
    config = record.get("config")
    if type(config) is dict:
        try:
            SimRankConfig.from_dict(config)
        except ConfigError as error:
            problems.append(f"record.config: not a valid SimRankConfig "
                            f"serialisation ({error})")
    if problems:
        raise RecordSchemaError(
            "benchmark record failed schema validation:\n  "
            + "\n  ".join(problems))
    return record


def build_graph(num_nodes: int, *, average_degree: float, seed: int):
    config = SyntheticGraphConfig(
        num_nodes=num_nodes, num_classes=2, num_features=8,
        average_degree=average_degree, homophily=0.44,
        name=f"bench-localpush-{num_nodes}")
    return generate_synthetic_graph(config, seed=seed)


def time_plan(graph, *, backend: str = "auto", executor: str | None = None,
              epsilon: float, decay: float, num_workers: int,
              stream_top_k: int | None = None) -> dict:
    timer = Timer()
    with timer:
        result = localpush_simrank(graph, epsilon=epsilon, decay=decay,
                                   prune=False, backend=backend,
                                   executor=executor,
                                   num_workers=num_workers,
                                   stream_top_k=stream_top_k)
    record = {
        "seconds": timer.elapsed,
        "num_pushes": result.num_pushes,
        "nnz": int(result.matrix.nnz),
        "matrix": result.matrix,
    }
    if result.num_workers is not None:
        record["num_workers"] = result.num_workers
    if stream_top_k is not None:
        record["stream_top_k"] = stream_top_k
    return record


def load_history(path: Path) -> list:
    """Existing benchmark records; a legacy single-record file is wrapped."""
    if not path.exists():
        return []
    existing = json.loads(path.read_text())
    return existing if isinstance(existing, list) else [existing]


def run(*, num_nodes: int, average_degree: float, epsilon: float, decay: float,
        seed: int, smoke: bool, num_workers: int,
        stream_top_k: int = 32) -> dict:
    graph = build_graph(num_nodes, average_degree=average_degree, seed=seed)
    cpu_count = os.cpu_count() or 1
    print(f"graph: {graph.num_nodes} nodes, {graph.num_edges} edges, "
          f"epsilon={epsilon}, decay={decay}, workers={num_workers}, "
          f"cpus={cpu_count}")

    # Dict oracle first: the within-ε equivalence reference.
    oracle = time_plan(graph, backend="dict", epsilon=epsilon, decay=decay,
                       num_workers=num_workers)
    print(f"  {'dict':>10}: {oracle['seconds']:8.3f}s "
          f"({oracle['num_pushes']} pushes, nnz={oracle['nnz']})")

    # The unified core under every executor, same worker count.
    runs = {}
    for executor in EXECUTORS:
        record = time_plan(graph, executor=executor, epsilon=epsilon,
                           decay=decay, num_workers=num_workers)
        runs[executor] = record
        workers = record.get("num_workers")
        extra = f", workers={workers}" if workers is not None else ""
        print(f"  {executor:>10}: {record['seconds']:8.3f}s "
              f"({record['num_pushes']} pushes, nnz={record['nnz']}{extra})")

    # The operator pipeline always streams top-k through the core
    # (simrank_operator passes stream_top_k=top_k), so the tracked record
    # must include what model precompute actually pays per round.
    streamed = time_plan(graph, executor="serial", epsilon=epsilon,
                         decay=decay, num_workers=num_workers,
                         stream_top_k=stream_top_k)
    print(f"  {'serial+topk':>11}: {streamed['seconds']:8.3f}s "
          f"(stream_top_k={stream_top_k}, nnz={streamed['nnz']})")

    serial = runs["serial"]
    serial_matrix = serial["matrix"]
    diff = oracle["matrix"] - serial_matrix
    max_abs_diff = float(np.abs(diff.data).max()) if diff.nnz else 0.0
    within_epsilon = max_abs_diff < epsilon
    print(f"  core vs dict: max|Ŝ_dict − Ŝ| = {max_abs_diff:.5f} "
          f"(bound ε = {epsilon})")

    executors_out = {}
    for executor, record in runs.items():
        entry = {
            "seconds": round(record["seconds"], 4),
            "num_pushes": record["num_pushes"],
            "nnz": record["nnz"],
        }
        if executor != "serial":
            matrix = record["matrix"]
            identical = (
                np.array_equal(serial_matrix.indptr, matrix.indptr)
                and np.array_equal(serial_matrix.indices, matrix.indices)
                and np.array_equal(serial_matrix.data, matrix.data))
            entry["num_workers"] = int(record.get("num_workers") or 1)
            entry["speedup_vs_serial"] = (
                round(serial["seconds"] / record["seconds"], 2)
                if record["seconds"] > 0 else float("inf"))
            entry["bit_identical_to_serial"] = bool(identical)
            print(f"  {executor:>10}: speedup vs serial "
                  f"{entry['speedup_vs_serial']}x, bit-identical={identical}")
        executors_out[executor] = entry
    executors_out["serial_streamed"] = {
        "seconds": round(streamed["seconds"], 4),
        "num_pushes": streamed["num_pushes"],
        "nnz": streamed["nnz"],
        "stream_top_k": streamed["stream_top_k"],
    }

    dict_seconds = oracle["seconds"]
    backends_out = {
        "dict": {
            "seconds": round(dict_seconds, 4),
            "num_pushes": oracle["num_pushes"],
            "nnz": oracle["nnz"],
        },
        "core": {
            "seconds": round(serial["seconds"], 4),
            "num_pushes": serial["num_pushes"],
            "nnz": serial["nnz"],
            "max_abs_diff_vs_dict": round(max_abs_diff, 6),
            "speedup_vs_dict": (round(dict_seconds / serial["seconds"], 2)
                                if serial["seconds"] > 0 else float("inf")),
        },
    }
    print(f"  {'core':>10}: speedup {backends_out['core']['speedup_vs_dict']}x "
          "over the dict oracle")

    # The resolved configuration of the headline executor-sweep runs
    # (LocalPush, full estimate, no pruning) — embedded so the history is
    # self-describing.  The extra `serial_streamed` measurement differs
    # only in its streaming prune and records its own `stream_top_k`.
    config = SimRankConfig(method="localpush", epsilon=epsilon, decay=decay,
                           workers=num_workers)

    return {
        "benchmark": "localpush_executors",
        "mode": "smoke" if smoke else "full",
        "num_nodes": graph.num_nodes,
        "num_edges": graph.num_edges,
        "epsilon": epsilon,
        "decay": decay,
        "seed": seed,
        "cpu_count": cpu_count,
        "num_workers": num_workers,
        "config": config.to_dict(),
        "backends": backends_out,
        "executors": executors_out,
        "within_epsilon": bool(within_epsilon),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="quick 600-node run instead of the full 5k-node one")
    parser.add_argument("--nodes", type=int, default=None,
                        help="node count override (default: 5000, or 600 with --smoke)")
    parser.add_argument("--degree", type=float, default=9.0,
                        help="target average degree (pokec-like default: 9)")
    parser.add_argument("--epsilon", type=float, default=0.1,
                        help="LocalPush error threshold ε")
    parser.add_argument("--decay", type=float, default=0.6, help="decay factor c")
    parser.add_argument("--seed", type=int, default=0, help="graph seed")
    parser.add_argument("--workers", type=int, default=None,
                        help="thread/process executor pool size "
                             "(default: min(4, cpu count))")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help="benchmark history JSON to append to "
                             "(default: BENCH_localpush.json at the repo root)")
    args = parser.parse_args(argv)

    num_nodes = args.nodes if args.nodes is not None else (600 if args.smoke else 5000)
    num_workers = args.workers if args.workers is not None else default_num_workers()
    record = run(num_nodes=num_nodes, average_degree=args.degree,
                 epsilon=args.epsilon, decay=args.decay, seed=args.seed,
                 smoke=args.smoke, num_workers=num_workers)
    validate_record(record)
    history = load_history(args.output)
    history.append(record)
    args.output.write_text(json.dumps(history, indent=2) + "\n")
    print(f"appended record #{len(history)} to {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
