"""Benchmark: LocalPush engine executors (serial/thread/process) vs the dict oracle.

Times the dict reference engine and the unified core under every executor
on a synthetic pokec-style graph, checks the core agrees with the oracle
within ``ε`` (the equivalence criterion of the test suite) *and* that all
executors are bit-identical to each other, then appends the result to
``BENCH_localpush.json`` at the repo root so future PRs can track the
precompute-speed trajectory.

The JSON file is an append-only list of run records.  Each new record is
validated against :data:`RECORD_SCHEMA` before being appended and carries
``cpu_count`` alongside ``num_workers`` — process-pool speedups are only
interpretable relative to the cores the machine actually had.

Usage
-----
``PYTHONPATH=src python benchmarks/bench_localpush.py``            full run (5k nodes)
``PYTHONPATH=src python benchmarks/bench_localpush.py --smoke``    quick smoke (600 nodes)
``... --nodes 2000 --epsilon 0.05 --workers 8 --output /tmp/b.json``  custom
``... --profile``                                       print the phase table too

Both modes exercise the dict oracle and every executor.  The full run
reproduces the acceptance bar of the unified-core PR: per-executor
speedups over the serial executor on a ≥ 5k-node graph at ε = 0.1
(``speedup_vs_serial`` — > 1 for the process executor requires actual
multi-core hardware; see ``cpu_count`` in the record).

Every record additionally carries three sections introduced with the
kernel layer:

* ``kernels`` — the scipy-vs-fused comparison at the same node count but
  a *kernel-stress* ε (default ``ε/10``, recorded in the section): at
  the headline ε = 0.1 the rounds are single-shard and matmul-bound, so
  the merge-path restructuring the fused kernel exists for barely
  registers; the stress ε drives multi-shard rounds where it does.  The
  section records ``speedup_vs_scipy`` and per-executor
  ``bit_identical_to_scipy``.
* ``float32`` — the reduced-precision sweep: fused float32 runs on small
  graphs against the dense ``linearized_simrank`` oracle, with the
  measured max error checked against the adjusted bound
  (:func:`repro.simrank.kernels.float32_error_bound`).
* ``profile`` — the per-phase (frontier/push/merge/prune) seconds of one
  serial core run at the headline ε (``--profile`` prints the table).

``benchmarks/check_perf_gate.py`` consumes this history in CI: it
compares the freshest record's core seconds against the last earlier
record with the same ``cpu_count``/``num_nodes`` shape and fails on a
>30 % core-kernel slowdown.
"""

from __future__ import annotations

# repro-lint: disable-file=R8 — this micro-benchmark measures the engine
# internals themselves (executor pool, dict oracle, synthetic generator),
# so importing them is its purpose, not an API leak.
import argparse
import json
import os
from pathlib import Path

import numpy as np

from repro.config import SimRankConfig
from repro.datasets.synthetic import SyntheticGraphConfig, generate_synthetic_graph
from repro.errors import ConfigError
from repro.simrank.engine import EXECUTORS, default_num_workers, localpush_engine
from repro.simrank.exact import linearized_simrank
from repro.simrank.kernels import PHASES, PhaseProfile, float32_error_bound
from repro.simrank.localpush import localpush_simrank
from repro.telemetry import SpanRecorder, Tracer, TracingPhaseProfile, phase_seconds
from repro.utils.timer import Timer

DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_localpush.json"

#: Top-level schema of one appended benchmark record: required key → type.
#: ``validate_record`` enforces it (with exact types — ``bool`` is not an
#: acceptable ``int``) before anything is written to the history file.
#: ``config`` is the resolved ``SimRankConfig.to_dict()`` of the run and
#: must round-trip through ``SimRankConfig.from_dict``.
RECORD_SCHEMA = {
    "benchmark": str,
    "mode": str,
    "num_nodes": int,
    "num_edges": int,
    "epsilon": float,
    "decay": float,
    "seed": int,
    "cpu_count": int,
    "num_workers": int,
    "config": dict,
    "backends": dict,
    "executors": dict,
    "kernels": dict,
    "float32": dict,
    "profile": dict,
    "within_epsilon": bool,
}

#: Schema of the ``kernels`` comparison section.
KERNELS_SCHEMA = {
    "epsilon": float,
    "scipy": dict,
    "fused": dict,
}

#: Schema of the ``float32`` sweep section.
FLOAT32_SCHEMA = {
    "epsilon": float,
    "decay": float,
    "bound": float,
    "sweeps": list,
}

#: Schema of the ``profile`` phase-breakdown section.
PROFILE_SCHEMA = {
    "kernel": str,
    "executor": str,
    "total_seconds": float,
    "phase_seconds": dict,
}

#: Schema of each per-executor entry inside ``record["executors"]``.
EXECUTOR_SCHEMA = {
    "seconds": float,
    "num_pushes": int,
    "nnz": int,
}

#: Extra keys required of the non-serial executor entries.
POOLED_EXECUTOR_SCHEMA = {
    "num_workers": int,
    "speedup_vs_serial": float,
    "bit_identical_to_serial": bool,
}


class RecordSchemaError(ValueError):
    """The benchmark record does not match :data:`RECORD_SCHEMA`."""


def _check_fields(mapping: dict, schema: dict, context: str, problems: list) -> None:
    for field, expected in schema.items():
        if field not in mapping:
            problems.append(f"{context}: missing required key {field!r}")
            continue
        value = mapping[field]
        if expected is float:
            ok = type(value) in (int, float) and type(value) is not bool
        else:
            ok = type(value) is expected
        if not ok:
            problems.append(
                f"{context}.{field}: expected {expected.__name__}, "
                f"got {type(value).__name__} ({value!r})")


def validate_record(record: dict) -> dict:
    """Validate a benchmark record against the schema; raise on mismatch."""
    problems: list = []
    _check_fields(record, RECORD_SCHEMA, "record", problems)
    executors = record.get("executors")
    if isinstance(executors, dict):
        for name in EXECUTORS:
            if name not in executors:
                problems.append(f"record.executors: missing executor {name!r}")
        for name, entry in executors.items():
            if not isinstance(entry, dict):
                problems.append(f"record.executors.{name}: expected dict")
                continue
            _check_fields(entry, EXECUTOR_SCHEMA,
                          f"record.executors.{name}", problems)
            if name in ("thread", "process"):
                _check_fields(entry, POOLED_EXECUTOR_SCHEMA,
                              f"record.executors.{name}", problems)
    backends = record.get("backends")
    if isinstance(backends, dict) and "dict" not in backends:
        problems.append("record.backends: missing the dict oracle entry")
    kernels = record.get("kernels")
    if isinstance(kernels, dict):
        _check_fields(kernels, KERNELS_SCHEMA, "record.kernels", problems)
        fused = kernels.get("fused")
        if isinstance(fused, dict):
            identical = fused.get("bit_identical_to_scipy")
            if not isinstance(identical, dict) or \
                    set(identical) != set(EXECUTORS):
                problems.append(
                    "record.kernels.fused.bit_identical_to_scipy: expected "
                    f"one bool per executor {tuple(EXECUTORS)}")
    f32 = record.get("float32")
    if isinstance(f32, dict):
        _check_fields(f32, FLOAT32_SCHEMA, "record.float32", problems)
    profile = record.get("profile")
    if isinstance(profile, dict):
        _check_fields(profile, PROFILE_SCHEMA, "record.profile", problems)
    config = record.get("config")
    if type(config) is dict:
        try:
            SimRankConfig.from_dict(config)
        except ConfigError as error:
            problems.append(f"record.config: not a valid SimRankConfig "
                            f"serialisation ({error})")
    if problems:
        raise RecordSchemaError(
            "benchmark record failed schema validation:\n  "
            + "\n  ".join(problems))
    return record


def build_graph(num_nodes: int, *, average_degree: float, seed: int):
    config = SyntheticGraphConfig(
        num_nodes=num_nodes, num_classes=2, num_features=8,
        average_degree=average_degree, homophily=0.44,
        name=f"bench-localpush-{num_nodes}")
    return generate_synthetic_graph(config, seed=seed)


def time_plan(graph, *, backend: str = "auto", executor: str | None = None,
              epsilon: float, decay: float, num_workers: int,
              stream_top_k: int | None = None) -> dict:
    timer = Timer()
    with timer:
        result = localpush_simrank(graph, epsilon=epsilon, decay=decay,
                                   prune=False, backend=backend,
                                   executor=executor,
                                   num_workers=num_workers,
                                   stream_top_k=stream_top_k)
    record = {
        "seconds": timer.elapsed,
        "num_pushes": result.num_pushes,
        "nnz": int(result.matrix.nnz),
        "matrix": result.matrix,
    }
    if result.num_workers is not None:
        record["num_workers"] = result.num_workers
    if stream_top_k is not None:
        record["stream_top_k"] = stream_top_k
    return record


def _bit_identical(a, b) -> bool:
    return (a.dtype == b.dtype
            and np.array_equal(a.indptr, b.indptr)
            and np.array_equal(a.indices, b.indices)
            and np.array_equal(a.data, b.data))


def time_kernel(graph, *, kernel: str, executor: str, epsilon: float,
                decay: float, num_workers: int, dtype: str = "float64",
                profile: PhaseProfile | None = None) -> dict:
    """One timed unified-core run with an explicit kernel choice."""
    timer = Timer()
    with timer:
        result = localpush_engine(graph, epsilon=epsilon, decay=decay,
                                  prune=False, executor=executor,
                                  num_workers=num_workers, kernel=kernel,
                                  dtype=dtype, profile=profile)
    return {
        "seconds": timer.elapsed,
        "num_pushes": result.num_pushes,
        "nnz": int(result.matrix.nnz),
        "matrix": result.matrix,
        "kernel": result.kernel,
    }


def kernel_comparison(graph, *, epsilon: float, decay: float,
                      num_workers: int) -> dict:
    """The ``kernels`` record section: scipy vs fused at a stress ε.

    Times both kernels on the serial executor and runs the fused kernel
    under every executor to record per-executor bitwise identity with
    the scipy baseline (the guarantee that keeps ``kernel`` out of the
    operator-cache key).
    """
    print(f"  kernel comparison at stress epsilon={epsilon}:")
    scipy_run = time_kernel(graph, kernel="scipy", executor="serial",
                            epsilon=epsilon, decay=decay,
                            num_workers=num_workers)
    print(f"  {'scipy':>10}: {scipy_run['seconds']:8.3f}s "
          f"({scipy_run['num_pushes']} pushes, nnz={scipy_run['nnz']})")
    fused_runs = {}
    identical = {}
    for executor in EXECUTORS:
        fused_runs[executor] = time_kernel(
            graph, kernel="fused", executor=executor, epsilon=epsilon,
            decay=decay, num_workers=num_workers)
        identical[executor] = _bit_identical(scipy_run["matrix"],
                                             fused_runs[executor]["matrix"])
    fused = fused_runs["serial"]
    speedup = (round(scipy_run["seconds"] / fused["seconds"], 2)
               if fused["seconds"] > 0 else float("inf"))
    print(f"  {'fused':>10}: {fused['seconds']:8.3f}s — {speedup}x over "
          f"scipy, bit-identical per executor: {identical}")
    return {
        "epsilon": epsilon,
        "scipy": {
            "seconds": round(scipy_run["seconds"], 4),
            "num_pushes": scipy_run["num_pushes"],
            "nnz": scipy_run["nnz"],
        },
        "fused": {
            "seconds": round(fused["seconds"], 4),
            "num_pushes": fused["num_pushes"],
            "nnz": fused["nnz"],
            "speedup_vs_scipy": speedup,
            "bit_identical_to_scipy": {executor: bool(flag)
                                       for executor, flag in
                                       identical.items()},
        },
    }


def float32_sweep(*, epsilon: float, decay: float, average_degree: float,
                  seed: int, sizes: tuple = (300, 600)) -> dict:
    """The ``float32`` record section: measured error vs the adjusted bound.

    Runs the fused float32 core on small graphs against the dense
    ``linearized_simrank`` oracle (iterated to near machine precision)
    and checks the measured max error against
    :func:`repro.simrank.kernels.float32_error_bound` — the documented
    guarantee of ``dtype="float32"``.  The float64 error is recorded
    alongside so the precision penalty is visible in the history.
    """
    bound = float32_error_bound(epsilon, decay)
    sweeps = []
    for size in sizes:
        graph = build_graph(size, average_degree=average_degree,
                            seed=seed + size)
        exact = linearized_simrank(graph, decay=decay, tolerance=1e-12)
        errors = {}
        for dtype in ("float32", "float64"):
            result = localpush_engine(graph, epsilon=epsilon, decay=decay,
                                      prune=False, absorb_residual=True,
                                      kernel="fused", dtype=dtype)
            dense = result.matrix.toarray().astype(np.float64)
            errors[dtype] = float(np.abs(dense - exact).max())
        sweeps.append({
            "num_nodes": graph.num_nodes,
            "max_abs_err_float32": errors["float32"],
            "max_abs_err_float64": errors["float64"],
            "within_bound": bool(errors["float32"] < bound),
        })
        print(f"  float32 sweep n={graph.num_nodes}: "
              f"err32={errors['float32']:.3e} err64={errors['float64']:.3e} "
              f"bound={bound:.3e} within={sweeps[-1]['within_bound']}")
    return {"epsilon": epsilon, "decay": decay, "bound": bound,
            "sweeps": sweeps}


def profile_breakdown(graph, *, epsilon: float, decay: float,
                      num_workers: int, show: bool) -> dict:
    """The ``profile`` record section: per-phase seconds of one core run.

    Measured through the telemetry span path: the engine runs under a
    :class:`TracingPhaseProfile` (one ``localpush.<phase>`` span per
    phase measurement per round) and the table is
    :func:`repro.telemetry.summary.phase_seconds` over the recorded
    spans — the same aggregation ``repro-trace`` prints, so the
    benchmark and the tracing CLI can never disagree.  The record shape
    (:data:`PROFILE_SCHEMA`) is unchanged from the pre-telemetry
    accumulator.
    """
    recorder = SpanRecorder()
    profile = TracingPhaseProfile(Tracer([recorder]))
    run = time_kernel(graph, kernel="auto", executor="serial",
                      epsilon=epsilon, decay=decay, num_workers=num_workers,
                      profile=profile)
    totals = {phase: 0.0 for phase in PHASES}
    totals.update(phase_seconds(recorder.spans()))
    phases = {phase: round(seconds, 4)
              for phase, seconds in totals.items()}
    if show:
        print(f"  phase breakdown (kernel={run['kernel']}, serial, "
              f"epsilon={epsilon}):")
        for phase, seconds in phases.items():
            share = seconds / run["seconds"] if run["seconds"] > 0 else 0.0
            print(f"  {phase:>10}: {seconds:8.4f}s ({share:5.1%})")
    return {
        "kernel": run["kernel"],
        "executor": "serial",
        "total_seconds": round(run["seconds"], 4),
        "phase_seconds": phases,
    }


def load_history(path: Path) -> list:
    """Existing benchmark records; a legacy single-record file is wrapped."""
    if not path.exists():
        return []
    existing = json.loads(path.read_text())
    return existing if isinstance(existing, list) else [existing]


def run(*, num_nodes: int, average_degree: float, epsilon: float, decay: float,
        seed: int, smoke: bool, num_workers: int, stream_top_k: int = 32,
        kernel_epsilon: float | None = None,
        show_profile: bool = False) -> dict:
    graph = build_graph(num_nodes, average_degree=average_degree, seed=seed)
    cpu_count = os.cpu_count() or 1
    print(f"graph: {graph.num_nodes} nodes, {graph.num_edges} edges, "
          f"epsilon={epsilon}, decay={decay}, workers={num_workers}, "
          f"cpus={cpu_count}")

    # Dict oracle first: the within-ε equivalence reference.
    oracle = time_plan(graph, backend="dict", epsilon=epsilon, decay=decay,
                       num_workers=num_workers)
    print(f"  {'dict':>10}: {oracle['seconds']:8.3f}s "
          f"({oracle['num_pushes']} pushes, nnz={oracle['nnz']})")

    # The unified core under every executor, same worker count.
    runs = {}
    for executor in EXECUTORS:
        record = time_plan(graph, executor=executor, epsilon=epsilon,
                           decay=decay, num_workers=num_workers)
        runs[executor] = record
        workers = record.get("num_workers")
        extra = f", workers={workers}" if workers is not None else ""
        print(f"  {executor:>10}: {record['seconds']:8.3f}s "
              f"({record['num_pushes']} pushes, nnz={record['nnz']}{extra})")

    # The operator pipeline always streams top-k through the core
    # (simrank_operator passes stream_top_k=top_k), so the tracked record
    # must include what model precompute actually pays per round.
    streamed = time_plan(graph, executor="serial", epsilon=epsilon,
                         decay=decay, num_workers=num_workers,
                         stream_top_k=stream_top_k)
    print(f"  {'serial+topk':>11}: {streamed['seconds']:8.3f}s "
          f"(stream_top_k={stream_top_k}, nnz={streamed['nnz']})")

    serial = runs["serial"]
    serial_matrix = serial["matrix"]
    diff = oracle["matrix"] - serial_matrix
    max_abs_diff = float(np.abs(diff.data).max()) if diff.nnz else 0.0
    within_epsilon = max_abs_diff < epsilon
    print(f"  core vs dict: max|Ŝ_dict − Ŝ| = {max_abs_diff:.5f} "
          f"(bound ε = {epsilon})")

    executors_out = {}
    for executor, record in runs.items():
        entry = {
            "seconds": round(record["seconds"], 4),
            "num_pushes": record["num_pushes"],
            "nnz": record["nnz"],
        }
        if executor != "serial":
            matrix = record["matrix"]
            identical = (
                np.array_equal(serial_matrix.indptr, matrix.indptr)
                and np.array_equal(serial_matrix.indices, matrix.indices)
                and np.array_equal(serial_matrix.data, matrix.data))
            entry["num_workers"] = int(record.get("num_workers") or 1)
            entry["speedup_vs_serial"] = (
                round(serial["seconds"] / record["seconds"], 2)
                if record["seconds"] > 0 else float("inf"))
            entry["bit_identical_to_serial"] = bool(identical)
            print(f"  {executor:>10}: speedup vs serial "
                  f"{entry['speedup_vs_serial']}x, bit-identical={identical}")
        executors_out[executor] = entry
    executors_out["serial_streamed"] = {
        "seconds": round(streamed["seconds"], 4),
        "num_pushes": streamed["num_pushes"],
        "nnz": streamed["nnz"],
        "stream_top_k": streamed["stream_top_k"],
    }

    dict_seconds = oracle["seconds"]
    backends_out = {
        "dict": {
            "seconds": round(dict_seconds, 4),
            "num_pushes": oracle["num_pushes"],
            "nnz": oracle["nnz"],
        },
        "core": {
            "seconds": round(serial["seconds"], 4),
            "num_pushes": serial["num_pushes"],
            "nnz": serial["nnz"],
            "max_abs_diff_vs_dict": round(max_abs_diff, 6),
            "speedup_vs_dict": (round(dict_seconds / serial["seconds"], 2)
                                if serial["seconds"] > 0 else float("inf")),
        },
    }
    print(f"  {'core':>10}: speedup {backends_out['core']['speedup_vs_dict']}x "
          "over the dict oracle")

    # Kernel ladder: scipy vs fused at a multi-shard stress ε (at the
    # headline ε the rounds are matmul-bound and single-shard, so the
    # merge-path differences the fused kernel targets barely register).
    stress_epsilon = (kernel_epsilon if kernel_epsilon is not None
                      else epsilon / 10.0)
    kernels_out = kernel_comparison(graph, epsilon=stress_epsilon,
                                    decay=decay, num_workers=num_workers)
    float32_out = float32_sweep(epsilon=epsilon, decay=decay,
                                average_degree=average_degree, seed=seed)
    profile_out = profile_breakdown(graph, epsilon=epsilon, decay=decay,
                                    num_workers=num_workers,
                                    show=show_profile)

    # The resolved configuration of the headline executor-sweep runs
    # (LocalPush, full estimate, no pruning) — embedded so the history is
    # self-describing.  The extra `serial_streamed` measurement differs
    # only in its streaming prune and records its own `stream_top_k`.
    config = SimRankConfig(method="localpush", epsilon=epsilon, decay=decay,
                           workers=num_workers)

    return {
        "benchmark": "localpush_executors",
        "mode": "smoke" if smoke else "full",
        "num_nodes": graph.num_nodes,
        "num_edges": graph.num_edges,
        "epsilon": epsilon,
        "decay": decay,
        "seed": seed,
        "cpu_count": cpu_count,
        "num_workers": num_workers,
        "config": config.to_dict(),
        "backends": backends_out,
        "executors": executors_out,
        "kernels": kernels_out,
        "float32": float32_out,
        "profile": profile_out,
        "within_epsilon": bool(within_epsilon),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="quick 600-node run instead of the full 5k-node one")
    parser.add_argument("--nodes", type=int, default=None,
                        help="node count override (default: 5000, or 600 with --smoke)")
    parser.add_argument("--degree", type=float, default=9.0,
                        help="target average degree (pokec-like default: 9)")
    parser.add_argument("--epsilon", type=float, default=0.1,
                        help="LocalPush error threshold ε")
    parser.add_argument("--decay", type=float, default=0.6, help="decay factor c")
    parser.add_argument("--seed", type=int, default=0, help="graph seed")
    parser.add_argument("--workers", type=int, default=None,
                        help="thread/process executor pool size "
                             "(default: min(4, cpu count))")
    parser.add_argument("--kernel-epsilon", type=float, default=None,
                        help="stress ε of the scipy-vs-fused kernel "
                             "comparison (default: ε/10 — small enough to "
                             "drive multi-shard rounds)")
    parser.add_argument("--profile", action="store_true",
                        help="print the per-phase (frontier/push/merge/"
                             "prune) breakdown of the serial core run; the "
                             "breakdown is recorded either way")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help="benchmark history JSON to append to "
                             "(default: BENCH_localpush.json at the repo root)")
    args = parser.parse_args(argv)

    num_nodes = args.nodes if args.nodes is not None else (600 if args.smoke else 5000)
    num_workers = args.workers if args.workers is not None else default_num_workers()
    record = run(num_nodes=num_nodes, average_degree=args.degree,
                 epsilon=args.epsilon, decay=args.decay, seed=args.seed,
                 smoke=args.smoke, num_workers=num_workers,
                 kernel_epsilon=args.kernel_epsilon,
                 show_profile=args.profile)
    validate_record(record)
    history = load_history(args.output)
    history.append(record)
    args.output.write_text(json.dumps(history, indent=2) + "\n")
    print(f"appended record #{len(history)} to {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
