"""Benchmark: incremental repair cost vs fresh recompute on an evolving graph.

Builds a :class:`repro.dynamic.operator.DynamicOperator` on a synthetic
pokec-style graph, applies update batches of growing size (1/8/64 edges
by default) and, for every batch, times the incremental repair against a
fresh LocalPush recompute of the updated graph at the same ε.  Each
batch entry records the ``bit_within_bound`` verdict — the repaired
operator's residual satisfies the engine's ``(1−c)·ε`` frontier bound
*and* its snapshot agrees with the fresh recompute within ``2ε`` (both
are ``< ε`` from the true SimRank matrix, so the triangle inequality is
the strongest oracle-free check at this scale) — and the run aborts if
any batch violates it.

The headline claim this history tracks: repair cost grows with the
*delta* size, not the graph size.  The full 5k-node run asserts the
1-edge repair is ≥ 5× faster than the fresh recompute in the same
record (``benchmarks/check_perf_gate.py`` style, but self-contained).
The bench ε is 0.05: tight enough that push work — the quantity that
actually scales with graph vs delta size — dominates the wall time of
both paths, instead of the fixed per-round bookkeeping.

The JSON file is an append-only list of run records, validated against
:data:`RECORD_SCHEMA` before anything is written — same discipline as
``BENCH_localpush.json``.

Usage
-----
``PYTHONPATH=src python benchmarks/bench_incremental.py``          full run (5k nodes)
``PYTHONPATH=src python benchmarks/bench_incremental.py --smoke``  quick smoke (600 nodes)
``... --nodes 2000 --epsilon 0.05 --batches 1 16 --output /tmp/b.json``  custom
"""

from __future__ import annotations

# repro-lint: disable-file=R8 — this benchmark measures the dynamic
# subsystem against the engine internals (fresh-recompute baseline,
# synthetic generator), so importing them is its purpose, not an API leak.
import argparse
import json
import os
from pathlib import Path

import numpy as np

from repro.config import SimRankConfig
from repro.datasets.synthetic import SyntheticGraphConfig, generate_synthetic_graph
from repro.dynamic.operator import DynamicOperator
from repro.errors import ConfigError
from repro.graphs.delta import GraphDelta, UpdateBatch
from repro.simrank.engine import localpush_engine
from repro.utils.timer import Timer

DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_incremental.json"

DEFAULT_BATCH_SIZES = (1, 8, 64)

#: Top-level schema of one appended benchmark record: required key → type.
#: ``validate_record`` enforces it (with exact types — ``bool`` is not an
#: acceptable ``int``) before anything is written to the history file.
RECORD_SCHEMA = {
    "benchmark": str,
    "mode": str,
    "num_nodes": int,
    "num_edges": int,
    "epsilon": float,
    "decay": float,
    "seed": int,
    "cpu_count": int,
    "config": dict,
    "build": dict,
    "batches": list,
    "within_bound": bool,
}

#: Schema of the initial full-fidelity build entry.
BUILD_SCHEMA = {
    "seconds": float,
    "num_pushes": int,
}

#: Schema of each per-batch entry inside ``record["batches"]``.
BATCH_SCHEMA = {
    "num_deltas": int,
    "kinds": dict,
    "repair_seconds": float,
    "num_pushes": int,
    "num_rounds": int,
    "fresh_seconds": float,
    "fresh_num_pushes": int,
    "speedup_vs_fresh": float,
    "push_ratio": float,
    "residual_max": float,
    "residual_threshold": float,
    "max_abs_diff_vs_fresh": float,
    "bit_within_bound": bool,
}


class RecordSchemaError(ValueError):
    """The benchmark record does not match :data:`RECORD_SCHEMA`."""


def _check_fields(mapping: dict, schema: dict, context: str, problems: list) -> None:
    for field, expected in schema.items():
        if field not in mapping:
            problems.append(f"{context}: missing required key {field!r}")
            continue
        value = mapping[field]
        if expected is float:
            ok = type(value) in (int, float) and type(value) is not bool
        else:
            ok = type(value) is expected
        if not ok:
            problems.append(
                f"{context}.{field}: expected {expected.__name__}, "
                f"got {type(value).__name__} ({value!r})")


def validate_record(record: dict) -> dict:
    """Validate a benchmark record against the schema; raise on mismatch."""
    problems: list = []
    _check_fields(record, RECORD_SCHEMA, "record", problems)
    build = record.get("build")
    if isinstance(build, dict):
        _check_fields(build, BUILD_SCHEMA, "record.build", problems)
    batches = record.get("batches")
    if isinstance(batches, list):
        if not batches:
            problems.append("record.batches: expected at least one batch")
        for index, entry in enumerate(batches):
            if not isinstance(entry, dict):
                problems.append(f"record.batches[{index}]: expected dict")
                continue
            _check_fields(entry, BATCH_SCHEMA,
                          f"record.batches[{index}]", problems)
    config = record.get("config")
    if type(config) is dict:
        try:
            SimRankConfig.from_dict(config)
        except ConfigError as error:
            problems.append(f"record.config: not a valid SimRankConfig "
                            f"serialisation ({error})")
    if problems:
        raise RecordSchemaError(
            "benchmark record failed schema validation:\n  "
            + "\n  ".join(problems))
    return record


def build_graph(num_nodes: int, *, average_degree: float, seed: int):
    config = SyntheticGraphConfig(
        num_nodes=num_nodes, num_classes=2, num_features=8,
        average_degree=average_degree, homophily=0.44,
        name=f"bench-incremental-{num_nodes}")
    return generate_synthetic_graph(config, seed=seed)


def make_batch(graph, size: int, rng: np.random.Generator) -> UpdateBatch:
    """A mixed insert/delete/reweight batch of ``size`` distinct pairs.

    Roughly half inserts (sampled absent pairs), the rest alternating
    deletes and reweights of existing edges — sampled from the *current*
    graph so successive batches stay valid as the graph evolves.
    """
    n = graph.num_nodes
    adjacency = graph.adjacency
    present = np.argwhere(np.triu(adjacency.toarray(), 1) > 0)
    deltas: list = []
    used: set = set()
    num_inserts = (size + 1) // 2
    while len(deltas) < num_inserts:
        u, v = int(rng.integers(n)), int(rng.integers(n))
        if u == v:
            continue
        pair = (min(u, v), max(u, v))
        if pair in used or adjacency[pair[0], pair[1]] != 0:
            continue
        used.add(pair)
        deltas.append(GraphDelta("insert", *pair))
    order = rng.permutation(len(present))
    for rank, index in enumerate(order):
        if len(deltas) == size:
            break
        pair = (int(present[index][0]), int(present[index][1]))
        if pair in used:
            continue
        used.add(pair)
        if rank % 2 == 0:
            deltas.append(GraphDelta("delete", *pair))
        else:
            weight = float(adjacency[pair[0], pair[1]]) * 2.0
            deltas.append(GraphDelta("reweight", *pair, weight=weight))
    return UpdateBatch(tuple(deltas))


def time_fresh(graph, *, epsilon: float, decay: float) -> dict:
    """A fresh full-recompute baseline under the snapshot pipeline."""
    timer = Timer()
    with timer:
        result = localpush_engine(graph, epsilon=epsilon, decay=decay,
                                  prune=True, absorb_residual=True)
    return {
        "seconds": timer.elapsed,
        "num_pushes": result.num_pushes,
        "matrix": result.matrix,
    }


def run(*, num_nodes: int, average_degree: float, epsilon: float,
        decay: float, seed: int, smoke: bool,
        batch_sizes: tuple = DEFAULT_BATCH_SIZES) -> dict:
    graph = build_graph(num_nodes, average_degree=average_degree, seed=seed)
    cpu_count = os.cpu_count() or 1
    config = SimRankConfig(method="localpush", epsilon=epsilon, decay=decay)
    print(f"graph: {graph.num_nodes} nodes, {graph.num_edges} edges, "
          f"epsilon={epsilon}, decay={decay}, batches={batch_sizes}, "
          f"cpus={cpu_count}")

    operator = DynamicOperator(graph, simrank=config)
    print(f"  {'build':>10}: {operator.build_seconds:8.3f}s "
          f"({operator.build_pushes} pushes)")

    threshold = operator.push_threshold
    rng = np.random.default_rng(seed + 1)
    batches_out = []
    all_within = True
    for size in batch_sizes:
        batch = make_batch(operator.graph, size, rng)
        kinds: dict = {}
        for delta in batch:
            kinds[delta.kind] = kinds.get(delta.kind, 0) + 1
        repair = operator.apply(batch)
        fresh = time_fresh(operator.graph, epsilon=epsilon, decay=decay)
        snapshot = operator.operator().matrix
        diff = (snapshot - fresh["matrix"]).tocsr()
        max_abs_diff = float(np.abs(diff.data).max()) if diff.nnz else 0.0
        residual_max = operator.residual_max
        # The strongest oracle-free check at this scale: the repaired
        # residual satisfies the same (1−c)·ε frontier bound a fresh run
        # converges to, and both matrices are < ε from S, so they agree
        # within 2ε.
        within = bool(residual_max <= threshold * (1 + 1e-12)
                      and max_abs_diff < 2.0 * epsilon)
        all_within = all_within and within
        speedup = (round(fresh["seconds"] / repair.repair_seconds, 2)
                   if repair.repair_seconds > 0 else float("inf"))
        push_ratio = (round(repair.num_pushes / fresh["num_pushes"], 6)
                      if fresh["num_pushes"] > 0 else float("inf"))
        print(f"  {size:>4}-edge: repair {repair.repair_seconds:8.3f}s "
              f"({repair.num_pushes} pushes) vs fresh "
              f"{fresh['seconds']:8.3f}s ({fresh['num_pushes']} pushes) — "
              f"{speedup}x, push ratio {push_ratio}, "
              f"|R|max={residual_max:.2e} ≤ {threshold:.2e}, "
              f"|Ŝ−fresh|max={max_abs_diff:.4f}, within={within}")
        batches_out.append({
            "num_deltas": len(batch),
            "kinds": kinds,
            "repair_seconds": round(repair.repair_seconds, 4),
            "num_pushes": repair.num_pushes,
            "num_rounds": repair.num_rounds,
            "fresh_seconds": round(fresh["seconds"], 4),
            "fresh_num_pushes": fresh["num_pushes"],
            "speedup_vs_fresh": speedup,
            "push_ratio": push_ratio,
            "residual_max": residual_max,
            "residual_threshold": threshold,
            "max_abs_diff_vs_fresh": round(max_abs_diff, 6),
            "bit_within_bound": within,
        })

    return {
        "benchmark": "incremental_repair",
        "mode": "smoke" if smoke else "full",
        "num_nodes": graph.num_nodes,
        "num_edges": graph.num_edges,
        "epsilon": epsilon,
        "decay": decay,
        "seed": seed,
        "cpu_count": cpu_count,
        "config": config.to_dict(),
        "build": {
            "seconds": round(operator.build_seconds, 4),
            "num_pushes": operator.build_pushes,
        },
        "batches": batches_out,
        "within_bound": bool(all_within),
    }


def load_history(path: Path) -> list:
    """Existing benchmark records; a legacy single-record file is wrapped."""
    if not path.exists():
        return []
    existing = json.loads(path.read_text())
    return existing if isinstance(existing, list) else [existing]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="quick 600-node run instead of the full 5k-node one")
    parser.add_argument("--nodes", type=int, default=None,
                        help="node count override (default: 5000, or 600 with --smoke)")
    parser.add_argument("--degree", type=float, default=9.0,
                        help="target average degree (pokec-like default: 9)")
    parser.add_argument("--epsilon", type=float, default=0.05,
                        help="LocalPush error threshold ε (bench default "
                             "0.05 — tight enough that push work, not "
                             "fixed per-round overhead, dominates both "
                             "the fresh and the repair paths)")
    parser.add_argument("--decay", type=float, default=0.6, help="decay factor c")
    parser.add_argument("--seed", type=int, default=0, help="graph seed")
    parser.add_argument("--batches", type=int, nargs="+",
                        default=list(DEFAULT_BATCH_SIZES),
                        help="update-batch sizes to sweep "
                             f"(default: {DEFAULT_BATCH_SIZES})")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help="benchmark history JSON to append to "
                             "(default: BENCH_incremental.json at the repo root)")
    args = parser.parse_args(argv)

    num_nodes = args.nodes if args.nodes is not None else (600 if args.smoke else 5000)
    record = run(num_nodes=num_nodes, average_degree=args.degree,
                 epsilon=args.epsilon, decay=args.decay, seed=args.seed,
                 smoke=args.smoke, batch_sizes=tuple(args.batches))
    validate_record(record)
    if not record["within_bound"]:
        raise SystemExit("FAIL: a repaired operator violated the (1−c)·ε "
                         "bound check — see the batch entries above")
    if record["mode"] == "full" and record["batches"]:
        first = record["batches"][0]
        if first["num_deltas"] == 1 and first["speedup_vs_fresh"] < 5.0:
            raise SystemExit(
                f"FAIL: 1-edge repair speedup {first['speedup_vs_fresh']}x "
                f"below the 5x acceptance bar")
    history = load_history(args.output)
    history.append(record)
    args.output.write_text(json.dumps(history, indent=2) + "\n")
    print(f"appended record #{len(history)} to {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
