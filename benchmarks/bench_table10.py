"""Benchmark E11 — Table X: converged values of the balance factor α."""

from conftest import BENCH_CONFIG, run_once

from repro.experiments import run_experiment


def test_bench_table10_alpha(benchmark):
    result = run_once(benchmark, run_experiment, "table10", datasets=("penn94", "snap-patents"),
                      num_repeats=1, scale_factor=0.5, config=BENCH_CONFIG, seed=0, print_result=False)
    assert set(result.alphas) == {"penn94", "snap-patents"}
    for alpha in result.alphas.values():
        assert 0.0 < alpha < 1.0
