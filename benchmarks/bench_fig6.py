"""Benchmark E7 — Fig. 6: effect of the LocalPush ε and top-k on pokec."""

from conftest import BENCH_CONFIG, run_once

from repro.experiments import run_experiment


def test_bench_fig6_epsilon_topk(benchmark):
    result = run_once(benchmark, run_experiment, "fig6", "pokec", epsilons=(0.05, 0.1), top_ks=(8, 32),
                      num_repeats=1, scale_factor=0.25, config=BENCH_CONFIG, seed=0, print_result=False)
    assert len(result.cells) == 4
    # Tighter epsilon costs at least as much precomputation as the loose one.
    assert result.precompute(0.05, 32) >= result.precompute(0.1, 32) * 0.5
    for cell in result.cells:
        assert 0.0 <= cell["accuracy"] <= 100.0
