"""CI perf regression gate over the ``BENCH_localpush.json`` history.

Run *after* ``bench_localpush.py`` has appended a fresh record: the gate
takes the newest record, finds the most recent **comparable** earlier
record — same ``cpu_count``, same ``num_nodes`` (and the same
ε/decay/mode, so seconds are measuring the same workload) — and fails
when the core kernel got more than ``--threshold`` (default 30 %)
slower.

The gated metric is ``backends.core.seconds``: the serial unified-core
run, i.e. the push-round kernel itself with no pool or oracle noise.
Sub-``--min-delta-seconds`` absolute regressions never fail the gate —
smoke-sized records measure milliseconds, where a 30 % swing is timer
noise, not a regression.

Exit codes: ``0`` pass (or no comparable baseline — first run on a new
machine shape is recorded, not judged), ``1`` regression, ``2`` unusable
history (missing file, no records, malformed metric).

Stdlib-only on purpose: the gate must be able to judge a record even
when the package itself is broken.

Usage
-----
``python benchmarks/check_perf_gate.py``                      gate BENCH_localpush.json
``python benchmarks/check_perf_gate.py --history /tmp/b.json --threshold 0.5``
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_HISTORY = Path(__file__).resolve().parent.parent / "BENCH_localpush.json"

#: Record keys that must match for two records to be comparable: the
#: machine shape (``cpu_count``) and the workload shape (size, ε, decay,
#: mode) — comparing a smoke record against a full record, or records
#: from machines with different core counts, measures nothing.
COMPARABLE_KEYS = ("cpu_count", "num_nodes", "epsilon", "decay", "mode")


def core_seconds(record: dict) -> float:
    """The gated metric of one record; raises ``KeyError``/``TypeError``
    on malformed records."""
    seconds = record["backends"]["core"]["seconds"]
    if not isinstance(seconds, (int, float)) or isinstance(seconds, bool):
        raise TypeError(f"backends.core.seconds is not a number: {seconds!r}")
    return float(seconds)


def comparable(fresh: dict, candidate: dict) -> bool:
    return all(candidate.get(key) == fresh.get(key)
               for key in COMPARABLE_KEYS)


def find_baseline(history: list, fresh: dict) -> dict | None:
    """The most recent earlier record comparable to ``fresh``."""
    for candidate in reversed(history[:-1]):
        if isinstance(candidate, dict) and comparable(fresh, candidate):
            return candidate
    return None


def check(history: list, *, threshold: float,
          min_delta_seconds: float) -> tuple[int, str]:
    """Gate the newest record; returns ``(exit_code, message)``."""
    if not history:
        return 2, "perf gate: history has no records to judge"
    fresh = history[-1]
    try:
        fresh_seconds = core_seconds(fresh)
    except (KeyError, TypeError) as error:
        return 2, f"perf gate: newest record is malformed ({error})"
    shape = ", ".join(f"{key}={fresh.get(key)}" for key in COMPARABLE_KEYS)
    baseline = find_baseline(history, fresh)
    if baseline is None:
        return 0, (f"perf gate: no comparable baseline ({shape}) — "
                   f"recording {fresh_seconds:.4f}s as the first "
                   "measurement for this shape")
    try:
        base_seconds = core_seconds(baseline)
    except (KeyError, TypeError) as error:
        return 2, f"perf gate: baseline record is malformed ({error})"
    if base_seconds <= 0:
        return 0, (f"perf gate: baseline core seconds are {base_seconds}; "
                   "nothing to compare against")
    ratio = fresh_seconds / base_seconds
    delta = fresh_seconds - base_seconds
    verdict = (f"core kernel {fresh_seconds:.4f}s vs baseline "
               f"{base_seconds:.4f}s ({ratio:.2f}x, {shape})")
    if ratio > 1.0 + threshold and delta > min_delta_seconds:
        return 1, (f"perf gate FAILED: {verdict} exceeds the "
                   f"{threshold:.0%} slowdown threshold")
    return 0, f"perf gate passed: {verdict}"


def main(argv: list | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--history", type=Path, default=DEFAULT_HISTORY,
                        help="benchmark history JSON "
                             "(default: BENCH_localpush.json at the repo root)")
    parser.add_argument("--threshold", type=float, default=0.30,
                        help="relative core-kernel slowdown that fails the "
                             "gate (default: 0.30 = 30%%)")
    parser.add_argument("--min-delta-seconds", type=float, default=0.05,
                        help="absolute slowdown below which the gate never "
                             "fails — milliseconds-sized smoke records swing "
                             "more than 30%% on timer noise alone "
                             "(default: 0.05s)")
    args = parser.parse_args(argv)

    if not args.history.exists():
        print(f"perf gate: history file {args.history} does not exist")
        return 2
    try:
        history = json.loads(args.history.read_text())
    except json.JSONDecodeError as error:
        print(f"perf gate: history file {args.history} is not JSON ({error})")
        return 2
    if not isinstance(history, list):
        history = [history]
    code, message = check(history, threshold=args.threshold,
                          min_delta_seconds=args.min_delta_seconds)
    print(message)
    return code


if __name__ == "__main__":
    raise SystemExit(main())
